//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in hermetic environments with no registry
//! access, so the handful of `rand` APIs the code base actually uses are
//! reimplemented here behind the same paths (`rand::rngs::StdRng`,
//! `rand::Rng`, `rand::SeedableRng`, `rand::seq::SliceRandom`). The
//! generator is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `StdRng` (ChaCha12), but statistically sound for
//! the synthetic-world generation and baselines that consume it.
//!
//! Only seeded construction is provided (`seed_from_u64`); there is no
//! OS entropy source, which suits a reproduction where every run must be
//! replayable from a seed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A source of random 32/64-bit values.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeded construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly "by default" (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types that can be drawn uniformly from a range. Mirroring upstream,
/// the `SampleRange` impls below are generic over this trait (one impl
/// per range *shape*, not per element type), which is what lets the
/// compiler infer the element type of unsuffixed literals like
/// `rng.gen_range(2..=4)` from the surrounding expression.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi]` when `inclusive`, else `[lo, hi)`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let width = hi as i128 - lo as i128;
                let span = if inclusive { width + 1 } else { width };
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span as u128;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample empty range"
                );
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its default distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly imported items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left identity order");
        assert!(v.as_slice().choose(&mut rng).is_some());
        assert!(Vec::<u32>::new().as_slice().choose(&mut rng).is_none());
    }
}
