//! The [`Strategy`] trait and its combinators.

use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy simply samples a fresh value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and
    /// `recurse` wraps an inner strategy into a branch strategy. The
    /// `_desired_size` / `_expected_branch_size` hints are accepted for
    /// API parity; recursion depth is bounded by `depth` and biased
    /// 2:1 toward leaves at every level.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current.clone()).boxed();
            current = Union::weighted(vec![(2, leaf.clone()), (1, branch)]).boxed();
        }
        current
    }

    /// Erases the concrete strategy type. The result is cheaply
    /// cloneable (shared), which `prop_recursive` closures rely on.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased, shareable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Chooses among several boxed strategies (the engine of
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice; weights need not be normalised.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "Union needs at least one option");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "Union weights sum to zero");
        Self {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(self.total_weight);
        for (w, s) in &self.options {
            if roll < *w as u64 {
                return s.generate(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("roll bounded by total weight")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Simple-regex string strategies: `"[a-z ]{0,40}"`, `".{0,64}"`, …
/// (see [`crate::string`] for the supported grammar).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let a = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&a));
            let b = (0.0f64..=1.0).generate(&mut r);
            assert!((0.0..=1.0).contains(&b));
            let c = (-4i32..=4).generate(&mut r);
            assert!((-4..=4).contains(&c));
        }
    }

    #[test]
    fn map_flat_map_and_union_compose() {
        let mut r = rng();
        let s = (1u32..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
        let f = Just(3usize).prop_flat_map(|n| crate::collection::vec(0u8..2, n..n + 1));
        assert_eq!(f.generate(&mut r).len(), 3);
        let u = crate::prop_oneof![Just(1u8), Just(2u8)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(u.generate(&mut r));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 32, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut r = rng();
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.generate(&mut r)));
        }
        assert!(max_depth > 1, "recursion never branched");
        assert!(max_depth <= 5, "depth bound exceeded: {max_depth}");
    }
}
