//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A type with a canonical "generate anything" strategy.
pub trait Arbitrary {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<A>(std::marker::PhantomData<A>);

/// Generates any value of `A`, full range.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let magnitude = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -magnitude
        } else {
            magnitude
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII most of the time; the occasional wide char.
        if rng.below(8) < 7 {
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
        } else {
            char::from_u32(0xA1 + rng.below(0x2000) as u32).unwrap_or('\u{FFFD}')
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut r = TestRng::from_seed(1);
        let s = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn any_u64_varies() {
        let mut r = TestRng::from_seed(2);
        let s = any::<u64>();
        let a = s.generate(&mut r);
        let b = s.generate(&mut r);
        assert_ne!(a, b);
    }
}
