//! Test-execution plumbing: configuration, RNG, and case errors.

use std::fmt;

/// Per-block configuration, set with
/// `#![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; the shim never rejects.
    pub max_global_rejects: u32,
    /// Accepted for source compatibility; the shim never forks.
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
            fork: false,
        }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case asked to be discarded (unused by this workspace, kept
    /// for API parity).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The deterministic RNG strategies sample from (xoshiro256++, seeded
/// per test name so failures reproduce by case number).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the stream from an arbitrary test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives the base seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Seeds the stream from a u64 (SplitMix64 expansion).
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_streams_are_deterministic_and_distinct() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn config_default_runs_many_cases() {
        let cfg = ProptestConfig::default();
        assert!(cfg.cases >= 64);
        let custom = ProptestConfig {
            cases: 12,
            ..ProptestConfig::default()
        };
        assert_eq!(custom.cases, 12);
    }
}
