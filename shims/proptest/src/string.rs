//! Simple-regex string generation for `&str` strategies.
//!
//! Supported grammar (a deliberately small subset of what upstream
//! proptest accepts, covering every pattern in this workspace):
//!
//! * `[...]` — character class with literal chars, `a-z` ranges, and
//!   `\`-escapes (`\\`, `\]`, `\-`, `\n`, `\t`);
//! * `.` — "any" character: mostly printable ASCII with a sprinkle of
//!   non-ASCII and whitespace so Unicode paths get exercised;
//! * any other char — itself, literally;
//! * each atom may be followed by `{n}` or `{m,n}` repetition.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// One char drawn uniformly from the listed choices.
    Class(Vec<char>),
    /// The `.` wildcard.
    Any,
    /// A literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub(crate) fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize
        };
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(choices) => choices[rng.below(choices.len() as u64) as usize],
        Atom::Any => {
            // Mostly printable ASCII; occasionally something wider so
            // consumers see multi-byte UTF-8 and control whitespace.
            const EXOTIC: &[char] = &['é', 'ß', 'λ', '中', '😀', '\n', '\t', ' '];
            if rng.below(10) < 8 {
                char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
            } else {
                EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
            }
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (class, consumed) = parse_class(&chars[i + 1..], pattern);
                i += consumed + 1;
                Atom::Class(class)
            }
            '.' => {
                i += 1;
                Atom::Any
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Atom::Literal(unescape(c))
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{}} in pattern {pattern:?}"));
            let spec: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Parses a `[...]` body (starting just after `[`); returns the choice
/// set and the number of chars consumed including the closing `]`.
fn parse_class(chars: &[char], pattern: &str) -> (Vec<char>, usize) {
    let mut choices = Vec::new();
    let mut i = 0;
    loop {
        match chars.get(i) {
            None => panic!("unclosed character class in pattern {pattern:?}"),
            Some(']') => {
                assert!(!choices.is_empty(), "empty character class in {pattern:?}");
                return (choices, i + 1);
            }
            Some('\\') => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                choices.push(unescape(c));
                i += 2;
            }
            Some(&lo) => {
                // `a-z` range, unless `-` is the final literal before `]`.
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                    let hi = chars[i + 2];
                    assert!(lo <= hi, "inverted class range in {pattern:?}");
                    for code in lo as u32..=hi as u32 {
                        if let Some(c) = char::from_u32(code) {
                            choices.push(c);
                        }
                    }
                    i += 3;
                } else {
                    choices.push(lo);
                    i += 1;
                }
            }
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(7)
    }

    #[test]
    fn class_with_range_and_repetition() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-c x]{2,5}", &mut r);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc x".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn literals_and_fixed_counts() {
        let mut r = rng();
        let s = generate_from_pattern("ab[0-9]{3}", &mut r);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn dot_generates_varied_chars() {
        let mut r = rng();
        let s = generate_from_pattern(".{0,64}", &mut r);
        assert!(s.chars().count() <= 64);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..50 {
            distinct.extend(generate_from_pattern(".{8}", &mut r).chars());
        }
        assert!(distinct.len() > 10);
    }
}
