//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The workspace builds in hermetic environments without registry
//! access, so the `proptest` API surface the test suite uses is
//! reimplemented here: the [`proptest!`]/[`prop_assert!`] macros, the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map` / `prop_recursive` / [`prop_oneof!`], numeric-range
//! and simple-regex (`"[a-z]{1,6}"`, `".{0,64}"`) strategies,
//! [`collection::vec`], [`sample::select`] / [`sample::subsequence`],
//! and [`option::of`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case number under a
//!   deterministic per-test seed, so failures still reproduce exactly —
//!   they are just not minimal.
//! * **No persistence.** `proptest-regressions` files are ignored.
//! * Strategies are sampled with a fixed xoshiro256++ stream seeded from
//!   the test name, so runs are stable across machines and CI.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;

/// The items almost every property test imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let __strategies = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Fails the current property-test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Picks uniformly (or by `weight => strategy` entries) among several
/// strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
