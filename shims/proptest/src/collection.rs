//! Collection strategies (`vec`) and the [`SizeRange`] bound type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    /// Inclusive bounds of the range.
    pub fn bounds(&self) -> (usize, usize) {
        (self.min, self.max)
    }

    pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<core::ops::RangeTo<usize>> for SizeRange {
    fn from(r: core::ops::RangeTo<usize>) -> Self {
        assert!(r.end > 0, "empty size range");
        SizeRange {
            min: 0,
            max: r.end - 1,
        }
    }
}

/// Generates a `Vec` whose length falls in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_every_bound_form() {
        let mut r = TestRng::from_seed(3);
        for _ in 0..100 {
            assert_eq!(vec(0u8..5, 4usize).generate(&mut r).len(), 4);
            let a = vec(0u8..5, 1..4).generate(&mut r).len();
            assert!((1..4).contains(&a));
            let b = vec(0u8..5, 2usize..=6).generate(&mut r).len();
            assert!((2..=6).contains(&b));
            let c = vec(0u8..5, ..3usize).generate(&mut r).len();
            assert!(c < 3);
        }
    }

    #[test]
    fn elements_come_from_element_strategy() {
        let mut r = TestRng::from_seed(4);
        let v = vec(10u32..13, 64usize).generate(&mut r);
        assert!(v.iter().all(|e| (10..13).contains(e)));
    }
}
