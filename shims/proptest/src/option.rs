//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some(value)` three times out of four, `None` otherwise
/// (matching upstream's default 0.75 Some probability).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) < 3 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_both_variants() {
        let mut r = TestRng::from_seed(8);
        let s = of(0u8..10);
        let (mut some, mut none) = (0, 0);
        for _ in 0..200 {
            match s.generate(&mut r) {
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > none, "Some should dominate ({some} vs {none})");
        assert!(none > 0);
    }
}
