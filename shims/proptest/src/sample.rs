//! Strategies that sample from fixed collections.

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Picks one element of `options` uniformly (cloned).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// Picks a random subsequence of `source` (order-preserving); its size
/// falls in `size`, clamped to `source.len()`.
pub fn subsequence<T: Clone>(source: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        source,
        size: size.into(),
    }
}

/// See [`subsequence`].
#[derive(Debug, Clone)]
pub struct Subsequence<T> {
    source: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let want = self.size.sample(rng).min(self.source.len());
        // Partial Fisher–Yates over the index set keeps each subset
        // equally likely; sorting restores source order.
        let mut indices: Vec<usize> = (0..self.source.len()).collect();
        for i in 0..want {
            let j = i + rng.below((indices.len() - i) as u64) as usize;
            indices.swap(i, j);
        }
        let mut picked: Vec<usize> = indices[..want].to_vec();
        picked.sort_unstable();
        picked.into_iter().map(|i| self.source[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_only_yields_members() {
        let mut r = TestRng::from_seed(5);
        let s = select(vec!["a", "b", "c"]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut r));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn subsequence_preserves_order_and_clamps() {
        let mut r = TestRng::from_seed(6);
        let s = subsequence(vec![1, 2, 3, 4, 5], 0usize..=9);
        for _ in 0..200 {
            let sub = s.generate(&mut r);
            assert!(sub.len() <= 5);
            assert!(sub.windows(2).all(|w| w[0] < w[1]), "{sub:?} out of order");
        }
    }
}
