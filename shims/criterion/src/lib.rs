//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API subset the `minaret-bench` targets use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple but honest measurement
//! protocol: a warm-up pass sizes the iteration batch to ~10 ms, then
//! `sample_size` batches are timed and the per-iteration mean, minimum
//! and p50 are printed. No statistical regression analysis, no plots;
//! results land on stdout, which is what CI reads anyway.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A parameterised benchmark name, e.g. `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form (inside a group, the group is the function).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Duration,
    last_min: Duration,
    last_median: Duration,
    total_iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            last_mean: Duration::ZERO,
            last_min: Duration::ZERO,
            last_median: Duration::ZERO,
            total_iters: 0,
        }
    }

    /// Times `routine`, batching iterations so each sample runs ~10 ms.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: find a batch size whose wall time is ~10 ms.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = t.elapsed();
            if took >= Duration::from_millis(10) || batch >= 1 << 20 {
                break;
            }
            batch = (batch * 2).max(1);
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(t.elapsed() / batch as u32);
            iters += batch;
        }
        per_iter.sort_unstable();
        self.last_min = per_iter[0];
        self.last_median = per_iter[per_iter.len() / 2];
        self.last_mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        self.total_iters = iters;
    }
}

/// The harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// No-op for CLI compatibility (`cargo bench` passes flags the shim
    /// ignores).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the default number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is incremental, so this is cosmetic).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    samples: usize,
    mut f: F,
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher::new(samples);
    f(&mut b);
    println!(
        "{full:<56} mean {:>12?}  p50 {:>12?}  min {:>12?}  ({} iters)",
        b.last_mean, b.last_median, b.last_min, b.total_iters
    );
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| black_box(40u64) + 2);
        assert!(b.total_iters > 0);
        assert!(b.last_min <= b.last_mean || b.last_mean == Duration::ZERO);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        c.bench_function("top", |b| b.iter(|| black_box(0)));
    }
}
