//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! Provides the `crossbeam::channel` subset the HTTP server uses: an
//! unbounded multi-producer multi-consumer channel with cloneable
//! senders *and* receivers, built on a `Mutex<VecDeque>` + `Condvar`.
//! Throughput is far below real crossbeam's lock-free queues, but the
//! workloads here hand off one TCP stream per message, where lock cost
//! is noise.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (messages go to exactly one
    /// receiver each).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake every blocked receiver so it can
                // observe disconnection.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is
        /// empty but still connected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeues without blocking; `None` when empty right now.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::collections::BTreeSet;

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_of_all_senders_disconnects() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn drop_of_all_receivers_fails_send() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(channel::SendError(9)));
    }

    #[test]
    fn multiple_consumers_partition_the_stream() {
        let (tx, rx) = channel::unbounded::<u32>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Ok(v) = rx.recv() {
                        seen.push(v);
                    }
                    seen
                })
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all = BTreeSet::new();
        for c in consumers {
            for v in c.join().unwrap() {
                assert!(all.insert(v), "message {v} delivered twice");
            }
        }
        assert_eq!(all.len(), 1000);
    }
}
