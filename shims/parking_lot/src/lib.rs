//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate.
//!
//! The workspace builds without registry access, so this shim provides
//! the `parking_lot` surface the code base uses — `Mutex`, `RwLock`,
//! and `Condvar` whose `lock`/`read`/`write` return guards directly
//! instead of `LockResult` — implemented over `std::sync`. Poisoning is
//! absorbed (`parking_lot` has no poisoning): a panic while holding a
//! lock does not wedge later acquisitions, and a panic while a waiter
//! is parked on a `Condvar` does not poison the wakeup path.
//!
//! Divergence from the real crate: `Condvar::notify_one`/`notify_all`
//! return `()` rather than a notified count — `std::sync::Condvar`
//! cannot report one, and no caller here consumes it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Guard for [`Mutex::lock`].
///
/// A wrapper (not an alias for `std::sync::MutexGuard`) so that
/// [`Condvar::wait`] can take `&mut MutexGuard` like the real
/// `parking_lot` API: the wait internally takes the std guard out,
/// parks, and puts the re-acquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    // Always `Some` outside of `Condvar::wait`'s take/park/put-back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`]; waits take the guard by
/// `&mut` (the `parking_lot` calling convention) and never observe
/// poisoning.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Atomically releases the guarded mutex and parks until notified;
    /// the mutex is re-acquired before returning. Spurious wakeups are
    /// possible — callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present outside wait");
        guard.inner = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Parks until `condition` returns false (checked under the lock,
    /// re-checked after every wakeup).
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut *guard) {
            self.wait(guard);
        }
    }

    /// Wakes one parked waiter, if any.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn condvar_wait_while_sees_predicate_flip() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut count = lock.lock();
            cv.wait_while(&mut count, |c| *c < 3);
            *count
        });
        let (lock, cv) = &*pair;
        for _ in 0..3 {
            *lock.lock() += 1;
            cv.notify_all();
        }
        assert_eq!(waiter.join().unwrap(), 3);
    }

    #[test]
    fn panicking_condvar_waiter_peer_does_not_wedge_wakeup() {
        // A leader that panics after publishing must still have woken
        // its waiters; the mutex absorbed the poison.
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_all();
            let _g = lock.lock();
            panic!("leader dies holding the lock");
        })
        .join();
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
    }
}
