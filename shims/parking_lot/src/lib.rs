//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate.
//!
//! The workspace builds without registry access, so this shim provides
//! the `parking_lot` surface the code base uses — `Mutex` and `RwLock`
//! whose `lock`/`read`/`write` return guards directly instead of
//! `LockResult` — implemented over `std::sync`. Poisoning is absorbed
//! (`parking_lot` has no poisoning): a panic while holding a lock does
//! not wedge later acquisitions.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::PoisonError;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }
}
