#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Run from the repo root; any failure aborts with a non-zero exit.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> fault injection: cargo test --test failure_injection"
cargo test -q --test failure_injection

echo "==> batched/parallel equivalence + zero-copy goldens: cargo test --test batched_equivalence"
cargo test -q --test batched_equivalence

echo "==> telemetry surface (incl. coalescing counter): cargo test --test metrics_endpoint"
cargo test -q --test metrics_endpoint

echo "==> single-flight coalescing (incl. shard race + leader panic): cargo test -p minaret-scholarly coalesc"
cargo test -q -p minaret-scholarly coalesc

echo "==> sharded map primitives: cargo test -p minaret-concurrent"
cargo test -q -p minaret-concurrent

echo "==> sharded vs single-lock equivalence + linearizability smoke: cargo test --test shard_equivalence"
cargo test -q --test shard_equivalence

echo "==> load shedding: cargo test --test load_shedding"
cargo test -q --test load_shedding

echo "==> keep-alive semantics: cargo test --test keep_alive"
cargo test -q --test keep_alive

echo "==> result cache: cargo test --test result_cache"
cargo test -q --test result_cache

echo "==> embedded store (WAL, tables, recovery, crash safety): cargo test -p minaret-store"
cargo test -q -p minaret-store

echo "==> store persistence goldens (RAM vs --data-dir byte-identical): cargo test --test store_persistence"
cargo test -q --test store_persistence

echo "==> HTTP parser property tests (incl. incremental split-feed): cargo test --test http_parser_proptest"
cargo test -q --test http_parser_proptest

echo "==> reactor fault isolation (peer resets): cargo test --test reactor_resilience"
cargo test -q --test reactor_resilience

echo "==> shutdown/drain soak: cargo test --test shutdown_drain"
cargo test -q --test shutdown_drain

echo "==> chunked generation invariance (any chunk size == monolithic): cargo test --test chunk_invariance"
cargo test -q -p minaret-synth --test chunk_invariance

echo "==> lazy profile materialization equivalence: cargo test --test streaming_world"
cargo test -q --test streaming_world

echo "==> batch-assignment solver unit tests: cargo test -p minaret-assign"
cargo test -q -p minaret-assign

echo "==> assignment invariants + goldens + one-fan-out pin: cargo test --test assign_properties"
cargo test -q --test assign_properties

echo "==> concurrent assign/recommend fan-out coalescing: cargo test --test assign_concurrency"
cargo test -q --test assign_concurrency

echo "==> streaming smoke: minaret synth streams a 10^5-scholar snapshot"
SYNTH_DIR="$(mktemp -d)"
trap 'rm -rf "$SYNTH_DIR"' EXIT
cargo run -q --release -p minaret-cli -- synth --scholars 100000 --seed 231 --data-dir "$SYNTH_DIR"
rm -rf "$SYNTH_DIR"

# The perf smoke also runs the E7 world-size sweep (10^3..10^5) with its
# two same-run gates: uncached recommend p50 flat across world sizes,
# and the lazy cold start beating regeneration at 10^5. Set
# MINARET_WORLD_SWEEP=1 to extend the sweep to 10^6 scholars.
# It also runs the connection-scaling sweep (100 and 1000 idle
# keep-alive connections against the epoll reactor) with two same-run
# gates: serving threads fixed at io_threads + workers (+1 slack)
# regardless of connection count, and the uncached recommend p50 flat
# (<= 1.5x the 100-connection point) as idle sockets pile up. Set
# MINARET_CONN_SWEEP=1 to extend that sweep to 10k connections
# (clamped to the fd budget).
# The assign smoke solves a 50-manuscript batch over a 10^4-scholar
# world and gates flow >= greedy (same-run) plus the batch latency
# against the committed assign_batch50_millis baseline.
echo "==> perf smoke: batched speedup + extraction + served cache hit + store put/get/recovery + lock contention + world-size/conn-scaling sweeps + batch assignment vs BENCH_e7_scalability.json"
cargo run -q --release --example perf_smoke

echo "==> alloc smoke: warm-path allocations vs BENCH_e7_scalability.json (count-allocs)"
cargo run -q --release --features count-allocs --example perf_smoke

echo "CI OK"
