#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Run from the repo root; any failure aborts with a non-zero exit.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> fault injection: cargo test --test failure_injection"
cargo test -q --test failure_injection

echo "==> batched/parallel equivalence: cargo test --test batched_equivalence"
cargo test -q --test batched_equivalence

echo "==> perf smoke: batched speedup + extraction vs BENCH_e7_scalability.json"
cargo run -q --release --example perf_smoke

echo "CI OK"
