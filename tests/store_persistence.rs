//! Persistence guarantees for the embedded store (`minaret-store`).
//!
//! PR goals under test: (1) a store-backed server (`--data-dir`) emits
//! **byte-identical recommendations** to the historical pure-RAM path —
//! same rankings with bitwise-equal scores, same filtered-out reasons —
//! so persistence is invisible to editors; (2) a restart over the same
//! data directory serves the snapshotted world without regeneration,
//! again byte-identically; (3) source-profile caches actually land in
//! the store and survive restarts.

use std::path::PathBuf;
use std::sync::Arc;

use minaret::prelude::*;
use minaret_server::AppState;
use minaret_synth::SubmissionGenerator;
use minaret_telemetry::Telemetry;

const SCHOLARS: usize = 260;
const WORLD_SEED: u64 = 42;
const SUBMISSION_SEEDS: [u64; 4] = [1, 7, 23, 42];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("minaret-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ram_state() -> Arc<AppState> {
    AppState::demo_with_data_dir(SCHOLARS, WORLD_SEED, Telemetry::disabled(), 0, None)
        .expect("pure-RAM state")
}

fn store_state(dir: &std::path::Path) -> Arc<AppState> {
    AppState::demo_with_data_dir(SCHOLARS, WORLD_SEED, Telemetry::disabled(), 0, Some(dir))
        .expect("store-backed state")
}

fn manuscript(world: &World, seed: u64) -> ManuscriptDetails {
    let sub = SubmissionGenerator::new(world, seed).generate().unwrap();
    ManuscriptDetails {
        title: sub.title.clone(),
        keywords: sub.keywords.clone(),
        authors: sub
            .authors
            .iter()
            .map(|&id| AuthorInput::named(world.scholar(id).full_name()))
            .collect(),
        target_venue: world.venue(sub.target_venue).name.clone(),
    }
}

/// Serializes everything ranking-relevant about a report, with float
/// scores rendered via `to_bits` so equality means *bitwise* equality.
fn fingerprint(report: &RecommendationReport) -> Vec<String> {
    let mut lines = vec![
        format!("retrieved={}", report.candidates_retrieved),
        format!("degraded={:?}", report.degraded_sources),
        format!("errors={:?}", report.source_errors),
    ];
    for rec in &report.recommendations {
        let b = &rec.breakdown;
        lines.push(format!(
            "rank {} {} total={:016x} cov={:016x} imp={:016x} rec={:016x} exp={:016x} fam={:016x} res={:016x}",
            rec.rank,
            rec.name,
            rec.total.to_bits(),
            b.coverage.to_bits(),
            b.impact.to_bits(),
            b.recency.to_bits(),
            b.experience.to_bits(),
            b.familiarity.to_bits(),
            b.responsiveness.to_bits(),
        ));
    }
    for (cand, reason) in &report.filtered_out {
        lines.push(format!(
            "filtered {} score={:016x} reason={:?}",
            cand.merged.display_name,
            cand.keyword_score.to_bits(),
            reason
        ));
    }
    lines
}

/// Fingerprints one recommendation per submission seed on `state`.
fn golden_fingerprints(state: &AppState) -> Vec<Vec<String>> {
    SUBMISSION_SEEDS
        .iter()
        .map(|&seed| {
            let m = manuscript(&state.world, seed);
            fingerprint(&state.minaret.recommend(&m).expect("pipeline succeeds"))
        })
        .collect()
}

#[test]
fn store_backed_recommendations_are_byte_identical_to_ram() {
    let dir = tmp_dir("golden");
    let ram = golden_fingerprints(&ram_state());
    let stored = golden_fingerprints(&store_state(&dir));
    for (i, (want, got)) in ram.iter().zip(&stored).enumerate() {
        assert_eq!(
            want, got,
            "submission seed {}: store-backed recommendations diverged from pure RAM",
            SUBMISSION_SEEDS[i]
        );
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn restart_over_snapshot_serves_identical_recommendations() {
    let dir = tmp_dir("restart");

    // First boot: generates, snapshots, serves, persists profiles.
    let first = store_state(&dir);
    let store = first.store.clone().expect("data-dir state carries a store");
    let goldens = golden_fingerprints(&first);
    let scholars = first.world.scholars().to_vec();
    // Serving recommendations populated the profile cache in the store.
    let persisted_profiles = SourceKind::ALL
        .iter()
        .filter(|kind| {
            let key = format!("profile/{}/{:08}", kind.prefix(), 0);
            store.get(key.as_bytes()).expect("store get").is_some()
        })
        .count();
    assert!(
        persisted_profiles > 0,
        "at least one source persisted scholar 0's profile"
    );
    drop(first);

    // Second boot: the world must come from the snapshot (and the
    // profile caches from the store), and every recommendation byte
    // must match the first boot's.
    let second = store_state(&dir);
    assert_eq!(
        second.world.scholars(),
        scholars.as_slice(),
        "restart must reload the snapshotted world exactly"
    );
    assert_eq!(
        golden_fingerprints(&second),
        goldens,
        "recommendations diverged across a restart over the same data dir"
    );
    drop(second);
    std::fs::remove_dir_all(dir).unwrap();
}
