//! Property tests for the HTTP request parser: whatever bytes arrive,
//! in whatever chunking, the parser must either produce a request or a
//! classified error — never panic, never hang, and never change its
//! answer because of how the bytes were split across reads.

use std::io::{BufReader, Read};

use minaret::http::{percent_decode, HttpError, Request, RequestBuffer};
use proptest::collection;
use proptest::prelude::*;

/// A reader that hands out the payload in scripted chunk sizes, cycling
/// through `sizes` — the adversarial version of a slow socket.
struct ChunkReader {
    data: Vec<u8>,
    pos: usize,
    sizes: Vec<usize>,
    turn: usize,
}

impl ChunkReader {
    fn new(data: Vec<u8>, sizes: Vec<usize>) -> Self {
        ChunkReader {
            data,
            pos: 0,
            sizes,
            turn: 0,
        }
    }
}

impl Read for ChunkReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let step = self.sizes[self.turn % self.sizes.len()].max(1);
        self.turn += 1;
        let n = step.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn parse_chunked(payload: &[u8], sizes: Vec<usize>) -> Result<Option<Request>, HttpError> {
    // A tiny BufReader capacity forces refills mid-token as well.
    let mut reader = BufReader::with_capacity(7, ChunkReader::new(payload.to_vec(), sizes));
    Request::read_from_buffered(&mut reader)
}

/// Feeds `payload` into a [`RequestBuffer`] split at the scripted
/// `sizes` (cycled), collecting every request the incremental parser
/// yields — the reactor's view of a socket delivering arbitrary chunks.
/// Returns the parsed requests and the first permanent error, if any.
fn parse_incremental(payload: &[u8], sizes: &[usize]) -> (Vec<Request>, Option<HttpError>) {
    let mut buf = RequestBuffer::new();
    let mut requests = Vec::new();
    let mut pos = 0;
    let mut turn = 0;
    while pos < payload.len() {
        let step = sizes[turn % sizes.len()].max(1).min(payload.len() - pos);
        turn += 1;
        buf.push(&payload[pos..pos + step]);
        pos += step;
        loop {
            match buf.next_request() {
                Ok(Some(req)) => requests.push(req),
                Ok(None) => break,
                Err(e) => return (requests, Some(e)),
            }
        }
    }
    (requests, None)
}

/// A syntactically valid request built from generated parts.
fn render_request(path: &str, header_case: bool, body: &[u8]) -> Vec<u8> {
    let cl = if header_case {
        "CONTENT-LENGTH"
    } else {
        "Content-Length"
    };
    let mut out = format!(
        "POST /{path} HTTP/1.1\r\nHost: t\r\n{cl}: {}\r\nX-Extra: v\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

proptest! {
    /// Arbitrary bytes: parse-or-classified-error, never a panic. (The
    /// absence of hangs is structural: the reader is finite and the
    /// parser never seeks backwards.)
    #[test]
    fn arbitrary_bytes_never_panic(
        payload in collection::vec(any::<u8>(), 0..600),
        sizes in collection::vec(1usize..9, 1..4),
    ) {
        let _ = parse_chunked(&payload, sizes);
    }

    /// A well-formed request parses identically no matter how the bytes
    /// are split across reads — and round-trips its parts.
    #[test]
    fn chunking_never_changes_the_parse(
        path in "[a-z]{1,8}",
        upper in any::<bool>(),
        body in collection::vec(any::<u8>(), 0..128),
        sizes in collection::vec(1usize..5, 1..4),
    ) {
        let payload = render_request(&path, upper, &body);
        let whole = parse_chunked(&payload, vec![payload.len()])
            .expect("well-formed request parses")
            .expect("non-empty input");
        let split = parse_chunked(&payload, sizes)
            .expect("same bytes, different chunking, same answer")
            .expect("non-empty input");
        prop_assert_eq!(&whole.path, &format!("/{}", path));
        prop_assert_eq!(&whole.body, &body);
        prop_assert_eq!(&split.path, &whole.path);
        prop_assert_eq!(&split.body, &whole.body);
        prop_assert_eq!(split.minor_version, whole.minor_version);
        // Mixed-case Content-Length was honored either way.
        prop_assert_eq!(whole.header("content-length").map(str::to_string),
                        Some(body.len().to_string()));
    }

    /// Truncating a request mid-body is an I/O error (client went away),
    /// not a panic and not a silently short body.
    #[test]
    fn truncated_bodies_are_io_errors(
        body in collection::vec(any::<u8>(), 1..64),
        cut in 1usize..64,
        sizes in collection::vec(1usize..5, 1..3),
    ) {
        let payload = render_request("p", false, &body);
        let cut = cut.min(body.len());
        let truncated = &payload[..payload.len() - cut];
        match parse_chunked(truncated, sizes) {
            Err(HttpError::Io(_)) => {}
            other => prop_assert!(false, "expected Io error, got {:?}", other.map(|r| r.map(|q| q.path))),
        }
    }

    /// Duplicate or malformed Content-Length headers are 400-class
    /// errors — request smuggling's favourite ambiguity is refused.
    #[test]
    fn conflicting_content_lengths_are_rejected(
        a in 0usize..32,
        b in 0usize..32,
        junk in "[a-z]{1,6}",
    ) {
        let dup = format!(
            "POST /p HTTP/1.1\r\nContent-Length: {a}\r\nContent-Length: {b}\r\n\r\n"
        );
        match parse_chunked(dup.as_bytes(), vec![3]) {
            Err(HttpError::BadRequest(_)) => {}
            other => prop_assert!(false, "duplicate CL accepted: {:?}", other.is_ok()),
        }
        let non_numeric = format!("POST /p HTTP/1.1\r\nContent-Length: {junk}\r\n\r\n");
        match parse_chunked(non_numeric.as_bytes(), vec![3]) {
            Err(HttpError::BadRequest(_)) => {}
            other => prop_assert!(false, "non-numeric CL accepted: {:?}", other.is_ok()),
        }
    }

    /// The resumable parser driven byte-at-a-time agrees exactly with
    /// the blocking whole-buffer parse: same request, same parts. This
    /// is the equivalence the reactor depends on — a socket delivering
    /// one byte per readiness event must not change any answer.
    #[test]
    fn byte_at_a_time_matches_whole_buffer(
        path in "[a-z]{1,8}",
        upper in any::<bool>(),
        body in collection::vec(any::<u8>(), 0..128),
    ) {
        let payload = render_request(&path, upper, &body);
        let whole = parse_chunked(&payload, vec![payload.len()])
            .expect("well-formed request parses")
            .expect("non-empty input");
        let (reqs, err) = parse_incremental(&payload, &[1]);
        prop_assert!(err.is_none(), "incremental error on valid input: {err:?}");
        prop_assert_eq!(reqs.len(), 1);
        prop_assert_eq!(&reqs[0].path, &whole.path);
        prop_assert_eq!(&reqs[0].body, &whole.body);
        prop_assert_eq!(reqs[0].minor_version, whole.minor_version);
        prop_assert_eq!(
            reqs[0].header("content-length").map(str::to_string),
            whole.header("content-length").map(str::to_string)
        );
    }

    /// Pipelined requests split at arbitrary boundaries — mid-header,
    /// mid-body, across request boundaries — come out of the resumable
    /// parser as the same sequence the blocking parser produces.
    #[test]
    fn random_splits_preserve_pipelined_sequences(
        paths in collection::vec("[a-z]{1,6}", 1..4),
        bodies in collection::vec(collection::vec(any::<u8>(), 0..48), 1..4),
        sizes in collection::vec(1usize..13, 1..5),
    ) {
        let n = paths.len().min(bodies.len());
        let mut payload = Vec::new();
        for i in 0..n {
            payload.extend_from_slice(&render_request(&paths[i], i % 2 == 0, &bodies[i]));
        }
        // Blocking reference: repeated whole-buffer parses.
        let mut reader = BufReader::with_capacity(
            7,
            ChunkReader::new(payload.clone(), vec![payload.len()]),
        );
        let mut reference = Vec::new();
        while let Some(req) = Request::read_from_buffered(&mut reader)
            .expect("well-formed pipeline parses")
        {
            reference.push(req);
        }
        let (reqs, err) = parse_incremental(&payload, &sizes);
        prop_assert!(err.is_none(), "incremental error on valid pipeline: {err:?}");
        prop_assert_eq!(reqs.len(), reference.len());
        for (got, want) in reqs.iter().zip(&reference) {
            prop_assert_eq!(&got.path, &want.path);
            prop_assert_eq!(&got.body, &want.body);
        }
    }

    /// Malformed input is classified the same way no matter how it is
    /// chunked into the resumable parser: same error variant as the
    /// blocking parser, never a panic, never a bogus request first.
    #[test]
    fn error_classification_survives_splitting(
        junk in "[a-z]{1,6}",
        sizes in collection::vec(1usize..7, 1..4),
    ) {
        let bad_version = format!("GET /p BANANA/{junk}\r\n\r\n");
        let (reqs, err) = parse_incremental(bad_version.as_bytes(), &sizes);
        prop_assert!(reqs.is_empty());
        prop_assert!(matches!(err, Some(HttpError::BadRequest(_))), "{err:?}");

        let dup_cl = "POST /p HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\n";
        let (reqs, err) = parse_incremental(dup_cl.as_bytes(), &sizes);
        prop_assert!(reqs.is_empty());
        prop_assert!(matches!(err, Some(HttpError::BadRequest(_))), "{err:?}");

        let oversized = "POST /p HTTP/1.1\r\nContent-Length: 2097152\r\n\r\n";
        let (reqs, err) = parse_incremental(oversized.as_bytes(), &sizes);
        prop_assert!(reqs.is_empty());
        prop_assert!(matches!(err, Some(HttpError::TooLarge)), "{err:?}");
    }

    /// Arbitrary bytes through the resumable parser: classified error or
    /// requests, never a panic — and whatever prefix of requests parses
    /// before an error matches the blocking parser's prefix.
    #[test]
    fn incremental_arbitrary_bytes_never_panic(
        payload in collection::vec(any::<u8>(), 0..600),
        sizes in collection::vec(1usize..9, 1..4),
    ) {
        let _ = parse_incremental(&payload, &sizes);
    }

    /// percent_decode handles any input without panicking, and decodes
    /// an encode round-trip exactly.
    #[test]
    fn percent_decode_total_and_round_trips(
        raw in ".{0,64}",
        plain in "[a-zA-Z0-9 ]{0,32}",
    ) {
        let _ = percent_decode(&raw);
        let encoded: String = plain
            .bytes()
            .map(|b| if b == b' ' { "+".to_string() } else { format!("%{b:02X}") })
            .collect();
        prop_assert_eq!(percent_decode(&encoded).unwrap(), plain);
    }
}

#[test]
fn oversized_headers_are_too_large() {
    let mut payload = b"GET /p HTTP/1.1\r\n".to_vec();
    payload.extend_from_slice(format!("X-Pad: {}\r\n", "a".repeat(17 * 1024)).as_bytes());
    payload.extend_from_slice(b"\r\n");
    match parse_chunked(&payload, vec![64]) {
        Err(HttpError::TooLarge) => {}
        other => panic!("expected TooLarge, got ok={:?}", other.is_ok()),
    }
}

#[test]
fn oversized_declared_body_is_too_large() {
    let payload = b"POST /p HTTP/1.1\r\nContent-Length: 2097152\r\n\r\n";
    match parse_chunked(payload, vec![16]) {
        Err(HttpError::TooLarge) => {}
        other => panic!("expected TooLarge, got ok={:?}", other.is_ok()),
    }
}

#[test]
fn missing_content_length_means_empty_body() {
    let payload = b"POST /p HTTP/1.1\r\nHost: t\r\n\r\nleftover";
    let req = parse_chunked(payload, vec![5]).unwrap().unwrap();
    assert!(req.body.is_empty(), "no Content-Length, no body consumed");
}

#[test]
fn empty_input_is_clean_eof() {
    assert!(parse_chunked(b"", vec![1]).unwrap().is_none());
}
