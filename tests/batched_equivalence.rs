//! Equivalence guarantees for the batched + parallel pipeline.
//!
//! PR goals under test: (1) one `recommend()` call performs exactly one
//! registry fan-out regardless of how many labels keyword expansion
//! produced — counted through an instrumented source; (2) the concurrent
//! worker-pool registry plus parallel filter/rank produce **the same
//! report** as the fully sequential path — same rankings with bitwise-
//! equal scores, same filtered-out reasons, same degraded-source sets —
//! across seeded worlds and scripted fault schedules.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use minaret::prelude::*;
use minaret::scholarly::{ScholarSource, SourceError, SourceProfile};
use minaret_synth::SubmissionGenerator;

/// Wraps a source and counts how it is queried for interests: batched
/// calls vs. legacy per-label calls.
struct CountingSource {
    inner: SimulatedSource,
    batched: AtomicUsize,
    single: AtomicUsize,
}

impl CountingSource {
    fn new(inner: SimulatedSource) -> Self {
        Self {
            inner,
            batched: AtomicUsize::new(0),
            single: AtomicUsize::new(0),
        }
    }
}

impl ScholarSource for CountingSource {
    fn kind(&self) -> SourceKind {
        self.inner.kind()
    }
    fn supports_interest_search(&self) -> bool {
        self.inner.supports_interest_search()
    }
    fn search_by_name(&self, name: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        self.inner.search_by_name(name)
    }
    fn search_by_interest(&self, keyword: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        self.single.fetch_add(1, Ordering::Relaxed);
        self.inner.search_by_interest(keyword)
    }
    fn search_by_interests(
        &self,
        labels: &[Arc<str>],
    ) -> Result<minaret_scholarly::LabeledHits, SourceError> {
        self.batched.fetch_add(1, Ordering::Relaxed);
        self.inner.search_by_interests(labels)
    }
    fn fetch_profile(&self, key: &str) -> Result<Arc<SourceProfile>, SourceError> {
        self.inner.fetch_profile(key)
    }
}

fn world(scholars: usize) -> Arc<World> {
    Arc::new(WorldGenerator::new(WorldConfig::sized(scholars)).generate())
}

fn manuscript(world: &World, seed: u64) -> ManuscriptDetails {
    let sub = SubmissionGenerator::new(world, seed).generate().unwrap();
    ManuscriptDetails {
        title: sub.title.clone(),
        keywords: sub.keywords.clone(),
        authors: sub
            .authors
            .iter()
            .map(|&id| AuthorInput::named(world.scholar(id).full_name()))
            .collect(),
        target_venue: world.venue(sub.target_venue).name.clone(),
    }
}

#[test]
fn one_recommend_is_exactly_one_fanout() {
    let world = world(250);
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    let mut counters: Vec<Arc<CountingSource>> = Vec::new();
    for spec in SourceSpec::all_defaults() {
        let counting = Arc::new(CountingSource::new(SimulatedSource::new(
            spec,
            world.clone(),
        )));
        counters.push(counting.clone());
        registry.register(counting);
    }
    let minaret = Minaret::new(
        Arc::new(registry),
        Arc::new(minaret_ontology::seed::curated_cs_ontology()),
        EditorConfig::default(),
    );
    let m = manuscript(&world, 23);
    assert!(
        m.keywords.len() >= 2,
        "want a multi-keyword manuscript so expansion yields many labels"
    );
    minaret.recommend(&m).expect("pipeline succeeds");
    for source in &counters {
        let batched = source.batched.load(Ordering::Relaxed);
        let single = source.single.load(Ordering::Relaxed);
        assert_eq!(
            single,
            0,
            "{:?} was queried per-label; retrieval must be batched",
            source.kind()
        );
        if source.supports_interest_search() {
            assert_eq!(
                batched,
                1,
                "{:?} must see exactly one batched fan-out per recommend()",
                source.kind()
            );
        } else {
            assert_eq!(
                batched,
                0,
                "{:?} does not support interest search",
                source.kind()
            );
        }
    }
    // A second recommendation pays exactly one more fan-out.
    minaret.recommend(&m).expect("pipeline succeeds");
    for source in counters.iter().filter(|s| s.supports_interest_search()) {
        assert_eq!(source.batched.load(Ordering::Relaxed), 2);
    }
}

/// Serializes everything ranking-relevant about a report, with float
/// scores rendered via `to_bits` so equality means *bitwise* equality.
fn fingerprint(report: &RecommendationReport) -> Vec<String> {
    let mut lines = vec![
        format!("retrieved={}", report.candidates_retrieved),
        format!("degraded={:?}", report.degraded_sources),
        format!("errors={:?}", report.source_errors),
    ];
    for rec in &report.recommendations {
        let b = &rec.breakdown;
        lines.push(format!(
            "rank {} {} total={:016x} cov={:016x} imp={:016x} rec={:016x} exp={:016x} fam={:016x} res={:016x}",
            rec.rank,
            rec.name,
            rec.total.to_bits(),
            b.coverage.to_bits(),
            b.impact.to_bits(),
            b.recency.to_bits(),
            b.experience.to_bits(),
            b.familiarity.to_bits(),
            b.responsiveness.to_bits(),
        ));
    }
    for (cand, reason) in &report.filtered_out {
        lines.push(format!(
            "filtered {} score={:016x} reason={:?}",
            cand.merged.display_name,
            cand.keyword_score.to_bits(),
            reason
        ));
    }
    lines
}

/// Builds a framework over all six sources with the given registry mode,
/// filter/rank parallelism, and scripted faults. Fault schedules are
/// stateful, so every variant gets its own freshly scripted registry.
fn build(
    world: &Arc<World>,
    concurrent: bool,
    parallelism: usize,
    faults: &[(SourceKind, FaultSchedule)],
) -> Minaret {
    let mut registry = SourceRegistry::new(RegistryConfig {
        concurrent,
        ..Default::default()
    });
    for spec in SourceSpec::all_defaults() {
        let kind = spec.kind;
        let mut source = SimulatedSource::new(spec, world.clone());
        if let Some((_, fault)) = faults.iter().find(|(k, _)| *k == kind) {
            source = source.with_fault(*fault);
        }
        registry.register(Arc::new(source));
    }
    Minaret::new(
        Arc::new(registry),
        Arc::new(minaret_ontology::seed::curated_cs_ontology()),
        EditorConfig::default(),
    )
    .with_parallelism(parallelism)
}

#[test]
fn parallel_report_is_byte_identical_to_sequential_across_seeds() {
    let world = world(300);
    for seed in [1u64, 7, 23, 42] {
        let m = manuscript(&world, seed);
        let parallel = build(&world, true, 0, &[])
            .recommend(&m)
            .expect("parallel run succeeds");
        let sequential = build(&world, false, 1, &[])
            .recommend(&m)
            .expect("sequential run succeeds");
        assert_eq!(
            fingerprint(&parallel),
            fingerprint(&sequential),
            "seed {seed}: worker-pool + parallel filter/rank diverged from the sequential path"
        );
    }
}

#[test]
fn parallel_report_is_byte_identical_under_scripted_faults() {
    let world = world(300);
    let scenarios: Vec<Vec<(SourceKind, FaultSchedule)>> = vec![
        // A transient wobble, fully absorbed by retries.
        vec![(
            SourceKind::GoogleScholar,
            FaultSchedule::FailThenRecover { failures: 2 },
        )],
        // A permanent outage: both variants must degrade identically.
        vec![(SourceKind::Publons, FaultSchedule::PermanentOutage)],
        // Mixed weather across several sources.
        vec![
            (
                SourceKind::Dblp,
                FaultSchedule::FailThenRecover { failures: 1 },
            ),
            (SourceKind::Publons, FaultSchedule::PermanentOutage),
            (
                SourceKind::Orcid,
                FaultSchedule::FailThenRecover { failures: 2 },
            ),
        ],
    ];
    for (i, faults) in scenarios.iter().enumerate() {
        let m = manuscript(&world, 17);
        let parallel = build(&world, true, 0, faults)
            .recommend(&m)
            .expect("parallel run succeeds");
        let sequential = build(&world, false, 1, faults)
            .recommend(&m)
            .expect("sequential run succeeds");
        assert_eq!(
            fingerprint(&parallel),
            fingerprint(&sequential),
            "fault scenario {i} diverged between parallel and sequential paths"
        );
        if faults
            .iter()
            .any(|(_, f)| matches!(f, FaultSchedule::PermanentOutage))
        {
            assert!(parallel.degraded, "scenario {i} should report degradation");
            assert!(!parallel.source_errors.is_empty());
        }
    }
}

/// FNV-1a over fingerprint lines, folding a newline byte after each —
/// the exact hash the goldens below were captured with.
fn fnv64(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for line in lines {
        for b in line.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0x0a;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// True when the goldens are being re-captured rather than checked.
/// Run `MINARET_REBASELINE=1 cargo test --test batched_equivalence -- --nocapture golden`
/// and paste the printed hashes over the constants below. Only do this
/// for a *deliberate* behavior change (e.g. the world generator or the
/// ranking pipeline changed on purpose) — never to paper over a diff
/// you can't explain.
fn rebaseline() -> bool {
    std::env::var("MINARET_REBASELINE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Golden snapshots of the sequential parallelism-1 pipeline over
/// `world(300)`, pinning recommendations **byte-identical across
/// refactors** (zero-copy profiles, interning, lazy materialization —
/// none may shift a score or a rank). Last re-captured when world
/// generation moved to per-entity seed derivation (chunk-invariant
/// streaming), which changed the content every seed produces.
#[test]
fn zero_copy_pipeline_matches_pre_refactor_golden_snapshots() {
    let world = world(300);
    let golden = [
        (1u64, 0x5a38097eed2f051eu64),
        (7, 0x3a16ec6e4cd44adf),
        (23, 0x6b2669f56a4295b3),
        (42, 0x3d6f173c6e097f4c),
    ];
    for (seed, want) in golden {
        let m = manuscript(&world, seed);
        let report = build(&world, false, 1, &[])
            .recommend(&m)
            .expect("sequential run succeeds");
        let got = fnv64(&fingerprint(&report));
        if rebaseline() {
            eprintln!("golden seed {seed}: {got:#018x}");
            continue;
        }
        assert_eq!(
            got, want,
            "seed {seed}: recommendations diverged from the golden snapshot"
        );
    }
}

/// Same golden-snapshot guarantee under scripted fault schedules: the
/// degraded-mode output (outcomes, errors, surviving rankings) is
/// pinned byte-identical across refactors too.
#[test]
fn zero_copy_pipeline_matches_golden_snapshots_under_faults() {
    let world = world(300);
    let scenarios: Vec<(Vec<(SourceKind, FaultSchedule)>, u64)> = vec![
        (
            vec![(
                SourceKind::GoogleScholar,
                FaultSchedule::FailThenRecover { failures: 2 },
            )],
            0x92bba5c6e7c17da1,
        ),
        (
            vec![(SourceKind::Publons, FaultSchedule::PermanentOutage)],
            0x3aeb0c737d208620,
        ),
        (
            vec![
                (
                    SourceKind::Dblp,
                    FaultSchedule::FailThenRecover { failures: 1 },
                ),
                (SourceKind::Publons, FaultSchedule::PermanentOutage),
                (
                    SourceKind::Orcid,
                    FaultSchedule::FailThenRecover { failures: 2 },
                ),
            ],
            0x3aeb0c737d208620,
        ),
    ];
    for (i, (faults, want)) in scenarios.iter().enumerate() {
        let m = manuscript(&world, 17);
        let report = build(&world, false, 1, faults)
            .recommend(&m)
            .expect("sequential run succeeds");
        let got = fnv64(&fingerprint(&report));
        if rebaseline() {
            eprintln!("golden fault scenario {i}: {got:#018x}");
            continue;
        }
        assert_eq!(
            got, *want,
            "fault scenario {i} diverged from the golden snapshot"
        );
    }
}
