//! Degraded-mode behaviour over the REST surface: a scripted-dead source
//! must show up as `degraded: true` in `/recommend` responses and as an
//! open breaker gauge in `/metrics`.

use std::sync::Arc;

use minaret::json::Value;
use minaret::prelude::*;
use minaret::scholarly::ScholarSource;
use minaret_server::{build_router, AppState};
use minaret_telemetry::Telemetry;

fn dispatch(
    router: &minaret::http::Router,
    method: minaret::http::Method,
    path: &str,
    body: &str,
) -> minaret::http::Response {
    router.dispatch(&minaret::http::Request {
        method,
        path: path.into(),
        query: vec![],
        headers: vec![],
        body: body.as_bytes().to_vec(),
        minor_version: 1,
        deadline: None,
    })
}

/// Demo-equivalent state, except Publons is scripted permanently dead
/// and the registry runs with a tight breaker so the outage trips fast.
fn state_with_dead_publons() -> Arc<AppState> {
    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(250)).generate());
    let telemetry = Telemetry::new();
    let mut registry = minaret::scholarly::SourceRegistry::with_telemetry(
        RegistryConfig {
            max_retries: 1,
            resilience: ResilienceConfig {
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    cooldown_micros: 60_000_000,
                    probe_successes: 1,
                },
                ..ResilienceConfig::standard()
            },
            ..Default::default()
        },
        telemetry.clone(),
    );
    for spec in SourceSpec::all_defaults() {
        let kind = spec.kind;
        let mut source = SimulatedSource::new(spec, world.clone());
        if kind == SourceKind::Publons {
            source = source.with_fault(FaultSchedule::PermanentOutage);
        }
        registry.register(Arc::new(source) as Arc<dyn ScholarSource>);
    }
    AppState::with_registry(world, Arc::new(registry), telemetry)
}

#[test]
fn recommend_reports_degraded_sources_and_metrics_show_the_breaker() {
    let state = state_with_dead_publons();
    let router = build_router(state.clone());

    let lead = state
        .world
        .scholars()
        .iter()
        .find(|s| !state.world.papers_of(s.id).is_empty())
        .expect("a published scholar exists");
    let keywords: Vec<Value> = lead
        .interests
        .iter()
        .take(2)
        .map(|&t| Value::from(state.world.ontology.label(t)))
        .collect();
    let body = Value::object()
        .set("title", "A manuscript during a Publons outage")
        .set("keywords", keywords)
        .set(
            "authors",
            vec![Value::object().set("name", lead.full_name().as_str())],
        )
        .set("target_venue", state.world.venues()[0].name.as_str())
        .to_string();

    let resp = dispatch(&router, minaret::http::Method::Post, "/recommend", &body);
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let v = minaret::json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(
        v.get("degraded").and_then(Value::as_bool),
        Some(true),
        "{v}"
    );
    let degraded: Vec<&str> = v
        .get("degraded_sources")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert_eq!(degraded, vec!["Publons"]);
    assert!(
        !v.get("recommendations")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty(),
        "degraded runs still return a ranked list"
    );
    assert!(
        !v.get("source_errors")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty(),
        "the per-source errors are surfaced"
    );

    // The breaker tripped open during the run and /metrics says so:
    // gauge value 2 = open (0 closed, 1 half-open).
    let resp = dispatch(&router, minaret::http::Method::Get, "/metrics", "");
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).unwrap();
    assert!(
        text.contains("minaret_breaker_state{source=\"pub\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("minaret_source_short_circuits_total{source=\"pub\"}"),
        "{text}"
    );
    // Healthy sources stay closed.
    assert!(
        text.contains("minaret_breaker_state{source=\"dblp\"} 0"),
        "{text}"
    );
}

#[test]
fn min_sources_floor_returns_service_unavailable() {
    let state = state_with_dead_publons();
    let router = build_router(state.clone());
    let lead = state
        .world
        .scholars()
        .iter()
        .find(|s| !state.world.papers_of(s.id).is_empty())
        .unwrap();
    let keywords: Vec<Value> = lead
        .interests
        .iter()
        .take(2)
        .map(|&t| Value::from(state.world.ontology.label(t)))
        .collect();
    // Demand more responding sources than can answer with Publons dead:
    // only Google Scholar serves interest search now.
    let body = Value::object()
        .set("title", "Too strict for an outage")
        .set("keywords", keywords)
        .set(
            "authors",
            vec![Value::object().set("name", lead.full_name().as_str())],
        )
        .set("target_venue", state.world.venues()[0].name.as_str())
        .set("config", Value::object().set("min_sources", 2u32))
        .to_string();
    let resp = dispatch(&router, minaret::http::Method::Post, "/recommend", &body);
    assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
    let text = String::from_utf8_lossy(&resp.body).to_string();
    assert!(text.contains("Publons"), "{text}");
}
