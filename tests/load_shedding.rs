//! Deterministic overload harness for the admission-controlled server.
//!
//! The blocking primitive is a condvar gate inside a wrapped scholarly
//! source, not a sleep: the test *knows* when both workers are wedged
//! (the gate counts blocked threads) and *knows* when the queue is full
//! (`Server::queue_depth`), so every assertion fires on a proven state
//! rather than a timing guess.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};

use minaret::http::{KeepAliveConfig, Response, Router, Server, ServerConfig};
use minaret::prelude::*;
use minaret::scholarly::{LabeledHits, SourceError, SourceProfile};
use minaret_server::{build_router, AppState};
use minaret_telemetry::Telemetry;

/// A condvar gate: threads entering `pass` block until `open`, and the
/// test can wait until exactly `n` threads are blocked inside.
struct Gate {
    state: Mutex<(bool, usize)>, // (open, currently blocked)
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            state: Mutex::new((false, 0)),
            cv: Condvar::new(),
        })
    }

    fn pass(&self) {
        let mut s = self.state.lock().unwrap();
        s.1 += 1;
        self.cv.notify_all();
        while !s.0 {
            s = self.cv.wait(s).unwrap();
        }
        s.1 -= 1;
        self.cv.notify_all();
    }

    /// Blocks until `n` threads are waiting inside the gate.
    fn wait_blocked(&self, n: usize) {
        let mut s = self.state.lock().unwrap();
        while s.1 < n {
            s = self.cv.wait(s).unwrap();
        }
    }

    fn open(&self) {
        let mut s = self.state.lock().unwrap();
        s.0 = true;
        self.cv.notify_all();
    }
}

/// Wraps a source so every call must pass the gate first.
struct GatedSource {
    inner: SimulatedSource,
    gate: Arc<Gate>,
}

impl ScholarSource for GatedSource {
    fn kind(&self) -> SourceKind {
        self.inner.kind()
    }
    fn supports_interest_search(&self) -> bool {
        self.inner.supports_interest_search()
    }
    fn search_by_name(&self, name: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        self.gate.pass();
        self.inner.search_by_name(name)
    }
    fn search_by_interest(&self, keyword: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        self.gate.pass();
        self.inner.search_by_interest(keyword)
    }
    fn search_by_interests(&self, labels: &[Arc<str>]) -> Result<LabeledHits, SourceError> {
        self.gate.pass();
        self.inner.search_by_interests(labels)
    }
    fn fetch_profile(&self, key: &str) -> Result<Arc<SourceProfile>, SourceError> {
        self.gate.pass();
        self.inner.fetch_profile(key)
    }
}

/// App state whose single source is gated; fan-outs run on the calling
/// worker thread (`concurrent: false`) so a closed gate provably wedges
/// the HTTP worker itself.
fn gated_state(gate: Arc<Gate>, telemetry: Telemetry) -> Arc<AppState> {
    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(60)).generate());
    let mut registry = SourceRegistry::with_telemetry(
        RegistryConfig {
            max_retries: 0,
            concurrent: false,
            resilience: ResilienceConfig::default(),
        },
        telemetry.clone(),
    );
    let spec = SourceSpec::all_defaults().into_iter().next().unwrap();
    registry.register(Arc::new(GatedSource {
        inner: SimulatedSource::new(spec, world.clone()),
        gate,
    }) as Arc<dyn ScholarSource>);
    AppState::with_registry(world, Arc::new(registry), telemetry)
}

/// A complete close-framed exchange: connect, send, read until EOF (or
/// a reset — whatever already arrived is returned).
fn raw_request(addr: SocketAddr, payload: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(payload.as_bytes()).unwrap();
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn try_status_of(response: &str) -> Option<u16> {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
}

fn status_of(response: &str) -> u16 {
    try_status_of(response).unwrap_or_else(|| panic!("unparseable response: {response:?}"))
}

#[test]
fn full_queue_sheds_503_with_retry_after_and_recovers() {
    let gate = Gate::new();
    let telemetry = Telemetry::new();
    let state = gated_state(gate.clone(), telemetry.clone());
    let router = build_router(state);
    let server = Server::bind_with(
        "127.0.0.1:0",
        router,
        ServerConfig {
            workers: 2,
            queue_depth: 2,
            request_timeout: None,
            keep_alive: KeepAliveConfig {
                max_requests: 100,
                idle_timeout: None,
            },
            retry_after_secs: 3,
            telemetry: telemetry.clone(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Phase 1: wedge both workers on the gated source.
    let body = r#"{"authors":[{"name":"Ada King"}]}"#;
    let blocker_payload = Arc::new(format!(
        "POST /verify-authors HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    ));
    let blockers: Vec<_> = (0..2)
        .map(|_| {
            let payload = blocker_payload.clone();
            std::thread::spawn(move || raw_request(addr, &payload))
        })
        .collect();
    gate.wait_blocked(2); // both workers are now provably inside the gate

    // Phase 2: fill the admission queue. The acceptor enqueues these,
    // but no worker is free to pop them.
    let queued: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                raw_request(
                    addr,
                    "GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                )
            })
        })
        .collect();
    while server.queue_depth() < 2 {
        std::thread::yield_now();
    }

    // Phase 3: one connection past capacity is refused immediately —
    // not queued, not left hanging — with the configured Retry-After.
    let shed = raw_request(
        addr,
        "GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&shed), 503, "{shed}");
    assert!(shed.contains("Retry-After: 3"), "{shed}");
    assert_eq!(
        server.queue_depth(),
        2,
        "the shed connection never entered the queue"
    );
    assert_eq!(
        telemetry
            .counter("minaret_http_shed_total", &[("reason", "queue_full")])
            .get(),
        1
    );

    // Phase 4: recovery. Open the gate; the wedged workers finish, the
    // queued connections are served, and fresh requests get 200 again.
    gate.open();
    for b in blockers {
        assert_eq!(status_of(&b.join().unwrap()), 200);
    }
    for q in queued {
        assert_eq!(status_of(&q.join().unwrap()), 200);
    }
    let after = raw_request(
        addr,
        "GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&after), 200, "{after}");

    // The whole incident is visible at /metrics: the shed counter and
    // the time-in-queue histogram both recorded.
    let metrics = raw_request(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert!(
        metrics.contains("minaret_http_shed_total{reason=\"queue_full\"} 1"),
        "{metrics}"
    );
    assert!(
        telemetry
            .histogram("minaret_http_time_in_queue_micros", &[])
            .snapshot()
            .count
            >= 2,
        "queued connections recorded their time in queue"
    );

    server.shutdown();
}

#[test]
fn per_client_burst_cap_sheds_429_until_a_slot_frees() {
    let telemetry = Telemetry::new();
    let mut router = Router::new();
    router.get("/ping", |_, _| Response::text(200, "pong"));
    let server = Server::bind_with(
        "127.0.0.1:0",
        router,
        ServerConfig {
            workers: 2,
            queue_depth: 8,
            request_timeout: None,
            keep_alive: KeepAliveConfig {
                max_requests: 100,
                idle_timeout: None,
            },
            per_client_burst: 1,
            telemetry: telemetry.clone(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Hold one admitted keep-alive connection open (it occupies the
    // client's single burst slot without ever sending a request)...
    let held = TcpStream::connect(addr).unwrap();
    // ...and wait until the acceptor has admitted it: the *next*
    // connection is the one that must be refused, and it only can be
    // once the held connection is counted.
    let refused = loop {
        let resp = raw_request(
            addr,
            "GET /ping HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        match try_status_of(&resp) {
            Some(429) => break resp,
            // 200: held conn not admitted yet. None: the refusal was
            // reset in flight. Either way, try again.
            Some(200) | None => std::thread::yield_now(),
            Some(other) => panic!("unexpected status {other}: {resp}"),
        }
    };
    assert!(refused.contains("Retry-After:"), "{refused}");
    assert!(
        telemetry
            .counter("minaret_http_shed_total", &[("reason", "client_burst")])
            .get()
            >= 1
    );

    // Releasing the held connection frees the slot; the client is
    // admitted again (retrying absorbs the release latency — no sleeps).
    drop(held);
    loop {
        let resp = raw_request(
            addr,
            "GET /ping HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        if try_status_of(&resp) == Some(200) {
            break;
        }
        std::thread::yield_now();
    }

    server.shutdown();
}
