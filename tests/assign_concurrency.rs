//! Deterministic concurrency: a batch `/assign` and a `/recommend` that
//! share the same manuscript must coalesce onto ONE interest fan-out.
//!
//! The blocking primitive is a condvar gate inside the wrapped source
//! (the same technique as `load_shedding.rs`), not a sleep: the test
//! *knows* the assign fan-out is wedged inside the source (gate counts
//! blocked threads) and *knows* the recommend fan-out became a follower
//! (`coalesced_count`), so every assertion fires on a proven
//! interleaving rather than a timing guess.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use minaret::json::Value;
use minaret::prelude::*;
use minaret::scholarly::{LabeledHits, ScholarSource, SourceError, SourceProfile};
use minaret_server::{build_router, AppState};
use minaret_telemetry::Telemetry;

/// A condvar gate: threads entering `pass` block until `open`, and the
/// test can wait until exactly `n` threads are blocked inside.
struct Gate {
    state: Mutex<(bool, usize)>, // (open, currently blocked)
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            state: Mutex::new((false, 0)),
            cv: Condvar::new(),
        })
    }

    fn pass(&self) {
        let mut s = self.state.lock().unwrap();
        s.1 += 1;
        self.cv.notify_all();
        while !s.0 {
            s = self.cv.wait(s).unwrap();
        }
        s.1 -= 1;
        self.cv.notify_all();
    }

    /// Blocks until `n` threads are waiting inside the gate.
    fn wait_blocked(&self, n: usize) {
        let mut s = self.state.lock().unwrap();
        while s.1 < n {
            s = self.cv.wait(s).unwrap();
        }
    }

    fn blocked(&self) -> usize {
        self.state.lock().unwrap().1
    }

    fn open(&self) {
        let mut s = self.state.lock().unwrap();
        s.0 = true;
        self.cv.notify_all();
    }
}

/// Wraps a source so only the *batched interest fan-out* must pass the
/// gate (and is counted); name/profile lookups stay free so the rest of
/// each pipeline runs unimpeded.
struct GatedSource {
    inner: SimulatedSource,
    gate: Arc<Gate>,
    batched: AtomicUsize,
}

impl ScholarSource for GatedSource {
    fn kind(&self) -> SourceKind {
        self.inner.kind()
    }
    fn supports_interest_search(&self) -> bool {
        self.inner.supports_interest_search()
    }
    fn search_by_name(&self, name: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        self.inner.search_by_name(name)
    }
    fn search_by_interest(&self, keyword: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        self.inner.search_by_interest(keyword)
    }
    fn search_by_interests(&self, labels: &[Arc<str>]) -> Result<LabeledHits, SourceError> {
        self.batched.fetch_add(1, Ordering::SeqCst);
        self.gate.pass();
        self.inner.search_by_interests(labels)
    }
    fn fetch_profile(&self, key: &str) -> Result<Arc<SourceProfile>, SourceError> {
        self.inner.fetch_profile(key)
    }
}

fn dispatch(router: &minaret::http::Router, path: &str, body: &str) -> minaret::http::Response {
    router.dispatch(&minaret::http::Request {
        method: minaret::http::Method::Post,
        path: path.into(),
        query: vec![],
        headers: vec![],
        body: body.as_bytes().to_vec(),
        minor_version: 1,
        deadline: None,
    })
}

#[test]
fn concurrent_assign_and_recommend_coalesce_onto_one_fanout() {
    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(250)).generate());
    let telemetry = Telemetry::new();
    let gate = Gate::new();
    let mut registry = SourceRegistry::with_telemetry(
        RegistryConfig {
            max_retries: 0,
            concurrent: false,
            resilience: ResilienceConfig::default(),
        },
        telemetry.clone(),
    );
    let spec = SourceSpec::all_defaults().into_iter().next().unwrap();
    let prefix = spec.kind.prefix();
    let source = Arc::new(GatedSource {
        inner: SimulatedSource::new(spec, world.clone()),
        gate: gate.clone(),
        batched: AtomicUsize::new(0),
    });
    registry.register(source.clone() as Arc<dyn ScholarSource>);
    let state = AppState::with_registry(world, Arc::new(registry), telemetry);
    let router = Arc::new(build_router(state.clone()));

    // One manuscript shared by both requests: identical keywords expand
    // to the identical normalized label set, which is the coalescing key.
    let lead = state
        .world
        .scholars()
        .iter()
        .find(|s| !state.world.papers_of(s.id).is_empty())
        .expect("a published scholar exists");
    let keywords: Vec<Value> = lead
        .interests
        .iter()
        .take(2)
        .map(|&t| Value::from(state.world.ontology.label(t)))
        .collect();
    let manuscript = Value::object()
        .set("title", "Coalescing under concurrent assignment")
        .set("keywords", keywords)
        .set(
            "authors",
            vec![Value::object().set("name", lead.full_name().as_str())],
        )
        .set("target_venue", state.world.venues()[0].name.as_str());
    let assign_body = Value::object()
        .set("manuscripts", vec![manuscript.clone()])
        .set(
            "spec",
            Value::object()
                .set("reviewers_per_paper", 2u64)
                .set("max_load", 3u64),
        )
        .to_string();
    let recommend_body = manuscript.to_string();

    // Thread A: /assign. Its single batched fan-out wedges in the gate
    // while it *leads* the coalescing cell.
    let router_a = router.clone();
    let a = std::thread::spawn(move || dispatch(&router_a, "/assign", &assign_body));
    gate.wait_blocked(1);

    // Thread B: /recommend over the same label set. It must become a
    // follower of A's in-flight fan-out — never a second gate entrant.
    let router_b = router.clone();
    let b = std::thread::spawn(move || dispatch(&router_b, "/recommend", &recommend_body));
    while state.registry.coalesced_count() < 1 {
        assert!(
            gate.blocked() < 2,
            "recommend started a second fan-out instead of coalescing"
        );
        std::thread::yield_now();
    }

    // With one leader wedged and one follower parked, telemetry must
    // still be readable: no lock is held across either wait.
    let mid = router.dispatch(&minaret::http::Request {
        method: minaret::http::Method::Get,
        path: "/metrics".into(),
        query: vec![],
        headers: vec![],
        body: vec![],
        minor_version: 1,
        deadline: None,
    });
    assert_eq!(mid.status, 200);

    gate.open();
    let assign_resp = a.join().unwrap();
    let recommend_resp = b.join().unwrap();
    assert_eq!(
        assign_resp.status,
        200,
        "{}",
        String::from_utf8_lossy(&assign_resp.body)
    );
    assert_eq!(
        recommend_resp.status,
        200,
        "{}",
        String::from_utf8_lossy(&recommend_resp.body)
    );
    let v = minaret::json::parse(std::str::from_utf8(&assign_resp.body).unwrap()).unwrap();
    assert_eq!(
        v.get("papers")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(1)
    );

    // Exactly one batched call reached the source; the recommend side
    // shared its result.
    assert_eq!(source.batched.load(Ordering::SeqCst), 1);
    assert_eq!(state.registry.coalesced_count(), 1);

    // And the shared telemetry registry came through uncorrupted: one
    // 200 per route, one coalesced follower, no source errors.
    let after = router.dispatch(&minaret::http::Request {
        method: minaret::http::Method::Get,
        path: "/metrics".into(),
        query: vec![],
        headers: vec![],
        body: vec![],
        minor_version: 1,
        deadline: None,
    });
    assert_eq!(after.status, 200);
    let text = String::from_utf8(after.body).unwrap();
    for needle in [
        "minaret_http_requests_total{route=\"/assign\",status=\"200\"} 1".to_string(),
        "minaret_http_requests_total{route=\"/recommend\",status=\"200\"} 1".to_string(),
        format!("minaret_fanout_coalesced_total{{source=\"{prefix}\"}} 1"),
    ] {
        assert!(text.contains(&needle), "missing {needle:?} in:\n{text}");
    }
}
