//! Cross-crate integration: world → sources → framework → ground truth.

use std::sync::Arc;

use minaret::prelude::*;
use minaret::synth::ground_truth_relevance;
use minaret_synth::SubmissionGenerator;

fn build(scholars: usize, seed: u64) -> (Arc<World>, Arc<SourceRegistry>, Minaret) {
    let world = Arc::new(
        WorldGenerator::new(WorldConfig {
            seed,
            ..WorldConfig::sized(scholars)
        })
        .generate(),
    );
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for spec in SourceSpec::all_defaults() {
        registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
    }
    let registry = Arc::new(registry);
    let minaret = Minaret::new(
        registry.clone(),
        Arc::new(minaret::ontology::seed::curated_cs_ontology()),
        EditorConfig::default(),
    );
    (world, registry, minaret)
}

fn manuscript(world: &World, seed: u64) -> ManuscriptDetails {
    let sub = SubmissionGenerator::new(world, seed).generate().unwrap();
    ManuscriptDetails {
        title: sub.title.clone(),
        keywords: sub.keywords.clone(),
        authors: sub
            .authors
            .iter()
            .map(|&id| {
                let s = world.scholar(id);
                let inst = world.institution(s.current_affiliation());
                AuthorInput::named(s.full_name())
                    .with_affiliation(inst.name.clone())
                    .with_country(inst.country.clone())
            })
            .collect(),
        target_venue: world.venue(sub.target_venue).name.clone(),
    }
}

#[test]
fn pipeline_is_deterministic_across_instances() {
    let (world_a, _, minaret_a) = build(300, 11);
    let (_world_b, _, minaret_b) = build(300, 11);
    let m = manuscript(&world_a, 5);
    let a = minaret_a.recommend(&m).unwrap();
    let b = minaret_b.recommend(&m).unwrap();
    let names_a: Vec<_> = a.recommendations.iter().map(|r| &r.name).collect();
    let names_b: Vec<_> = b.recommendations.iter().map(|r| &r.name).collect();
    assert_eq!(names_a, names_b);
    assert_eq!(a.candidates_retrieved, b.candidates_retrieved);
}

#[test]
fn different_world_seeds_give_different_worlds() {
    let (wa, ..) = build(300, 1);
    let (wb, ..) = build(300, 2);
    assert_ne!(wa.stats(), wb.stats());
}

#[test]
fn recommendations_have_real_topical_relevance() {
    // Pool over several worlds *and* several submissions: the
    // gap-closed statistic for a single (world, manuscript) draw ranges
    // roughly 0.3–0.65, so any one seed is a lottery. Pooled over three
    // worlds it sits near 0.5; random top-5 picks would close ~0.
    let (mut top_sum, mut top_n) = (0.0f64, 0usize);
    let (mut world_sum, mut world_n) = (0.0f64, 0usize);
    for world_seed in [11, 21, 31] {
        let (world, _, minaret) = build(500, world_seed);
        for sub_seed in 0..5 {
            let sub = SubmissionGenerator::new(&world, sub_seed)
                .generate()
                .unwrap();
            let m = ManuscriptDetails {
                title: sub.title.clone(),
                keywords: sub.keywords.clone(),
                authors: sub
                    .authors
                    .iter()
                    .map(|&id| {
                        let s = world.scholar(id);
                        let inst = world.institution(s.current_affiliation());
                        AuthorInput::named(s.full_name()).with_affiliation(inst.name.clone())
                    })
                    .collect(),
                target_venue: world.venue(sub.target_venue).name.clone(),
            };
            let report = minaret.recommend(&m).unwrap();
            assert!(report.recommendations.len() >= 5);
            // Mean ground-truth relevance of the top 5 must beat the world
            // mean — the recommender is doing real work, not returning
            // arbitrary people.
            for r in report.recommendations.iter().take(5) {
                if let Some(&id) = r.candidate.truths.first() {
                    top_sum += ground_truth_relevance(&world, &sub, id);
                    top_n += 1;
                }
            }
            for s in world.scholars() {
                world_sum += ground_truth_relevance(&world, &sub, s.id);
                world_n += 1;
            }
        }
    }
    let top_mean = top_sum / top_n as f64;
    let world_mean = world_sum / world_n as f64;
    // Scale-invariant margin: the top 5 must close a decisive share of
    // the gap between the world mean and perfect relevance (1.0). A
    // plain ratio test breaks down when the world mean itself is high,
    // and the bar sits below the pooled statistic's observed range so
    // the test checks "real work", not the luck of three seeds.
    let gap_closed = (top_mean - world_mean) / (1.0 - world_mean);
    assert!(
        gap_closed > 0.4,
        "top-5 mean relevance {top_mean:.3} closes only {:.0}% of the gap \
         over world mean {world_mean:.3}",
        gap_closed * 100.0
    );
}

#[test]
fn no_recommended_reviewer_has_ground_truth_coi() {
    let (world, _, minaret) = build(400, 31);
    for seed in 0..4 {
        let sub = SubmissionGenerator::new(&world, seed).generate().unwrap();
        let m = ManuscriptDetails {
            title: sub.title.clone(),
            keywords: sub.keywords.clone(),
            authors: sub
                .authors
                .iter()
                .map(|&id| {
                    let s = world.scholar(id);
                    let inst = world.institution(s.current_affiliation());
                    AuthorInput::named(s.full_name())
                        .with_affiliation(inst.name.clone())
                        .with_country(inst.country.clone())
                })
                .collect(),
            target_venue: world.venue(sub.target_venue).name.clone(),
        };
        let Ok(report) = minaret.recommend(&m) else {
            continue;
        };
        for rec in &report.recommendations {
            // Skip conflated records (several people behind one name) —
            // those are a disambiguation failure measured separately.
            if rec.candidate.truths.len() != 1 {
                continue;
            }
            let truth = rec.candidate.truths[0];
            for &a in &sub.authors {
                assert_ne!(truth, a, "author recommended as reviewer");
                assert!(
                    !world.ever_coauthored(a, truth),
                    "co-author {} recommended (seed {seed})",
                    rec.name
                );
            }
        }
    }
}

#[test]
fn stricter_threshold_never_increases_survivors() {
    let (world, registry, _) = build(300, 41);
    let m = manuscript(&world, 3);
    let ontology = Arc::new(minaret::ontology::seed::curated_cs_ontology());
    let mut previous_kept = usize::MAX;
    for threshold in [0.0, 0.5, 0.8, 0.95] {
        let minaret = Minaret::new(
            registry.clone(),
            ontology.clone(),
            EditorConfig {
                keyword_score_threshold: threshold,
                max_recommendations: usize::MAX,
                ..Default::default()
            },
        );
        let Ok(report) = minaret.recommend(&m) else {
            previous_kept = 0;
            continue;
        };
        let kept = report.recommendations.len();
        assert!(
            kept <= previous_kept,
            "threshold {threshold} kept {kept} > previous {previous_kept}"
        );
        previous_kept = kept;
    }
}

#[test]
fn missing_sources_degrade_gracefully() {
    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(300)).generate());
    // Only DBLP + Google Scholar — Publons (reviews) missing entirely.
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for kind in [SourceKind::Dblp, SourceKind::GoogleScholar] {
        registry.register(Arc::new(SimulatedSource::new(
            SourceSpec::for_kind(kind),
            world.clone(),
        )));
    }
    let minaret = Minaret::new(
        Arc::new(registry),
        Arc::new(minaret::ontology::seed::curated_cs_ontology()),
        EditorConfig::default(),
    );
    let m = manuscript(&world, 8);
    let report = minaret.recommend(&m).unwrap();
    assert!(!report.recommendations.is_empty());
    // Without Publons no one has review records, so the experience
    // component is zero across the board.
    for r in &report.recommendations {
        assert_eq!(r.breakdown.experience, 0.0);
    }
}
