//! Property tests over the batch-assignment solver, plus the
//! conference-scale acceptance pin.
//!
//! Invariants, for random worlds and specs: no reviewer ever exceeds
//! `max_load`; no (author, reviewer) COI pair is ever assigned; every
//! paper receives exactly `reviewers_per_paper` reviewers whenever the
//! batch is feasible (and infeasibility is an *explicit* error, never a
//! silently short paper); the flow refinement never totals below the
//! greedy seed. A golden-fingerprint test additionally pins the solved
//! assignment byte-identical across `with_parallelism` settings and
//! across eager vs. store-backed lazy worlds, and a call-counting
//! source pins the tentpole claim: one `POST /assign` for a batch of 50
//! manuscripts over a 10^4-scholar world performs exactly **one**
//! batched interest fan-out per source.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use minaret::assign::{manuscript_from_submission, AssignError, Assigner, AssignmentSpec};
use minaret::core::coi::check_coi;
use minaret::http::{Method, Request};
use minaret::json::Value;
use minaret::prelude::*;
use minaret::scholarly::{LabeledHits, ScholarSource, SourceError, SourceProfile};
use minaret_server::{build_router, AppState};
use minaret_synth::SubmissionGenerator;
use proptest::prelude::*;

type Shared = (
    Arc<World>,
    Arc<SourceRegistry>,
    Arc<minaret::ontology::Ontology>,
);

/// One shared 250-scholar world + registry for every proptest case.
fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| {
        let world = Arc::new(WorldGenerator::new(WorldConfig::sized(250)).generate());
        let mut registry = SourceRegistry::new(RegistryConfig::default());
        for spec in SourceSpec::all_defaults() {
            registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        (
            world,
            Arc::new(registry),
            Arc::new(minaret::ontology::seed::curated_cs_ontology()),
        )
    })
}

/// A seeded batch of `n` submissions turned into manuscripts.
fn batch(world: &World, seed: u64, n: usize) -> Vec<ManuscriptDetails> {
    let mut generator = SubmissionGenerator::new(world, seed);
    generator
        .generate_many(n)
        .iter()
        .map(|sub| manuscript_from_submission(world, sub))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, .. ProptestConfig::default()
    })]

    #[test]
    fn solver_invariants_hold_for_random_batches(
        seed in 0u64..1000,
        n in 1usize..5,
        k in 1usize..4,
        max_load in 1usize..6,
        coauthorship in any::<bool>(),
    ) {
        let (world, registry, ontology) = shared();
        let manuscripts = batch(world, seed, n);
        let mut config = EditorConfig::default();
        config.coi.coauthorship = coauthorship;
        let spec = AssignmentSpec::new(k, max_load);
        let assigner = Assigner::new(Minaret::new(
            registry.clone(),
            ontology.clone(),
            config.clone(),
        ));
        match assigner.assign(&manuscripts, &spec) {
            Ok(solved) => {
                prop_assert_eq!(solved.papers.len(), n);
                let mut loads: HashMap<usize, usize> = HashMap::new();
                for paper in &solved.papers {
                    // Exactly k reviewers, all distinct.
                    prop_assert_eq!(paper.reviewers.len(), k);
                    let mut idxs: Vec<usize> =
                        paper.reviewers.iter().map(|r| r.pool_index).collect();
                    idxs.sort_unstable();
                    idxs.dedup();
                    prop_assert_eq!(idxs.len(), k);
                    for r in &paper.reviewers {
                        *loads.entry(r.pool_index).or_insert(0) += 1;
                    }
                }
                for load in loads.values() {
                    prop_assert!(*load <= max_load, "reviewer over max_load");
                }
                // The flow refinement never scores below the greedy seed.
                prop_assert!(
                    solved.total_score >= solved.greedy_total - 1e-9,
                    "flow {} < greedy {}",
                    solved.total_score,
                    solved.greedy_total
                );
                // No assigned pair conflicts: recompute the extraction
                // (deterministic) and re-run the COI check directly.
                let extraction = Minaret::new(
                    registry.clone(),
                    ontology.clone(),
                    config.clone(),
                )
                .extract_batch(&manuscripts)
                .expect("extraction already succeeded once");
                for (i, paper) in solved.papers.iter().enumerate() {
                    for r in &paper.reviewers {
                        let verdict = check_coi(
                            &extraction.pool[r.pool_index],
                            &extraction.papers[i].author_records,
                            &config.coi,
                        );
                        prop_assert!(
                            !verdict.conflicted(),
                            "paper {i} assigned conflicted reviewer {:?}: {:?}",
                            r.name,
                            verdict.reasons
                        );
                    }
                }
            }
            // A batch the spec cannot satisfy must say so explicitly —
            // never return short papers.
            Err(AssignError::Infeasible { assigned, required, .. }) => {
                prop_assert!(assigned < required);
            }
            Err(e) => prop_assert!(false, "unexpected solver error: {e}"),
        }
    }
}

/// Serializes everything identity-relevant about a solved batch, float
/// totals via `to_bits` so equality means *bitwise* equality.
fn assignment_fingerprint(a: &BatchAssignment) -> Vec<String> {
    let mut lines = vec![
        format!("pool={}", a.pool_size),
        format!("pairs={}", a.eligible_pairs),
        format!("greedy={:016x}", a.greedy_total.to_bits()),
        format!("total={:016x}", a.total_score.to_bits()),
    ];
    for paper in &a.papers {
        for r in &paper.reviewers {
            lines.push(format!(
                "pair {} -> {} score={:016x}",
                paper.title,
                r.name,
                r.score.to_bits()
            ));
        }
    }
    for l in &a.loads {
        lines.push(format!("load {} = {}", l.name, l.load));
    }
    lines
}

/// FNV-1a over fingerprint lines, folding a newline byte after each.
fn fnv64(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for line in lines {
        for b in line.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0x0a;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// True when the golden below is being re-captured rather than checked
/// (`MINARET_REBASELINE=1 cargo test --test assign_properties -- --nocapture golden`).
fn rebaseline() -> bool {
    std::env::var("MINARET_REBASELINE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The pinned fingerprint of `golden_world` + `batch(seed 99, n 6)` +
/// `AssignmentSpec::new(2, 3)`. Re-capture only for a deliberate solver
/// or world-generation change.
const GOLDEN_ASSIGNMENT: u64 = 0x693d63425828d21b;

fn golden_world() -> Arc<World> {
    Arc::new(
        WorldGenerator::new(WorldConfig {
            seed: 0x5eed,
            ..WorldConfig::sized(600)
        })
        .generate(),
    )
}

fn eager_registry(world: &Arc<World>) -> Arc<SourceRegistry> {
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for spec in SourceSpec::all_defaults() {
        registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
    }
    Arc::new(registry)
}

fn solve_golden(registry: Arc<SourceRegistry>, parallelism: usize, world: &World) -> Vec<String> {
    let manuscripts = batch(world, 99, 6);
    let assigner = Assigner::new(
        Minaret::new(
            registry,
            Arc::new(minaret::ontology::seed::curated_cs_ontology()),
            EditorConfig::default(),
        )
        .with_parallelism(parallelism),
    );
    let solved = assigner
        .assign(&manuscripts, &AssignmentSpec::new(2, 3))
        .expect("golden batch is feasible");
    assignment_fingerprint(&solved)
}

#[test]
fn golden_assignment_is_identical_across_parallelism_and_world_backends() {
    let eager = golden_world();
    let baseline = solve_golden(eager_registry(&eager), 1, &eager);
    // Parallel filter/rank (auto and fixed width) must not move a
    // single pair or bit.
    for parallelism in [0usize, 4] {
        assert_eq!(
            baseline,
            solve_golden(eager_registry(&eager), parallelism, &eager),
            "parallelism {parallelism} diverged from the sequential solve"
        );
    }
    // A store-backed lazy world serving the same snapshot must solve
    // byte-identically to the eager world.
    let dir = std::env::temp_dir().join(format!("minaret-assign-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = minaret_synth::WorldConfig {
        seed: 0x5eed,
        ..minaret_synth::WorldConfig::sized(600)
    };
    let store =
        Arc::new(minaret_store::Store::open(&dir, minaret_store::StoreConfig::default()).unwrap());
    minaret_synth::stream_snapshot_world(
        &store,
        &minaret_synth::StreamingGenerator::new(cfg),
        |_| {},
    )
    .unwrap();
    let lazy = minaret_synth::LazyWorld::open(store)
        .unwrap()
        .expect("snapshot present");
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for spec in SourceSpec::all_defaults() {
        registry.register(Arc::new(SimulatedSource::lazy(spec, lazy.clone())));
    }
    let from_lazy = solve_golden(Arc::new(registry), 1, &eager);
    assert_eq!(
        baseline, from_lazy,
        "lazy-world solve diverged from the eager world"
    );
    drop(lazy);
    let _ = std::fs::remove_dir_all(&dir);

    let got = fnv64(&baseline);
    if rebaseline() {
        eprintln!("golden assignment: {got:#018x}");
        return;
    }
    assert_eq!(
        got, GOLDEN_ASSIGNMENT,
        "solved assignment diverged from the golden snapshot"
    );
}

/// Wraps a source and counts batched vs. per-label interest queries.
struct CountingSource {
    inner: SimulatedSource,
    batched: AtomicUsize,
    single: AtomicUsize,
}

impl ScholarSource for CountingSource {
    fn kind(&self) -> SourceKind {
        self.inner.kind()
    }
    fn supports_interest_search(&self) -> bool {
        self.inner.supports_interest_search()
    }
    fn search_by_name(&self, name: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        self.inner.search_by_name(name)
    }
    fn search_by_interest(&self, keyword: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        self.single.fetch_add(1, Ordering::Relaxed);
        self.inner.search_by_interest(keyword)
    }
    fn search_by_interests(&self, labels: &[Arc<str>]) -> Result<LabeledHits, SourceError> {
        self.batched.fetch_add(1, Ordering::Relaxed);
        self.inner.search_by_interests(labels)
    }
    fn fetch_profile(&self, key: &str) -> Result<Arc<SourceProfile>, SourceError> {
        self.inner.fetch_profile(key)
    }
}

fn manuscript_json(m: &ManuscriptDetails) -> Value {
    Value::object()
        .set("title", m.title.as_str())
        .set(
            "keywords",
            m.keywords
                .iter()
                .map(|k| Value::from(k.as_str()))
                .collect::<Vec<_>>(),
        )
        .set(
            "authors",
            m.authors
                .iter()
                .map(|a| {
                    let mut o = Value::object().set("name", a.name.as_str());
                    if let Some(aff) = &a.affiliation {
                        o = o.set("affiliation", aff.as_str());
                    }
                    if let Some(c) = &a.country {
                        o = o.set("country", c.as_str());
                    }
                    o
                })
                .collect::<Vec<_>>(),
        )
        .set("target_venue", m.target_venue.as_str())
}

/// The tentpole acceptance pin: a conference-scale batch — 50
/// manuscripts over a 10^4-scholar world — completes one `POST /assign`
/// with exactly one batched interest fan-out per interest-capable
/// source and zero legacy per-label queries.
#[test]
fn a_batch_of_fifty_is_one_fanout_per_source() {
    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(10_000)).generate());
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    let mut counters: Vec<Arc<CountingSource>> = Vec::new();
    for spec in SourceSpec::all_defaults() {
        let counting = Arc::new(CountingSource {
            inner: SimulatedSource::new(spec, world.clone()),
            batched: AtomicUsize::new(0),
            single: AtomicUsize::new(0),
        });
        counters.push(counting.clone());
        registry.register(counting);
    }
    let state = AppState::with_registry_and_cache(
        world.clone(),
        Arc::new(registry),
        minaret_telemetry::Telemetry::new(),
        None,
    );
    let router = build_router(state.clone());

    let manuscripts = batch(&world, 4242, 50);
    assert_eq!(manuscripts.len(), 50);
    let body = Value::object()
        .set(
            "manuscripts",
            manuscripts.iter().map(manuscript_json).collect::<Vec<_>>(),
        )
        .set(
            "spec",
            Value::object()
                .set("reviewers_per_paper", 3u64)
                .set("max_load", 8u64),
        )
        .to_string();
    let resp = router.dispatch(&Request {
        method: Method::Post,
        path: "/assign".into(),
        query: vec![],
        headers: vec![],
        body: body.into_bytes(),
        minor_version: 1,
        deadline: None,
    });
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let v = minaret::json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(
        v.get("papers")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(50),
        "every paper came back assigned"
    );
    for source in &counters {
        assert_eq!(
            source.single.load(Ordering::Relaxed),
            0,
            "{:?} was queried per-label; batch retrieval must be batched",
            source.kind()
        );
        let want = usize::from(source.supports_interest_search());
        assert_eq!(
            source.batched.load(Ordering::Relaxed),
            want,
            "{:?}: a 50-manuscript batch must cost exactly {want} fan-out(s)",
            source.kind()
        );
    }
}
