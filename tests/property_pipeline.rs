//! Property-based tests over the whole pipeline: for arbitrary editor
//! configurations, the framework's structural invariants hold.

use std::sync::Arc;

use minaret::prelude::*;
use minaret_synth::SubmissionGenerator;
use proptest::prelude::*;

/// One shared world + registry for all cases (building them per-case
/// would dominate the test time); configs vary per case.
fn shared() -> &'static (
    Arc<World>,
    Arc<SourceRegistry>,
    Arc<minaret::ontology::Ontology>,
) {
    use std::sync::OnceLock;
    static SHARED: OnceLock<(
        Arc<World>,
        Arc<SourceRegistry>,
        Arc<minaret::ontology::Ontology>,
    )> = OnceLock::new();
    SHARED.get_or_init(|| {
        let world = Arc::new(WorldGenerator::new(WorldConfig::sized(250)).generate());
        let mut registry = SourceRegistry::new(RegistryConfig::default());
        for spec in SourceSpec::all_defaults() {
            registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        (
            world,
            Arc::new(registry),
            Arc::new(minaret::ontology::seed::curated_cs_ontology()),
        )
    })
}

fn arb_weights() -> impl Strategy<Value = RankingWeights> {
    (
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
    )
        .prop_map(|(c, i, r, e, f, resp)| RankingWeights {
            coverage: c,
            impact: i,
            recency: r,
            experience: e,
            familiarity: f,
            responsiveness: resp,
        })
}

fn arb_config() -> impl Strategy<Value = EditorConfig> {
    (
        arb_weights(),
        0.0f64..=1.0,
        1usize..=30,
        prop_oneof![
            Just(AffiliationMatchLevel::University),
            Just(AffiliationMatchLevel::Country),
            Just(AffiliationMatchLevel::Off)
        ],
        any::<bool>(),
        prop_oneof![Just(ImpactMetric::Citations), Just(ImpactMetric::HIndex)],
    )
        .prop_map(
            |(weights, threshold, max, level, coauth, metric)| EditorConfig {
                weights,
                keyword_score_threshold: threshold,
                max_recommendations: max,
                coi: CoiConfig {
                    coauthorship: coauth,
                    affiliation_level: level,
                    ..Default::default()
                },
                impact_metric: metric,
                ..Default::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, .. ProptestConfig::default()
    })]

    #[test]
    fn pipeline_invariants_hold_for_any_editor_config(
        config in arb_config(),
        sub_seed in 0u64..6,
    ) {
        let (world, registry, ontology) = shared();
        let sub = SubmissionGenerator::new(world, sub_seed).generate().unwrap();
        let manuscript = ManuscriptDetails {
            title: sub.title.clone(),
            keywords: sub.keywords.clone(),
            authors: sub
                .authors
                .iter()
                .map(|&id| {
                    let s = world.scholar(id);
                    let inst = world.institution(s.current_affiliation());
                    AuthorInput::named(s.full_name())
                        .with_affiliation(inst.name.clone())
                        .with_country(inst.country.clone())
                })
                .collect(),
            target_venue: world.venue(sub.target_venue).name.clone(),
        };
        let max = config.max_recommendations;
        let coi_coauthorship = config.coi.coauthorship;
        let minaret = Minaret::new(registry.clone(), ontology.clone(), config);
        let Ok(report) = minaret.recommend(&manuscript) else {
            // NoCandidates is legal for extreme configs.
            return Ok(());
        };
        // Invariant 1: bounded output.
        prop_assert!(report.recommendations.len() <= max);
        // Invariant 2: ranks contiguous, totals sorted and in [0, 1].
        let mut prev = f64::INFINITY;
        for (i, r) in report.recommendations.iter().enumerate() {
            prop_assert_eq!(r.rank, i + 1);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&r.total));
            prop_assert!(r.total <= prev);
            prev = r.total;
            // Invariant 3: every component in [0, 1].
            for v in [
                r.breakdown.coverage,
                r.breakdown.impact,
                r.breakdown.recency,
                r.breakdown.experience,
                r.breakdown.familiarity,
                r.breakdown.responsiveness,
            ] {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
            }
            // Invariant 4: matched keywords scored in [0, 1].
            for (_, s) in &r.matched_keywords {
                prop_assert!((0.0..=1.0).contains(s));
            }
        }
        // Invariant 5: accounting — kept + filtered = retrieved.
        prop_assert!(
            report.filtered_out.len() <= report.candidates_retrieved
        );
        // Invariant 6: with co-authorship COI enabled, no author name
        // appears among the recommendations. (With COI disabled by the
        // editor, a same-named *different* scholar may legitimately
        // appear — name collisions are part of the world model.)
        if coi_coauthorship {
            for r in &report.recommendations {
                for a in &manuscript.authors {
                    prop_assert_ne!(&r.name, &a.name);
                }
            }
        }
    }
}
