//! Integration test for the telemetry surface of the REST API.
//!
//! Drives one full `/recommend` through the router, then checks that
//! `GET /metrics` returns well-formed Prometheus text covering every
//! scholarly source and every pipeline phase, and that
//! `GET /traces/recent` shows the request's span tree.

use minaret_http::{Method, Request, Response, Router};
use minaret_json::Value;
use minaret_scholarly::SourceKind;
use minaret_server::AppState;
use std::sync::Arc;

fn get(router: &Router, path: &str) -> Response {
    router.dispatch(&Request {
        method: Method::Get,
        path: path.into(),
        query: vec![],
        headers: vec![],
        body: vec![],
        minor_version: 1,
        deadline: None,
    })
}

fn post(router: &Router, path: &str, body: &str) -> Response {
    router.dispatch(&Request {
        method: Method::Post,
        path: path.into(),
        query: vec![],
        headers: vec![],
        body: body.as_bytes().to_vec(),
        minor_version: 1,
        deadline: None,
    })
}

/// Builds a demo server and runs one successful recommendation.
fn server_after_one_recommend() -> (Arc<AppState>, Router) {
    let state = AppState::demo(150, 42);
    let router = minaret_server::build_router(state.clone());
    let lead = state
        .world
        .scholars()
        .iter()
        .find(|s| !state.world.papers_of(s.id).is_empty())
        .expect("world has a published scholar");
    let keywords: Vec<Value> = lead
        .interests
        .iter()
        .take(2)
        .map(|&t| Value::from(state.world.ontology.label(t)))
        .collect();
    let body = Value::object()
        .set("title", "Telemetry integration manuscript")
        .set("keywords", keywords)
        .set(
            "authors",
            vec![Value::object().set("name", lead.full_name().as_str())],
        )
        .set("target_venue", state.world.venues()[0].name.as_str())
        .to_string();
    let resp = post(&router, "/recommend", &body);
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    (state, router)
}

/// Minimal Prometheus text-format validation: every line is a comment
/// or `name{labels} value` with a parseable numeric value.
fn assert_parses_as_prometheus(text: &str) {
    assert!(!text.trim().is_empty(), "metrics body is empty");
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("no value on line {line:?}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value on line {line:?}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name on line {line:?}"
        );
        if let Some(rest) = series.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "malformed label block on line {line:?}"
                );
            }
        }
    }
}

#[test]
fn metrics_cover_all_sources_and_phases_after_a_recommendation() {
    let (_, router) = server_after_one_recommend();
    let resp = get(&router, "/metrics");
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).unwrap();
    assert_parses_as_prometheus(&text);

    // Every one of the six sources was queried by the fan-out.
    assert_eq!(SourceKind::ALL.len(), 6);
    for kind in SourceKind::ALL {
        let series = format!(
            "minaret_source_requests_total{{source=\"{}\"}}",
            kind.prefix()
        );
        assert!(text.contains(&series), "missing {series}:\n{text}");
        let latency = format!(
            "minaret_source_call_micros_count{{source=\"{}\"}}",
            kind.prefix()
        );
        assert!(text.contains(&latency), "missing {latency}:\n{text}");
    }

    // All three pipeline phases ran exactly once.
    for phase in ["extraction", "filtering", "ranking"] {
        let series = format!("minaret_phase_micros_count{{phase=\"{phase}\"}} 1");
        assert!(text.contains(&series), "missing {series}:\n{text}");
    }
    assert!(
        text.contains("minaret_recommend_total{result=\"ok\"} 1"),
        "{text}"
    );

    // The HTTP layer recorded the POST itself.
    assert!(
        text.contains("minaret_http_requests_total{route=\"/recommend\",status=\"200\"} 1"),
        "{text}"
    );

    // Single-flight coalescing is observable per source from
    // registration time (zero until concurrent identical fan-outs
    // actually share a leader).
    for kind in SourceKind::ALL {
        let series = format!(
            "minaret_fanout_coalesced_total{{source=\"{}\"}}",
            kind.prefix()
        );
        assert!(text.contains(&series), "missing {series}:\n{text}");
    }
}

#[test]
fn traces_recent_shows_the_request_span_tree() {
    let (_, router) = server_after_one_recommend();
    let resp = get(&router, "/traces/recent");
    assert_eq!(resp.status, 200);
    let v = minaret_json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let traces = v.get("traces").and_then(Value::as_array).unwrap();
    assert_eq!(traces.len(), 1);
    let trace = &traces[0];
    assert_eq!(trace.get("name").and_then(Value::as_str), Some("recommend"));
    let total = trace.get("total_micros").and_then(Value::as_u64).unwrap();
    let spans = trace.get("spans").and_then(Value::as_array).unwrap();
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Value::as_str))
        .collect();
    assert_eq!(names, ["extraction", "filtering", "ranking"]);
    let span_sum: u64 = spans
        .iter()
        .filter_map(|s| s.get("duration_micros").and_then(Value::as_u64))
        .sum();
    assert!(
        span_sum <= total,
        "phase spans ({span_sum}us) exceed the whole trace ({total}us)"
    );
}

/// The serving-layer metrics only exist on a real socket server (the
/// router-level tests above never open a connection): the reactor must
/// export its open-connections gauge, wakeup counter, and event-loop
/// dispatch-latency histogram, and the gauge must track connection
/// lifetime exactly.
#[test]
fn reactor_metrics_appear_on_a_live_server() {
    use minaret_http::{Server, ServerConfig};
    use minaret_telemetry::Telemetry;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let telemetry = Telemetry::new();
    let mut router = Router::new();
    let t = telemetry.clone();
    router.get("/metrics", move |_, _| {
        Response::text(200, t.encode_prometheus())
    });
    let server = Server::bind_with(
        "127.0.0.1:0",
        router,
        ServerConfig {
            workers: 1,
            telemetry,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // One keep-alive connection fetching /metrics repeatedly.
    let mut conn = TcpStream::connect(addr).unwrap();
    let fetch = |conn: &mut TcpStream| -> String {
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut buf = [0u8; 4096];
        let mut resp = Vec::new();
        // Read until the full declared body has arrived.
        loop {
            let text = String::from_utf8_lossy(&resp).to_string();
            if let Some(header_end) = text.find("\r\n\r\n") {
                let cl: usize = text
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .expect("Content-Length header")
                    .trim()
                    .parse()
                    .unwrap();
                if resp.len() >= header_end + 4 + cl {
                    return text[header_end + 4..].to_string();
                }
            }
            let n = conn.read(&mut buf).unwrap();
            assert!(n > 0, "connection closed mid-response");
            resp.extend_from_slice(&buf[..n]);
        }
    };

    // The serving connection itself is the one open connection.
    let body = fetch(&mut conn);
    assert_parses_as_prometheus(&body);
    assert!(body.contains("minaret_http_open_connections 1"), "{body}");
    // The reactor woke at least once (it accepted us) and timed its
    // event-loop iterations.
    let wakeups: f64 = body
        .lines()
        .find_map(|l| l.strip_prefix("minaret_http_reactor_wakeups_total "))
        .expect("wakeup counter exported")
        .parse()
        .unwrap();
    assert!(wakeups >= 1.0, "{body}");
    assert!(
        body.contains("minaret_http_reactor_dispatch_micros_count"),
        "{body}"
    );

    // A second connection raises the gauge to 2 (spin on the observable
    // metric — acceptance is asynchronous), and closing it brings the
    // gauge back down.
    let extra = TcpStream::connect(addr).unwrap();
    while !fetch(&mut conn).contains("minaret_http_open_connections 2") {
        std::thread::yield_now();
    }
    drop(extra);
    while !fetch(&mut conn).contains("minaret_http_open_connections 1") {
        std::thread::yield_now();
    }
    drop(conn);
    server.shutdown();
}

#[test]
fn http_error_statuses_are_labeled_separately() {
    let (_, router) = server_after_one_recommend();
    let resp = post(&router, "/recommend", "{not json");
    assert_eq!(resp.status, 400);
    let text = String::from_utf8(get(&router, "/metrics").body).unwrap();
    assert!(
        text.contains("minaret_http_requests_total{route=\"/recommend\",status=\"400\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("minaret_http_requests_total{route=\"/recommend\",status=\"200\"} 1"),
        "{text}"
    );
}
