//! The pipeline under *scripted* source faults — the conditions real
//! on-the-fly scraping actually faces, replayed deterministically.
//!
//! Every test here drives failures through [`FaultSchedule`]s keyed off
//! each source's call counter, and time through a shared
//! [`SimulatedClock`] where deadlines matter. No dice, no wall-clock
//! sleeps: the same inputs produce the same outcomes on every run.

use std::sync::Arc;

use minaret::prelude::*;
use minaret::scholarly::{ScholarSource, SourceError, SourceProfile, SourceStatus};
use minaret_synth::SubmissionGenerator;

fn world(scholars: usize) -> Arc<World> {
    Arc::new(WorldGenerator::new(WorldConfig::sized(scholars)).generate())
}

fn manuscript(world: &World) -> ManuscriptDetails {
    let sub = SubmissionGenerator::new(world, 17).generate().unwrap();
    ManuscriptDetails {
        title: sub.title.clone(),
        keywords: sub.keywords.clone(),
        authors: sub
            .authors
            .iter()
            .map(|&id| AuthorInput::named(world.scholar(id).full_name()))
            .collect(),
        target_venue: world.venue(sub.target_venue).name.clone(),
    }
}

/// All six default sources, with scripted faults applied per kind.
fn registry_with_faults(
    world: &Arc<World>,
    config: RegistryConfig,
    faults: &[(SourceKind, FaultSchedule)],
) -> SourceRegistry {
    let mut registry = SourceRegistry::new(config);
    for spec in SourceSpec::all_defaults() {
        let kind = spec.kind;
        let mut source = SimulatedSource::new(spec, world.clone());
        if let Some((_, fault)) = faults.iter().find(|(k, _)| *k == kind) {
            source = source.with_fault(*fault);
        }
        registry.register(Arc::new(source) as Arc<dyn ScholarSource>);
    }
    registry
}

fn minaret_over(registry: Arc<SourceRegistry>) -> Minaret {
    Minaret::new(
        registry,
        Arc::new(minaret::ontology::seed::curated_cs_ontology()),
        EditorConfig::default(),
    )
}

#[test]
fn source_recovers_after_scripted_failures() {
    let w = world(300);
    let m = manuscript(&w);
    // Google Scholar fails its first two calls, then recovers. Three
    // retries absorb the outage exactly; nothing degrades.
    let registry = Arc::new(registry_with_faults(
        &w,
        RegistryConfig {
            max_retries: 3,
            ..Default::default()
        },
        &[(
            SourceKind::GoogleScholar,
            FaultSchedule::FailThenRecover { failures: 2 },
        )],
    ));
    let report = minaret_over(registry.clone())
        .recommend(&m)
        .expect("recovered source must not fail the run");
    assert!(!report.degraded, "recovery within retries is not degraded");
    assert!(
        report.source_errors.is_empty(),
        "{:?}",
        report.source_errors
    );
    assert!(!report.recommendations.is_empty());
    let stats = registry.stats();
    assert_eq!(stats.retries, 2, "exactly the two scripted failures retry");
    assert_eq!(stats.gave_up, 0);
}

#[test]
fn permanent_outage_trips_breaker_and_recommend_degrades() {
    let w = world(300);
    let m = manuscript(&w);
    let registry = Arc::new(registry_with_faults(
        &w,
        RegistryConfig {
            max_retries: 1,
            resilience: ResilienceConfig {
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    cooldown_micros: 60_000_000,
                    probe_successes: 1,
                },
                ..ResilienceConfig::disabled()
            },
            ..Default::default()
        },
        &[(SourceKind::Publons, FaultSchedule::PermanentOutage)],
    ));
    let report = minaret_over(registry.clone())
        .recommend(&m)
        .expect("five healthy sources still recommend");
    // Degraded-mode contract: ranked list present, flagged, dead source
    // named.
    assert!(!report.recommendations.is_empty());
    assert!(report.degraded);
    assert_eq!(report.degraded_sources, vec!["Publons".to_string()]);
    assert!(!report.source_errors.is_empty());
    // The breaker opened within the threshold and then short-circuited
    // the remaining fan-outs instead of hammering the dead source.
    assert_eq!(
        registry.breaker_state(SourceKind::Publons),
        Some(BreakerState::Open)
    );
    let stats = registry.stats();
    assert!(
        stats.short_circuited >= 1,
        "later fan-outs must be rejected fast: {stats:?}"
    );
}

#[test]
fn slow_source_exceeds_deadline_but_fanout_budget_holds() {
    let w = world(200);
    let clock = SimulatedClock::new();
    // DBLP answers instantly; Google Scholar takes 30ms against a 10ms
    // call deadline. The 100ms fan-out budget cuts its retries off.
    let mut registry = SourceRegistry::new(RegistryConfig {
        max_retries: 10,
        concurrent: false,
        resilience: ResilienceConfig {
            call_deadline_micros: 10_000,
            fanout_budget_micros: 100_000,
            backoff: BackoffConfig {
                base_micros: 1_000,
                max_micros: 8_000,
                jitter: 0.5,
                seed: 7,
            },
            ..ResilienceConfig::disabled()
        },
    })
    .with_clock(clock.clone());
    for kind in [SourceKind::Dblp, SourceKind::GoogleScholar] {
        let mut spec = SourceSpec::for_kind(kind);
        spec.latency_micros = 0;
        let mut source = SimulatedSource::new(spec, w.clone()).with_clock(clock.clone());
        if kind == SourceKind::GoogleScholar {
            source = source.with_fault(FaultSchedule::Slow {
                latency_micros: 30_000,
            });
        }
        registry.register(Arc::new(source) as Arc<dyn ScholarSource>);
    }
    let name = w.scholars()[0].full_name();
    let report = registry.search_by_name_report(&name);
    let outcome_of = |kind: SourceKind| {
        report
            .outcomes
            .iter()
            .find(|o| o.source == kind)
            .unwrap()
            .clone()
    };
    // The fast source is untouched by its sibling's slowness.
    assert_eq!(outcome_of(SourceKind::Dblp).status, SourceStatus::Ok);
    // The slow source times out per call, and the budget stops the retry
    // ladder long before max_retries would.
    let slow = outcome_of(SourceKind::GoogleScholar);
    match slow.status {
        SourceStatus::Failed(SourceError::DeadlineExceeded { .. })
        | SourceStatus::Failed(SourceError::BudgetExhausted { .. }) => {}
        other => panic!("expected a deadline/budget failure, got {other:?}"),
    }
    assert!(
        slow.attempts <= 4,
        "budget must cut retries short, used {} attempts",
        slow.attempts
    );
    let stats = registry.stats();
    assert!(stats.timed_out >= 1, "{stats:?}");
    // Whole fan-out bounded by budget + one in-flight call, not by
    // max_retries x latency (which would be 330ms here).
    assert!(
        clock.now_micros() <= 140_000,
        "fan-out ran {}us, budget did not hold",
        clock.now_micros()
    );
}

#[test]
fn rate_limit_bursts_are_absorbed_by_retries() {
    let w = world(200);
    let mut registry = SourceRegistry::new(RegistryConfig {
        max_retries: 2,
        concurrent: false,
        ..Default::default()
    });
    let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
    spec.latency_micros = 0;
    registry.register(Arc::new(SimulatedSource::new(spec, w.clone()).with_fault(
        FaultSchedule::RateLimitBursts {
            allowed: 2,
            limited: 1,
        },
    )) as Arc<dyn ScholarSource>);
    // Every third call is rate-limited; one retry always lands in the
    // next allowed window, so every query succeeds.
    for i in 0..10 {
        let (_, errors) = registry.search_by_name(&w.scholars()[i].full_name());
        assert!(errors.is_empty(), "query {i}: {errors:?}");
    }
    let stats = registry.stats();
    assert!(stats.retries >= 3, "scripted bursts must trigger retries");
    assert_eq!(stats.gave_up, 0);
}

/// A source whose worker thread panics mid-query.
#[derive(Debug)]
struct PanickingSource;

impl ScholarSource for PanickingSource {
    fn kind(&self) -> SourceKind {
        SourceKind::ResearcherId
    }
    fn supports_interest_search(&self) -> bool {
        false
    }
    fn search_by_name(&self, _name: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        panic!("injected panic in source thread");
    }
    fn search_by_interest(&self, _keyword: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        Err(SourceError::Unsupported {
            source: SourceKind::ResearcherId,
            operation: "interest search",
        })
    }
    fn fetch_profile(&self, key: &str) -> Result<Arc<SourceProfile>, SourceError> {
        Err(SourceError::NotFound {
            source: SourceKind::ResearcherId,
            key: key.to_string(),
        })
    }
}

#[test]
fn panicking_source_becomes_a_per_source_error() {
    let w = world(200);
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    registry.register(Arc::new(SimulatedSource::new(
        SourceSpec::for_kind(SourceKind::Dblp),
        w.clone(),
    )) as Arc<dyn ScholarSource>);
    registry.register(Arc::new(PanickingSource) as Arc<dyn ScholarSource>);
    let name = w.scholars()[0].full_name();
    // The panic is contained: the healthy sibling's results still merge.
    let report = registry.search_by_name_report(&name);
    let dblp = report
        .outcomes
        .iter()
        .find(|o| o.source == SourceKind::Dblp)
        .unwrap();
    assert_eq!(dblp.status, SourceStatus::Ok);
    let dead = report
        .outcomes
        .iter()
        .find(|o| o.source == SourceKind::ResearcherId)
        .unwrap();
    match &dead.status {
        SourceStatus::Failed(SourceError::Internal { detail, .. }) => {
            assert!(detail.contains("injected panic"), "{detail}");
        }
        other => panic!("expected an internal error, got {other:?}"),
    }
}

#[test]
fn sequential_and_concurrent_fanout_agree_under_scripted_faults() {
    let w = world(200);
    let m = manuscript(&w);
    let make = |concurrent: bool| {
        let registry = registry_with_faults(
            &w,
            RegistryConfig {
                max_retries: 3,
                concurrent,
                ..Default::default()
            },
            &[(
                SourceKind::GoogleScholar,
                FaultSchedule::FailThenRecover { failures: 1 },
            )],
        );
        minaret_over(Arc::new(registry))
    };
    let a = make(true).recommend(&m).unwrap();
    let b = make(false).recommend(&m).unwrap();
    assert_eq!(a.candidates_retrieved, b.candidates_retrieved);
    assert_eq!(a.degraded, b.degraded);
}
