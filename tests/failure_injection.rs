//! The pipeline under injected source failures and rate limits — the
//! conditions real on-the-fly scraping actually faces.

use std::sync::Arc;

use minaret::prelude::*;
use minaret::scholarly::ScholarSource;
use minaret_synth::SubmissionGenerator;

fn world(scholars: usize) -> Arc<World> {
    Arc::new(WorldGenerator::new(WorldConfig::sized(scholars)).generate())
}

fn manuscript(world: &World) -> ManuscriptDetails {
    let sub = SubmissionGenerator::new(world, 17).generate().unwrap();
    ManuscriptDetails {
        title: sub.title.clone(),
        keywords: sub.keywords.clone(),
        authors: sub
            .authors
            .iter()
            .map(|&id| AuthorInput::named(world.scholar(id).full_name()))
            .collect(),
        target_venue: world.venue(sub.target_venue).name.clone(),
    }
}

fn minaret_with(
    world: &Arc<World>,
    failure_rate: f64,
    rate_limit: u32,
    max_retries: u32,
) -> Minaret {
    let mut registry = SourceRegistry::new(RegistryConfig {
        max_retries,
        concurrent: true,
    });
    for mut spec in SourceSpec::all_defaults() {
        spec.failure_rate = failure_rate;
        spec.rate_limit = rate_limit;
        registry.register(Arc::new(SimulatedSource::new(spec, world.clone()))
            as Arc<dyn ScholarSource>);
    }
    Minaret::new(
        Arc::new(registry),
        Arc::new(minaret::ontology::seed::curated_cs_ontology()),
        EditorConfig::default(),
    )
}

#[test]
fn moderate_failures_are_fully_absorbed_by_retries() {
    let w = world(300);
    let m = manuscript(&w);
    let clean = minaret_with(&w, 0.0, 0, 3).recommend(&m).unwrap();
    let flaky = minaret_with(&w, 0.3, 0, 6).recommend(&m).unwrap();
    // With generous retries the flaky run retrieves the same candidates.
    assert_eq!(clean.candidates_retrieved, flaky.candidates_retrieved);
    let names = |r: &minaret::core::RecommendationReport| {
        r.recommendations
            .iter()
            .map(|x| x.name.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(names(&clean), names(&flaky));
}

#[test]
fn heavy_failures_degrade_but_do_not_crash() {
    let w = world(300);
    let m = manuscript(&w);
    let battered = minaret_with(&w, 0.9, 0, 1);
    // Either we get recommendations (from whatever calls survived) or a
    // clean NoCandidates error — never a panic.
    match battered.recommend(&m) {
        Ok(report) => {
            assert!(
                !report.source_errors.is_empty(),
                "90% failure rate must surface source errors"
            );
        }
        Err(e) => {
            assert!(matches!(e, minaret::core::MinaretError::NoCandidates));
        }
    }
}

#[test]
fn rate_limited_sources_are_retried_through() {
    let w = world(200);
    let m = manuscript(&w);
    let limited = minaret_with(&w, 0.0, 3, 5);
    let report = limited.recommend(&m).unwrap();
    assert!(!report.recommendations.is_empty());
}

#[test]
fn sequential_and_concurrent_fanout_agree_under_failures() {
    let w = world(200);
    let make = |concurrent: bool| {
        let mut registry = SourceRegistry::new(RegistryConfig {
            max_retries: 8,
            concurrent,
        });
        for mut spec in SourceSpec::all_defaults() {
            spec.failure_rate = 0.2;
            registry.register(Arc::new(SimulatedSource::new(spec, w.clone()))
                as Arc<dyn ScholarSource>);
        }
        Minaret::new(
            Arc::new(registry),
            Arc::new(minaret::ontology::seed::curated_cs_ontology()),
            EditorConfig::default(),
        )
    };
    let m = manuscript(&w);
    let a = make(true).recommend(&m).unwrap();
    let b = make(false).recommend(&m).unwrap();
    assert_eq!(a.candidates_retrieved, b.candidates_retrieved);
}
