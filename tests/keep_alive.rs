//! HTTP/1.1 keep-alive semantics over real TCP: connection reuse,
//! pipelining, the max-requests cap, explicit `Connection: close`, and
//! HTTP/1.0 defaults. All framing is explicit (responses are read to
//! their `Content-Length`), so nothing here depends on timing.

use std::io::{Read, Write};
use std::net::TcpStream;

use minaret::http::{KeepAliveConfig, Response, Router, Server, ServerConfig};
use minaret_telemetry::Telemetry;

fn echo_router() -> Router {
    let mut r = Router::new();
    r.post("/echo", |req, _| {
        Response::text(200, String::from_utf8_lossy(&req.body).into_owned())
    });
    r
}

fn server_with(keep_alive: KeepAliveConfig, telemetry: Telemetry) -> Server {
    Server::bind_with(
        "127.0.0.1:0",
        echo_router(),
        ServerConfig {
            workers: 1,
            request_timeout: None,
            keep_alive,
            telemetry,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn post_echo(body: &str, extra_header: &str) -> String {
    format!(
        "POST /echo HTTP/1.1\r\nHost: t\r\n{}Content-Length: {}\r\n\r\n{}",
        extra_header,
        body.len(),
        body
    )
}

/// Reads exactly one response off the stream: headers to the blank
/// line, then `Content-Length` body bytes. Panics on EOF mid-response.
fn read_response(s: &mut TcpStream) -> (u16, Vec<(String, String)>, String) {
    let mut raw = Vec::new();
    let mut buf = [0u8; 1];
    // Headers, byte at a time (simple and race-free for tests).
    while !raw.ends_with(b"\r\n\r\n") {
        let n = s.read(&mut buf).unwrap();
        assert!(
            n == 1,
            "EOF inside response head: {:?}",
            String::from_utf8_lossy(&raw)
        );
        raw.push(buf[0]);
    }
    let head = String::from_utf8(raw).unwrap();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    let len: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .expect("response has Content-Length")
        .1
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    s.read_exact(&mut body).unwrap();
    (status, headers, String::from_utf8(body).unwrap())
}

fn connection_header(headers: &[(String, String)]) -> &str {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("connection"))
        .map(|(_, v)| v.as_str())
        .unwrap_or("")
}

fn assert_eof(s: &mut TcpStream) {
    let mut buf = [0u8; 1];
    assert_eq!(s.read(&mut buf).unwrap_or(0), 0, "expected server to close");
}

#[test]
fn many_sequential_requests_reuse_one_connection() {
    let server = server_with(KeepAliveConfig::default(), Telemetry::disabled());
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    for i in 0..10 {
        let body = format!("request number {i}");
        s.write_all(post_echo(&body, "").as_bytes()).unwrap();
        let (status, headers, echoed) = read_response(&mut s);
        assert_eq!(status, 200);
        assert_eq!(echoed, body);
        assert_eq!(connection_header(&headers), "keep-alive");
    }
    drop(s);
    server.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = server_with(KeepAliveConfig::default(), Telemetry::disabled());
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    // Both requests in a single write; the server must answer both, in
    // order, without waiting for anything in between.
    let batch = format!("{}{}", post_echo("first", ""), post_echo("second", ""));
    s.write_all(batch.as_bytes()).unwrap();
    let (status1, _, body1) = read_response(&mut s);
    let (status2, _, body2) = read_response(&mut s);
    assert_eq!((status1, body1.as_str()), (200, "first"));
    assert_eq!((status2, body2.as_str()), (200, "second"));
    drop(s);
    server.shutdown();
}

#[test]
fn max_requests_cap_forces_close_and_records_histogram() {
    let telemetry = Telemetry::new();
    let server = server_with(
        KeepAliveConfig {
            max_requests: 3,
            idle_timeout: None,
        },
        telemetry.clone(),
    );
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    for i in 1..=3 {
        s.write_all(post_echo("x", "").as_bytes()).unwrap();
        let (status, headers, _) = read_response(&mut s);
        assert_eq!(status, 200);
        let expected = if i == 3 { "close" } else { "keep-alive" };
        assert_eq!(connection_header(&headers), expected, "request {i}");
    }
    assert_eof(&mut s);
    drop(s);
    // shutdown() joins the worker, so the per-connection histogram has
    // definitely been recorded by the time we read it.
    server.shutdown();
    let snap = telemetry
        .histogram("minaret_http_requests_per_connection", &[])
        .snapshot();
    assert_eq!(snap.count, 1);
    assert_eq!(snap.sum, 3);
}

#[test]
fn client_connection_close_is_honored() {
    let server = server_with(KeepAliveConfig::default(), Telemetry::disabled());
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.write_all(post_echo("bye", "Connection: close\r\n").as_bytes())
        .unwrap();
    let (status, headers, body) = read_response(&mut s);
    assert_eq!(status, 200);
    assert_eq!(body, "bye");
    assert_eq!(connection_header(&headers), "close");
    assert_eof(&mut s);
    server.shutdown();
}

#[test]
fn http_1_0_closes_by_default() {
    let server = server_with(KeepAliveConfig::default(), Telemetry::disabled());
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    let body = "old protocol";
    let req = format!(
        "POST /echo HTTP/1.0\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    s.write_all(req.as_bytes()).unwrap();
    let (status, headers, echoed) = read_response(&mut s);
    assert_eq!(status, 200);
    assert_eq!(echoed, body);
    assert_eq!(connection_header(&headers), "close");
    assert_eof(&mut s);
    server.shutdown();
}

#[test]
fn legacy_bind_still_closes_per_request() {
    // The pre-keep-alive constructor must keep its contract: existing
    // clients frame responses by reading to EOF.
    let server = Server::bind("127.0.0.1:0", echo_router(), 1).unwrap();
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.write_all(post_echo("legacy", "").as_bytes()).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
    assert!(out.ends_with("legacy"), "{out}");
    assert!(out.contains("Connection: close"), "{out}");
    server.shutdown();
}
