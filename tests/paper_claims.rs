//! Every concrete claim and worked example in the paper, verified
//! against this implementation.

use std::sync::Arc;

use minaret::ontology::seed::curated_cs_ontology;
use minaret::ontology::KeywordExpander;
use minaret::prelude::*;
use minaret::synth::growth::{GrowthModel, RecordKind};

/// §2.1: "if one of the manuscript's keywords is 'RDF', the expansion
/// module would return 'Semantic Web', 'Linked Open Data', and 'SPARQL'
/// as semantically related keywords among its results", each with a
/// similarity score sc ∈ [0, 1].
#[test]
fn s2_1_rdf_expansion_example() {
    let ontology = curated_cs_ontology();
    let expander = KeywordExpander::with_defaults(&ontology);
    let expansion = expander.expand("RDF").unwrap();
    let labels: Vec<&str> = expansion.iter().map(|e| e.label.as_str()).collect();
    for expected in ["Semantic Web", "Linked Open Data", "SPARQL"] {
        assert!(labels.contains(&expected), "missing {expected}");
    }
    for e in &expansion {
        assert!((0.0..=1.0).contains(&e.score), "score out of [0,1]: {e:?}");
    }
}

/// §2.3: reviewer with interests {Semantic Web, Big Data} outranks one
/// with {Semantic Web, Ontologies, RDF} for a paper with keywords
/// {Semantic Web, Big Data} — "because the second reviewer covers more
/// topics/keywords of the paper".
#[test]
fn s2_3_topic_coverage_example() {
    let result = minaret::eval::experiments::run_e2();
    assert!(result.example_holds);
    assert!(result.coverage_b > result.coverage_a);
}

/// §1: "the global scientific output doubles every nine years" and the
/// DBLP figures ("over 3.8M publications", "about 120K [journal]
/// articles" in 2018) — the calibrated growth model reproduces them.
#[test]
fn s1_dblp_growth_calibration() {
    let model = GrowthModel::default();
    assert!((model.records_in_year(2018) / model.records_in_year(2009) - 2.0).abs() < 1e-9);
    let journal_2018 = model.records_of_kind(2018, RecordKind::JournalArticle);
    assert!((journal_2018 - 120_000.0).abs() < 1.0);
    assert!(model.cumulative_through(2018) > 3_800_000.0 * 0.8);
}

/// §2.2: "COI is determined … based on the existence of a previous
/// co-authorship … or the existence of any shared affiliations on the
/// level of the university or country, as configured by the editor."
#[test]
fn s2_2_coi_configurability() {
    use minaret::core::coi::{check_coi, AuthorRecord};
    use minaret::scholarly::{MergedCandidate, SourceMetrics};
    let candidate = MergedCandidate {
        display_name: "Reviewer X".into(),
        affiliation: Some("University of Tartu".into()),
        country: Some("Estonia".into()),
        affiliation_history: vec![],
        interests: vec![],
        publications: vec![],
        metrics: SourceMetrics::default(),
        reviews: vec![],
        sources: vec![],
        keys: vec![],
        truths: vec![],
    };
    let author = AuthorRecord::from_parts(
        "Author Y",
        Some("Tallinn University of Technology"),
        Some("Estonia"),
        None,
    );
    // University level: different universities, same country -> clean.
    let uni = CoiConfig {
        affiliation_level: AffiliationMatchLevel::University,
        ..Default::default()
    };
    assert!(!check_coi(&candidate, std::slice::from_ref(&author), &uni).conflicted());
    // Country level: conflicted.
    let country = CoiConfig {
        affiliation_level: AffiliationMatchLevel::Country,
        ..Default::default()
    };
    assert!(check_coi(&candidate, std::slice::from_ref(&author), &country).conflicted());
}

/// §2.3 / abstract: "MINARET allows the user to configure the weights of
/// the different components" — changing the weights actually changes the
/// ranking.
#[test]
fn s2_3_weights_are_configurable_and_effective() {
    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(400)).generate());
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for spec in SourceSpec::all_defaults() {
        registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
    }
    let registry = Arc::new(registry);
    let ontology = Arc::new(curated_cs_ontology());
    let lead = world
        .scholars()
        .iter()
        .find(|s| s.interests.len() >= 2 && !world.papers_of(s.id).is_empty())
        .unwrap();
    let m = ManuscriptDetails {
        title: "T".into(),
        keywords: lead
            .interests
            .iter()
            .take(3)
            .map(|&t| world.ontology.label(t).to_string())
            .collect(),
        authors: vec![AuthorInput::named(lead.full_name())],
        target_venue: world.venues()[0].name.clone(),
    };
    let run = |weights: RankingWeights| {
        Minaret::new(
            registry.clone(),
            ontology.clone(),
            EditorConfig {
                weights,
                max_recommendations: 50,
                ..Default::default()
            },
        )
        .recommend(&m)
        .unwrap()
        .recommendations
        .iter()
        .map(|r| r.name.clone())
        .collect::<Vec<_>>()
    };
    let coverage_only = run(RankingWeights {
        coverage: 1.0,
        impact: 0.0,
        recency: 0.0,
        experience: 0.0,
        familiarity: 0.0,
        responsiveness: 0.0,
    });
    let impact_only = run(RankingWeights {
        coverage: 0.0,
        impact: 1.0,
        recency: 0.0,
        experience: 0.0,
        familiarity: 0.0,
        responsiveness: 0.0,
    });
    assert_ne!(
        coverage_only, impact_only,
        "weight configuration had no effect on the ranking"
    );
}

/// §3: conference-mode integration — "only candidate reviewers who
/// belong to the programme committee are retained".
#[test]
fn s3_conference_mode_pc_restriction() {
    let result = minaret::eval::experiments::run_e8(300);
    assert!(result.pc_respected);
    assert!(result.rejected_not_on_pc > 0);
    assert!(result.conference_recommendations <= result.journal_recommendations);
}

/// §2.1: MINARET "is currently implemented to extract the information
/// from six main sources" — and stays extensible (the trait object
/// registry accepts any further source).
#[test]
fn s2_1_six_sources_and_extensibility() {
    use minaret::scholarly::{ScholarSource, SourceError, SourceProfile};
    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(100)).generate());
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for spec in SourceSpec::all_defaults() {
        registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
    }
    assert_eq!(registry.len(), 6);

    /// A seventh, user-supplied source: always empty, but demonstrates
    /// the extension seam.
    #[derive(Debug)]
    struct EmptySource;
    impl ScholarSource for EmptySource {
        fn kind(&self) -> SourceKind {
            SourceKind::ResearcherId
        }
        fn supports_interest_search(&self) -> bool {
            true
        }
        fn search_by_name(
            &self,
            _: &str,
        ) -> Result<Vec<std::sync::Arc<SourceProfile>>, SourceError> {
            Ok(vec![])
        }
        fn search_by_interest(
            &self,
            _: &str,
        ) -> Result<Vec<std::sync::Arc<SourceProfile>>, SourceError> {
            Ok(vec![])
        }
        fn fetch_profile(&self, key: &str) -> Result<std::sync::Arc<SourceProfile>, SourceError> {
            Err(SourceError::NotFound {
                source: self.kind(),
                key: key.to_string(),
            })
        }
    }
    registry.register(Arc::new(EmptySource));
    assert_eq!(registry.len(), 7);
    let (_, errors) = registry.search_by_interest("databases");
    assert!(errors.is_empty());
}
