//! Regression harness for reactor fault isolation: a misbehaving peer
//! must cost the server exactly one connection, never the event loop.
//!
//! The scenario that motivates this file: a client requests a response
//! far larger than the socket buffers, so the reactor parks the
//! connection in its write state with megabytes still unflushed — then
//! the client vanishes without reading. The kernel answers the next
//! write with a reset. In a threaded server that kills one worker's
//! loop iteration; in an event loop, an unhandled error here would take
//! down every connection on the thread. The harness asserts the
//! opposite: the victim connection is torn down, counted in telemetry,
//! and fresh connections keep being served.
//!
//! No sleeps as synchronization: the test spins on observable state
//! (the teardown counter, fresh-connection responses).

use std::io::{Read, Write};
use std::net::TcpStream;

use minaret_http::{Response, Router, Server, ServerConfig};
use minaret_telemetry::Telemetry;

/// Big enough that kernel send + receive buffers cannot absorb it, so
/// the reactor is mid-write when the peer disappears.
const BIG_BODY: usize = 16 * 1024 * 1024;

fn fetch(conn: &mut TcpStream, path: &str) -> String {
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    let mut buf = [0u8; 4096];
    let mut resp = Vec::new();
    loop {
        let text = String::from_utf8_lossy(&resp).to_string();
        if let Some(header_end) = text.find("\r\n\r\n") {
            let cl: usize = text
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("Content-Length header")
                .trim()
                .parse()
                .unwrap();
            if resp.len() >= header_end + 4 + cl {
                return text[header_end + 4..].to_string();
            }
        }
        let n = conn.read(&mut buf).unwrap();
        assert!(n > 0, "connection closed mid-response");
        resp.extend_from_slice(&buf[..n]);
    }
}

#[test]
fn peer_reset_mid_write_does_not_kill_the_event_loop() {
    let telemetry = Telemetry::new();
    let mut router = Router::new();
    router.get("/big", |_, _| Response::text(200, "x".repeat(BIG_BODY)));
    router.get("/ping", |_, _| Response::text(200, "pong"));
    let t = telemetry.clone();
    router.get("/metrics", move |_, _| {
        Response::text(200, t.encode_prometheus())
    });
    let server = Server::bind_with(
        "127.0.0.1:0",
        router,
        ServerConfig {
            workers: 2,
            telemetry,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Repeatedly wound the server: request the big response, read only
    // its first bytes, and vanish. Closing with unread data in the
    // receive buffer makes the kernel send RST, so the reactor's next
    // write (or readiness event) on that connection errors.
    for _ in 0..3 {
        let mut victim = TcpStream::connect(addr).unwrap();
        victim
            .write_all(b"GET /big HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut first = [0u8; 1024];
        let n = victim.read(&mut first).unwrap();
        assert!(n > 0, "no response started");
        assert!(
            String::from_utf8_lossy(&first[..n]).starts_with("HTTP/1.1 200 OK"),
            "big response did not start"
        );
        drop(victim);
    }

    // The event loop is alive: fresh connections are served, and the
    // victims show up as counted teardowns. Spin on the metric — the
    // reset is detected asynchronously.
    let mut probe = TcpStream::connect(addr).unwrap();
    assert_eq!(fetch(&mut probe, "/ping"), "pong");
    loop {
        let metrics = fetch(&mut probe, "/metrics");
        let teardowns: u64 = metrics
            .lines()
            .filter(|l| l.starts_with("minaret_http_conn_teardowns_total"))
            .filter_map(|l| l.rsplit_once(' ')?.1.parse::<u64>().ok())
            .sum();
        if teardowns >= 3 {
            break;
        }
        std::thread::yield_now();
    }
    // And it still serves normal traffic after all that.
    assert_eq!(fetch(&mut probe, "/ping"), "pong");
    drop(probe);
    server.shutdown();
}

/// A peer that resets *between* requests (idle keep-alive) is cleaned
/// up without touching any other connection.
#[test]
fn idle_peer_reset_is_cleaned_up_quietly() {
    let telemetry = Telemetry::new();
    let mut router = Router::new();
    router.get("/ping", |_, _| Response::text(200, "pong"));
    let t = telemetry.clone();
    router.get("/metrics", move |_, _| {
        Response::text(200, t.encode_prometheus())
    });
    let server = Server::bind_with(
        "127.0.0.1:0",
        router,
        ServerConfig {
            workers: 1,
            telemetry,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut probe = TcpStream::connect(addr).unwrap();
    assert_eq!(fetch(&mut probe, "/ping"), "pong");

    // An idle keep-alive peer that sends half a request and vanishes.
    let mut rude = TcpStream::connect(addr).unwrap();
    rude.write_all(b"GET /ping HT").unwrap();
    drop(rude);

    // The long-lived connection keeps working; the rude one eventually
    // disappears from the open-connections gauge.
    loop {
        let metrics = fetch(&mut probe, "/metrics");
        if metrics.contains("minaret_http_open_connections 1") {
            break;
        }
        std::thread::yield_now();
    }
    assert_eq!(fetch(&mut probe, "/ping"), "pong");
    drop(probe);
    server.shutdown();
}
