//! The `/recommend` result cache, proven at the route layer: a counting
//! source shows the hit path performs **zero** fan-outs, the bodies are
//! byte-identical, expiry runs on an injected simulated clock (no
//! sleeps), and degraded answers are never pinned.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use minaret::http::{Method, Request, Router};
use minaret::json::Value;
use minaret::prelude::*;
use minaret::scholarly::{LabeledHits, SourceError, SourceProfile};
use minaret_server::{build_router, AppState, ResultCache};
use minaret_telemetry::Telemetry;

/// Counts every call that reaches the wrapped source.
struct CountingSource {
    inner: SimulatedSource,
    calls: Arc<AtomicU64>,
}

impl ScholarSource for CountingSource {
    fn kind(&self) -> SourceKind {
        self.inner.kind()
    }
    fn supports_interest_search(&self) -> bool {
        self.inner.supports_interest_search()
    }
    fn search_by_name(&self, name: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.search_by_name(name)
    }
    fn search_by_interest(&self, keyword: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.search_by_interest(keyword)
    }
    fn search_by_interests(&self, labels: &[Arc<str>]) -> Result<LabeledHits, SourceError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.search_by_interests(labels)
    }
    fn fetch_profile(&self, key: &str) -> Result<Arc<SourceProfile>, SourceError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.fetch_profile(key)
    }
}

struct Harness {
    state: Arc<AppState>,
    router: Router,
    calls: Arc<AtomicU64>,
    clock: Arc<SimulatedClock>,
    telemetry: Telemetry,
}

const TTL_MICROS: u64 = 5_000_000;

/// Demo-like state over counting sources, with a result cache driven by
/// a simulated clock. `fault` optionally breaks one extra source so the
/// pipeline reports `degraded: true`.
fn harness(degraded: bool) -> Harness {
    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(120)).generate());
    let telemetry = Telemetry::new();
    let clock = SimulatedClock::new();
    let calls = Arc::new(AtomicU64::new(0));
    let mut registry = SourceRegistry::new(RegistryConfig {
        max_retries: 0,
        concurrent: false,
        resilience: ResilienceConfig::default(),
    });
    let mut specs = SourceSpec::all_defaults().into_iter();
    let first = specs.next().unwrap();
    registry.register(Arc::new(CountingSource {
        inner: SimulatedSource::new(first, world.clone()),
        calls: calls.clone(),
    }) as Arc<dyn ScholarSource>);
    if degraded {
        // Publons supports interest search, so its outage shows up in
        // the fan-out ledger and flips the report to degraded.
        let publons = specs.find(|s| s.kind == SourceKind::Publons).unwrap();
        registry.register(Arc::new(
            SimulatedSource::new(publons, world.clone()).with_fault(FaultSchedule::PermanentOutage),
        ) as Arc<dyn ScholarSource>);
    }
    let cache = Arc::new(
        ResultCache::new(TTL_MICROS, 64)
            .with_clock(clock.clone())
            .with_telemetry(telemetry.clone()),
    );
    let state = AppState::with_registry_and_cache(
        world,
        Arc::new(registry),
        telemetry.clone(),
        Some(cache),
    );
    let router = build_router(state.clone());
    Harness {
        state,
        router,
        calls,
        clock,
        telemetry,
    }
}

fn post(router: &Router, path: &str, body: &str) -> minaret::http::Response {
    router.dispatch(&Request {
        method: Method::Post,
        path: path.into(),
        query: vec![],
        headers: vec![],
        body: body.as_bytes().to_vec(),
        minor_version: 1,
        deadline: None,
    })
}

fn manuscript_body(state: &AppState, title: &str) -> String {
    let lead = state
        .world
        .scholars()
        .iter()
        .find(|s| !state.world.papers_of(s.id).is_empty())
        .expect("a published scholar exists");
    let keywords: Vec<Value> = lead
        .interests
        .iter()
        .take(2)
        .map(|&t| Value::from(state.world.ontology.label(t)))
        .collect();
    Value::object()
        .set("title", title)
        .set("keywords", keywords)
        .set(
            "authors",
            vec![Value::object().set("name", lead.full_name().as_str())],
        )
        .set("target_venue", state.world.venues()[0].name.as_str())
        .to_string()
}

#[test]
fn identical_requests_are_served_from_cache_with_zero_fan_outs() {
    let h = harness(false);
    let body = manuscript_body(&h.state, "Cached manuscript");

    let first = post(&h.router, "/recommend", &body);
    assert_eq!(
        first.status,
        200,
        "{}",
        String::from_utf8_lossy(&first.body)
    );
    let uncached_calls = h.calls.load(Ordering::SeqCst);
    assert!(uncached_calls > 0, "the miss path reached the sources");

    let second = post(&h.router, "/recommend", &body);
    assert_eq!(second.status, 200);
    assert_eq!(
        first.body, second.body,
        "cache hit must be byte-identical to the miss that filled it"
    );
    assert_eq!(
        h.calls.load(Ordering::SeqCst),
        uncached_calls,
        "the hit path performed zero source calls"
    );
    assert_eq!(
        h.telemetry
            .counter("minaret_result_cache_hits_total", &[])
            .get(),
        1
    );

    // A different manuscript is a different fingerprint: miss.
    let other = manuscript_body(&h.state, "A different manuscript");
    let third = post(&h.router, "/recommend", &other);
    assert_eq!(third.status, 200);
    assert!(h.calls.load(Ordering::SeqCst) > uncached_calls);

    // A different editor config over the *same* manuscript is also a
    // different fingerprint.
    let calls_before = h.calls.load(Ordering::SeqCst);
    let reconfigured =
        body.trim_end_matches('}').to_string() + r#","config":{"max_recommendations":3}}"#;
    let fourth = post(&h.router, "/recommend", &reconfigured);
    assert_eq!(fourth.status, 200);
    assert!(h.calls.load(Ordering::SeqCst) > calls_before);
}

#[test]
fn entries_expire_on_the_simulated_clock() {
    let h = harness(false);
    let body = manuscript_body(&h.state, "Expiring manuscript");
    let first = post(&h.router, "/recommend", &body);
    assert_eq!(first.status, 200);
    let calls_after_fill = h.calls.load(Ordering::SeqCst);

    // Still inside the TTL: a hit.
    h.clock.advance(TTL_MICROS - 1);
    post(&h.router, "/recommend", &body);
    assert_eq!(h.calls.load(Ordering::SeqCst), calls_after_fill);

    // One more microsecond: expired, evicted on read, re-fanned-out.
    h.clock.advance(1);
    let refreshed = post(&h.router, "/recommend", &body);
    assert_eq!(refreshed.status, 200);
    assert!(h.calls.load(Ordering::SeqCst) > calls_after_fill);
    assert_eq!(
        h.telemetry
            .counter("minaret_result_cache_evictions_total", &[("cause", "ttl")])
            .get(),
        1
    );
}

#[test]
fn invalidation_hook_forces_recomputation() {
    let h = harness(false);
    let body = manuscript_body(&h.state, "Invalidated manuscript");
    assert_eq!(post(&h.router, "/recommend", &body).status, 200);
    let calls_after_fill = h.calls.load(Ordering::SeqCst);

    let resp = post(&h.router, "/cache/invalidate", "");
    assert_eq!(resp.status, 200);
    let v = minaret::json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(v.get("invalidated").and_then(Value::as_u64), Some(1));
    assert!(h.state.result_cache.as_ref().unwrap().is_empty());

    assert_eq!(post(&h.router, "/recommend", &body).status, 200);
    assert!(
        h.calls.load(Ordering::SeqCst) > calls_after_fill,
        "post-invalidation request recomputed"
    );
}

/// `n` keys that all land on one shard of `cache`, plus one key that
/// does not. Shard placement is a pure function of the key, so the
/// probe is deterministic.
fn shard_targeted_keys(cache: &ResultCache, n: usize) -> (Vec<u64>, u64) {
    let target = cache.shard_of(0);
    let same: Vec<u64> = (0u64..)
        .filter(|k| cache.shard_of(*k) == target)
        .take(n)
        .collect();
    let other = (0u64..)
        .find(|k| cache.shard_of(*k) != target)
        .expect("more than one shard");
    (same, other)
}

#[test]
fn ttl_expiry_is_per_entry_and_stays_on_its_shard() {
    let clock = SimulatedClock::new();
    let cache = ResultCache::new(1_000, 64)
        .with_shards(4)
        .with_clock(clock.clone());
    let (same, other) = shard_targeted_keys(&cache, 2);
    // Two entries on one shard inserted 600us apart, plus a late entry
    // on another shard.
    cache.insert(same[0], b"early".to_vec());
    clock.advance(600);
    cache.insert(same[1], b"late".to_vec());
    cache.insert(other, b"elsewhere".to_vec());
    // At t=1000 the early entry is expired; its shard-mate (inserted
    // later) and the other shard's entry are still live.
    clock.advance(400);
    assert!(cache.get(same[0]).is_none(), "expired exactly at the TTL");
    assert!(cache.get(same[1]).is_some(), "same shard, later insert");
    assert!(cache.get(other).is_some(), "other shard untouched");
    assert_eq!(cache.len(), 2, "expired entry evicted on read");
}

#[test]
fn fifo_overflow_evicts_within_the_shard_not_across() {
    // Capacity 8 over 4 shards = 2 per shard: the third same-shard
    // insert evicts that shard's oldest while both other-shard entries
    // and newer shard-mates survive.
    let cache = ResultCache::new(1_000_000, 8).with_shards(4);
    let (same, other) = shard_targeted_keys(&cache, 3);
    cache.insert(other, b"elsewhere".to_vec());
    for k in &same {
        cache.insert(*k, b"x".to_vec());
    }
    assert!(cache.get(same[0]).is_none(), "shard-oldest evicted");
    assert!(cache.get(same[1]).is_some());
    assert!(cache.get(same[2]).is_some());
    assert!(cache.get(other).is_some(), "other shard keeps its entry");
}

#[test]
fn a_ttl_dead_shard_does_not_shed_fresh_insertions() {
    // Regression: expired entries used to occupy FIFO capacity until
    // someone happened to *read* them. A shard filled with TTL-dead
    // entries (written once, never re-read) stayed "full", so a burst
    // of fresh insertions FIFO-evicted its own newest members instead
    // of the corpses. Inserts now sweep expired entries first.
    let clock = SimulatedClock::new();
    let cache = ResultCache::new(1_000, 8)
        .with_shards(4) // 2 entries per shard
        .with_clock(clock.clone());
    let (same, other) = shard_targeted_keys(&cache, 4);
    // Fill one shard to capacity.
    cache.insert(same[0], b"dead-a".to_vec());
    cache.insert(same[1], b"dead-b".to_vec());
    // Both entries expire; nothing reads the shard in between.
    clock.advance(1_000);
    // Two fresh entries on the dead shard: both must fit — the sweep
    // reclaims the expired slots, so neither fresh entry is evicted.
    // A control entry lands on another shard.
    cache.insert(same[2], b"fresh-a".to_vec());
    cache.insert(same[3], b"fresh-b".to_vec());
    cache.insert(other, b"elsewhere".to_vec());
    assert!(
        cache.get(same[2]).is_some(),
        "fresh entry survives on a previously TTL-dead shard"
    );
    assert!(cache.get(same[3]).is_some(), "so does its shard-mate");
    assert!(cache.get(same[0]).is_none(), "the corpses are gone");
    assert!(cache.get(same[1]).is_none());
    assert!(cache.get(other).is_some(), "other shards untouched");
    assert_eq!(cache.len(), 3, "only the live entries remain anywhere");
}

#[test]
fn single_invalidation_retires_one_fingerprint_and_spares_the_rest() {
    let h = harness(false);
    let body_a = manuscript_body(&h.state, "Submission A");
    let body_b = manuscript_body(&h.state, "Submission B");
    assert_eq!(post(&h.router, "/recommend", &body_a).status, 200);
    assert_eq!(post(&h.router, "/recommend", &body_b).status, 200);
    assert_eq!(h.state.result_cache.as_ref().unwrap().len(), 2);
    let calls_after_fill = h.calls.load(Ordering::SeqCst);

    // Invalidate A by its manuscript body: scope=single, one entry out.
    let resp = post(&h.router, "/cache/invalidate", &body_a);
    assert_eq!(resp.status, 200);
    let v = minaret::json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(v.get("scope").and_then(Value::as_str), Some("single"));
    assert_eq!(v.get("invalidated").and_then(Value::as_u64), Some(1));
    assert_eq!(h.state.result_cache.as_ref().unwrap().len(), 1);

    // B is still served with zero fan-outs; A recomputes.
    assert_eq!(post(&h.router, "/recommend", &body_b).status, 200);
    assert_eq!(
        h.calls.load(Ordering::SeqCst),
        calls_after_fill,
        "the surviving fingerprint still hits"
    );
    assert_eq!(post(&h.router, "/recommend", &body_a).status, 200);
    assert!(
        h.calls.load(Ordering::SeqCst) > calls_after_fill,
        "the invalidated fingerprint recomputed"
    );

    // Re-invalidating A (just recomputed) hits; drop-everything then
    // clears every shard.
    let resp = post(&h.router, "/cache/invalidate", &body_a);
    let v = minaret::json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(v.get("invalidated").and_then(Value::as_u64), Some(1));
    let resp = post(&h.router, "/cache/invalidate", "");
    let v = minaret::json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(v.get("scope").and_then(Value::as_str), Some("all"));
    assert_eq!(v.get("invalidated").and_then(Value::as_u64), Some(1));
    assert!(h.state.result_cache.as_ref().unwrap().is_empty());
}

#[test]
fn degraded_responses_are_never_cached() {
    let h = harness(true);
    let body = manuscript_body(&h.state, "Manuscript during an outage");
    let first = post(&h.router, "/recommend", &body);
    assert_eq!(
        first.status,
        200,
        "{}",
        String::from_utf8_lossy(&first.body)
    );
    let v = minaret::json::parse(std::str::from_utf8(&first.body).unwrap()).unwrap();
    assert_eq!(
        v.get("degraded").and_then(Value::as_bool),
        Some(true),
        "harness precondition: the outage makes the run degraded"
    );
    assert!(h.state.result_cache.as_ref().unwrap().is_empty());

    let calls_after_first = h.calls.load(Ordering::SeqCst);
    let second = post(&h.router, "/recommend", &body);
    assert_eq!(second.status, 200);
    assert!(
        h.calls.load(Ordering::SeqCst) > calls_after_first,
        "a degraded answer is recomputed, not pinned for a TTL"
    );
}
