//! Equivalence and linearizability checks for the sharded concurrent
//! map: under any single-threaded op sequence a [`ShardedMap`] must be
//! observably identical to the [`SingleLockMap`] baseline, and under
//! multi-threaded races it must still behave like *some* sequential
//! interleaving (distinct-key inserts all land; same-key
//! `get_or_insert_with` races elect exactly one winner).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use minaret::concurrent::{ConcurrentMap, ShardedMap, SingleLockMap};
use proptest::collection;
use proptest::prelude::*;

/// Drain a map into a sorted snapshot so two maps with different
/// internal layouts can be compared for observational equality.
fn snapshot<M: ConcurrentMap<u64, u64>>(map: &M) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    map.for_each(|k, v| {
        out.insert(*k, *v);
    });
    out
}

proptest! {
    /// Any randomized op sequence — inserts, gets, removes, coalescing
    /// inserts, contains, retains, clears — produces identical return
    /// values, identical lengths after every step, and an identical
    /// final key/value snapshot on both implementations, regardless of
    /// the shard count.
    #[test]
    fn sharded_map_is_observably_equivalent_to_the_single_lock_baseline(
        ops in collection::vec((0usize..7, 0u64..24, any::<u64>()), 1..120),
        shards in 1usize..9,
    ) {
        let sharded: ShardedMap<u64, u64> = ShardedMap::with_shards(shards);
        let baseline: SingleLockMap<u64, u64> = SingleLockMap::new();
        for (op, key, value) in ops {
            match op {
                0 => prop_assert_eq!(sharded.insert(key, value), baseline.insert(key, value)),
                1 => prop_assert_eq!(sharded.get(&key), baseline.get(&key)),
                2 => prop_assert_eq!(sharded.remove(&key), baseline.remove(&key)),
                3 => {
                    let got_s = sharded.get_or_insert_with(key, || value);
                    let got_b = baseline.get_or_insert_with(key, || value);
                    prop_assert_eq!(got_s, got_b);
                }
                4 => prop_assert_eq!(sharded.contains(&key), baseline.contains(&key)),
                5 => {
                    // Keep only entries whose value shares parity with
                    // the drawn value — an arbitrary but deterministic
                    // predicate exercised identically on both maps.
                    sharded.retain(|_, v| *v % 2 == value % 2);
                    baseline.retain(|_, v| *v % 2 == value % 2);
                }
                _ => {
                    // Rare full clear: the op range makes this 1-in-7,
                    // frequent enough to exercise, rare enough that the
                    // maps still accumulate interesting state.
                    if key == 0 {
                        prop_assert_eq!(sharded.clear(), baseline.clear());
                    } else {
                        prop_assert_eq!(sharded.is_empty(), baseline.is_empty());
                    }
                }
            }
            prop_assert_eq!(sharded.len(), baseline.len());
        }
        prop_assert_eq!(snapshot(&sharded), snapshot(&baseline));
    }
}

/// Eight threads insert disjoint key ranges through one shared map;
/// afterwards every key must be present with its own thread's value.
/// A lost update (two shards clobbering, a torn len) would surface as
/// a missing or wrong entry.
#[test]
fn concurrent_distinct_key_inserts_are_all_visible() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 64;
    let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::with_shards(4));
    let start = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS as u64)
        .map(|t| {
            let map = Arc::clone(&map);
            let start = Arc::clone(&start);
            thread::spawn(move || {
                start.wait();
                for i in 0..PER_THREAD {
                    let key = t * PER_THREAD + i;
                    assert_eq!(map.insert(key, t), None, "disjoint keys never collide");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(map.len(), THREADS * PER_THREAD as usize);
    for t in 0..THREADS as u64 {
        for i in 0..PER_THREAD {
            assert_eq!(map.get(&(t * PER_THREAD + i)), Some(t));
        }
    }
}

/// Eight threads race `get_or_insert_with` on the same key: exactly one
/// may win (`inserted == true`), the make closure runs exactly once,
/// and every thread observes the winner's value.
#[test]
fn same_key_get_or_insert_race_elects_exactly_one_winner() {
    const THREADS: usize = 8;
    let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new());
    let start = Arc::new(Barrier::new(THREADS));
    let builds = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..THREADS as u64)
        .map(|t| {
            let map = Arc::clone(&map);
            let start = Arc::clone(&start);
            let builds = Arc::clone(&builds);
            thread::spawn(move || {
                start.wait();
                let (value, inserted) = map.get_or_insert_with(7, || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    t
                });
                (value, inserted)
            })
        })
        .collect();
    let outcomes: Vec<(u64, bool)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(builds.load(Ordering::SeqCst), 1, "make ran exactly once");
    let winners: Vec<_> = outcomes.iter().filter(|(_, inserted)| *inserted).collect();
    assert_eq!(winners.len(), 1, "exactly one thread inserted");
    let winning_value = winners[0].0;
    assert!(outcomes.iter().all(|(v, _)| *v == winning_value));
    assert_eq!(map.get(&7), Some(winning_value));
    assert_eq!(map.len(), 1);
}

/// Mixed concurrent inserts and removes over a small key space settle
/// into a state where len() agrees with a full for_each walk — the
/// per-shard counters never drift from the shard contents.
#[test]
fn len_never_drifts_from_contents_under_concurrent_churn() {
    const THREADS: usize = 6;
    let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::with_shards(8));
    let start = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS as u64)
        .map(|t| {
            let map = Arc::clone(&map);
            let start = Arc::clone(&start);
            thread::spawn(move || {
                start.wait();
                for round in 0..200u64 {
                    let key = (t * 31 + round * 17) % 16;
                    if (t + round) % 3 == 0 {
                        map.remove(&key);
                    } else {
                        map.insert(key, t);
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let walked = snapshot(map.as_ref()).len();
    assert_eq!(map.len(), walked);
}
