//! The REST API over real TCP — the F3 form round-trip plus the full
//! workflow over HTTP (the paper ships the framework "as RESTful APIs").

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use minaret::http::Server;
use minaret::json::{parse, Value};
use minaret_server::{build_router, AppState};

struct TestServer {
    state: Arc<AppState>,
    server: Option<Server>,
}

impl TestServer {
    fn start() -> Self {
        let state = AppState::demo(250, 99);
        let server = Server::bind("127.0.0.1:0", build_router(state.clone()), 2).unwrap();
        Self {
            state,
            server: Some(server),
        }
    }

    fn addr(&self) -> SocketAddr {
        self.server.as_ref().unwrap().local_addr()
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
        let mut stream = TcpStream::connect(self.addr()).unwrap();
        let payload = match body {
            Some(b) => format!(
                "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{b}",
                b.len()
            ),
            None => format!("{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n"),
        };
        stream.write_all(payload.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b)
            .filter(|b| !b.is_empty())
            .map(|b| parse(b).unwrap())
            .unwrap_or(Value::Null);
        (status, body)
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(s) = self.server.take() {
            s.shutdown();
        }
    }
}

#[test]
fn health_and_sources_over_http() {
    let ts = TestServer::start();
    let (status, v) = ts.request("GET", "/health", None);
    assert_eq!(status, 200);
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    let (status, v) = ts.request("GET", "/sources", None);
    assert_eq!(status, 200);
    let sources = v.get("sources").and_then(Value::as_array).unwrap();
    assert_eq!(sources.len(), 6);
    let names: Vec<&str> = sources.iter().filter_map(Value::as_str).collect();
    assert!(names.contains(&"Google Scholar"));
    assert!(names.contains(&"Publons"));
}

#[test]
fn expansion_endpoint_reproduces_paper_example() {
    let ts = TestServer::start();
    let (status, v) = ts.request("GET", "/expand?keyword=RDF", None);
    assert_eq!(status, 200);
    let labels: Vec<&str> = v
        .get("expanded")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .filter_map(|e| e.get("keyword").and_then(Value::as_str))
        .collect();
    for expected in ["Semantic Web", "Linked Open Data", "SPARQL"] {
        assert!(
            labels.contains(&expected),
            "missing {expected} in {labels:?}"
        );
    }
}

#[test]
fn full_form_round_trip_over_http() {
    let ts = TestServer::start();
    let lead = ts
        .state
        .world
        .scholars()
        .iter()
        .find(|s| !ts.state.world.papers_of(s.id).is_empty())
        .unwrap();
    let inst = ts.state.world.institution(lead.current_affiliation());
    let keywords: Vec<Value> = lead
        .interests
        .iter()
        .take(3)
        .map(|&t| Value::from(ts.state.world.ontology.label(t)))
        .collect();
    // Every field of the Figure 3 form, including editor filters.
    let body = Value::object()
        .set("title", "HTTP round trip")
        .set("keywords", keywords)
        .set(
            "authors",
            vec![Value::object()
                .set("name", lead.full_name().as_str())
                .set("affiliation", inst.name.as_str())
                .set("country", inst.country.as_str())],
        )
        .set("target_venue", ts.state.world.venues()[0].name.as_str())
        .set(
            "config",
            Value::object()
                .set("max_recommendations", 7u32)
                .set("keyword_score_threshold", 0.5)
                .set("coi_affiliation_level", "university")
                .set(
                    "weights",
                    Value::object().set("coverage", 0.5).set("impact", 0.2),
                ),
        )
        .to_string();
    let (status, v) = ts.request("POST", "/recommend", Some(&body));
    assert_eq!(status, 200, "{v:?}");
    let recs = v.get("recommendations").and_then(Value::as_array).unwrap();
    assert!(!recs.is_empty() && recs.len() <= 7);
    // Ranked descending, every row has the drill-down fields.
    let mut prev = f64::INFINITY;
    for r in recs {
        let total = r.get("total_score").and_then(Value::as_f64).unwrap();
        assert!(total <= prev);
        prev = total;
        let details = r.get("score_details").unwrap();
        for field in [
            "topic_coverage",
            "scientific_impact",
            "recency",
            "review_experience",
            "outlet_familiarity",
        ] {
            let x = details.get(field).and_then(Value::as_f64).unwrap();
            assert!((0.0..=1.0).contains(&x));
        }
    }
    // The author never appears among the recommendations.
    for r in recs {
        assert_ne!(
            r.get("name").and_then(Value::as_str).unwrap(),
            lead.full_name()
        );
    }
}

#[test]
fn verify_authors_over_http() {
    let ts = TestServer::start();
    let scholar = &ts.state.world.scholars()[3];
    let body = Value::object()
        .set(
            "authors",
            vec![Value::object().set("name", scholar.full_name().as_str())],
        )
        .to_string();
    let (status, v) = ts.request("POST", "/verify-authors", Some(&body));
    assert_eq!(status, 200);
    let authors = v.get("authors").and_then(Value::as_array).unwrap();
    assert_eq!(
        authors[0].get("name").and_then(Value::as_str),
        Some(scholar.full_name().as_str())
    );
}

#[test]
fn api_rejects_garbage() {
    let ts = TestServer::start();
    let (status, _) = ts.request("POST", "/recommend", Some("{broken"));
    assert_eq!(status, 400);
    let (status, _) = ts.request("POST", "/recommend", Some(r#"{"title": 3}"#));
    assert_eq!(status, 422);
    let (status, _) = ts.request("GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = ts.request("POST", "/health", Some("{}"));
    assert_eq!(status, 405);
}
