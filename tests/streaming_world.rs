//! Lazy profile materialization equivalence.
//!
//! A [`SimulatedSource`] over a store-backed [`LazyWorld`] must be
//! observationally identical to one over the eager [`World`]: the same
//! search indexes, the same coverage, and byte-identical profiles —
//! for every source kind, over randomly sampled scholars. This is the
//! contract that lets a million-scholar server skip materializing
//! profiles at startup without changing a single served byte.

use std::sync::Arc;

use minaret_scholarly::{ScholarSource, SimulatedSource, SourceKind, SourceSpec};
use minaret_synth::{
    stream_snapshot_world, LazyWorld, ScholarId, StreamingGenerator, World, WorldConfig,
    WorldGenerator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn worlds(tag: &str) -> (Arc<World>, Arc<LazyWorld>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("minaret-streameq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // 1500 scholars: two community blocks, so lazy reads cross blocks.
    let cfg = WorldConfig {
        seed: 0x1a2b,
        ..WorldConfig::sized(1500)
    };
    let eager = Arc::new(WorldGenerator::new(cfg.clone()).generate());
    let store =
        Arc::new(minaret_store::Store::open(&dir, minaret_store::StoreConfig::default()).unwrap());
    stream_snapshot_world(&store, &StreamingGenerator::new(cfg), |_| {}).unwrap();
    let lazy = LazyWorld::open(store).unwrap().expect("snapshot present");
    (eager, lazy, dir)
}

#[test]
fn lazy_profiles_are_byte_identical_to_eager_for_every_source_kind() {
    let (eager_world, lazy_world, dir) = worlds("profiles");
    let mut rng = StdRng::seed_from_u64(7);
    for kind in SourceKind::ALL {
        let spec = SourceSpec::for_kind(kind);
        let eager = SimulatedSource::new(spec.clone(), eager_world.clone());
        let lazy = SimulatedSource::lazy(spec, lazy_world.clone());
        assert_eq!(eager.covered_count(), lazy.covered_count(), "{kind}");
        for _ in 0..40 {
            let id = ScholarId(rng.gen_range(0..1500) as u32);
            let key = eager.key_for(id);
            assert_eq!(key, lazy.key_for(id), "{kind}: keys diverge");
            match (eager.fetch_profile(&key), lazy.fetch_profile(&key)) {
                (Ok(a), Ok(b)) => assert_eq!(*a, *b, "{kind}: profile diverges for {key}"),
                (Err(_), Err(_)) => {} // both uncovered — same verdict
                (a, b) => panic!("{kind}: coverage diverges for {key}: {a:?} vs {b:?}"),
            }
        }
    }
    drop(lazy_world);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn lazy_search_results_match_eager_for_names_and_interests() {
    let (eager_world, lazy_world, dir) = worlds("search");
    let mut rng = StdRng::seed_from_u64(11);
    for kind in [SourceKind::GoogleScholar, SourceKind::Publons] {
        let spec = SourceSpec::for_kind(kind);
        let eager = SimulatedSource::new(spec.clone(), eager_world.clone());
        let lazy = SimulatedSource::lazy(spec, lazy_world.clone());
        for _ in 0..15 {
            let s = &eager_world.scholars()[rng.gen_range(0..1500)];
            assert_eq!(
                eager.search_by_name(&s.full_name()).unwrap(),
                lazy.search_by_name(&s.full_name()).unwrap(),
                "{kind}: name search diverges for {}",
                s.full_name()
            );
            let label = eager_world.ontology.label(s.interests[0]);
            assert_eq!(
                eager.search_by_interest(label).unwrap(),
                lazy.search_by_interest(label).unwrap(),
                "{kind}: interest search diverges for {label}"
            );
        }
    }
    drop(lazy_world);
    std::fs::remove_dir_all(dir).unwrap();
}
