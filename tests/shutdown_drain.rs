//! Shutdown/drain soak: start → load → shutdown, repeatedly, with
//! clients racing the drain. The invariants under test:
//!
//! * `shutdown()` always returns (joins the acceptor and every worker,
//!   propagating any panic — a wedged or panicked thread fails loudly);
//! * every connection that got any response bytes got a *complete*
//!   response (verified against `Content-Length`), never a truncated
//!   one — the drain serves what it admitted;
//! * connections refused mid-shutdown end in a clean close, reset, or
//!   connect error, all of which a client can retry on;
//! * no threads leak across cycles (checked against `/proc/self/task`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use minaret::http::{KeepAliveConfig, Server, ServerConfig};
use minaret_server::{build_router, AppState};
use minaret_telemetry::Telemetry;

fn os_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").unwrap().count()
}

/// What happened to one racing client.
enum Outcome {
    /// Full status line + headers + exactly `Content-Length` body bytes.
    Complete(u16),
    /// Zero response bytes: closed/refused before a response started.
    NoResponse,
}

/// Sends one close-framed request and classifies the result. Any
/// *partial* response is a test failure — the one thing drain must
/// never produce.
fn racing_client(addr: SocketAddr) -> Outcome {
    let mut s = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return Outcome::NoResponse,
    };
    if s.write_all(b"GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .is_err()
    {
        return Outcome::NoResponse;
    }
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            // A reset counts as no/partial data; whatever arrived is
            // still held to the completeness check below.
            Err(_) => break,
        }
    }
    if out.is_empty() {
        return Outcome::NoResponse;
    }
    let text = String::from_utf8_lossy(&out);
    let (head, body) = match text.split_once("\r\n\r\n") {
        Some(x) => x,
        None => panic!("truncated response head: {text:?}"),
    };
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("garbled status line: {head:?}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("response without Content-Length: {head:?}"));
    assert_eq!(
        body.len(),
        content_length,
        "truncated response body (drain must finish what it admitted): {text:?}"
    );
    Outcome::Complete(status)
}

#[test]
fn repeated_start_load_shutdown_cycles_leak_nothing() {
    // One world for every cycle — world generation dominates test time
    // and the serving layer is what's under test.
    let state = AppState::demo_with_telemetry(60, 11, Telemetry::disabled());
    let mut baseline_threads = None;
    let mut completed_total = 0u32;

    for cycle in 0..12 {
        let server = Server::bind_with(
            "127.0.0.1:0",
            build_router(state.clone()),
            ServerConfig {
                workers: 2,
                queue_depth: 4,
                request_timeout: Some(Duration::from_secs(10)),
                keep_alive: KeepAliveConfig::default(),
                telemetry: Telemetry::disabled(),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // One synchronous client before shutdown begins: the server is
        // fully up, so this MUST complete — the soak deterministically
        // exercises the served path every cycle, independent of how the
        // races below land.
        match racing_client(addr) {
            Outcome::Complete(200) => completed_total += 1,
            Outcome::Complete(s) => panic!("cycle {cycle}: pre-shutdown client got {s}"),
            Outcome::NoResponse => panic!("cycle {cycle}: pre-shutdown client got no response"),
        }

        // Racing load: well-behaved clients, a connect-and-vanish
        // client, and a half-request client, all in flight while the
        // server shuts down.
        let clients: Vec<_> = (0..5)
            .map(|_| std::thread::spawn(move || racing_client(addr)))
            .collect();
        let rude: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    if let Ok(mut s) = TcpStream::connect(addr) {
                        if i == 0 {
                            let _ = s.write_all(b"GET /hea"); // half a request, then gone
                        }
                    }
                })
            })
            .collect();

        // Shut down while the clients above are mid-flight. Joins every
        // server thread; a panicked worker fails the test here.
        server.shutdown();

        for c in clients {
            match c.join().expect("client thread panicked") {
                Outcome::Complete(status) => {
                    assert!(
                        status == 200 || status == 503,
                        "cycle {cycle}: unexpected status {status}"
                    );
                    completed_total += 1;
                }
                Outcome::NoResponse => {}
            }
        }
        for r in rude {
            r.join().expect("rude client thread panicked");
        }

        // Thread accounting: after the first full cycle (which warms up
        // runtime machinery), the OS thread count must return to its
        // baseline every cycle — no leaked workers, acceptors, or
        // linger threads. Shed/linger threads exit once their client is
        // gone; spin (bounded) until they do.
        if let Some(baseline) = baseline_threads {
            let mut spins = 0u64;
            while os_thread_count() > baseline {
                spins += 1;
                assert!(
                    spins < 50_000_000,
                    "cycle {cycle}: thread count stuck at {} (baseline {baseline})",
                    os_thread_count()
                );
                std::thread::yield_now();
            }
        } else {
            baseline_threads = Some(os_thread_count());
        }
    }

    // The soak actually exercised the served path, not just refusals
    // (guaranteed by the per-cycle pre-shutdown client above).
    assert!(
        completed_total >= 12,
        "expected at least one completed response per cycle, got {completed_total}"
    );

    // And a fresh server still works after the churn.
    let server = Server::bind_with(
        "127.0.0.1:0",
        build_router(state.clone()),
        ServerConfig {
            workers: 1,
            telemetry: Telemetry::disabled(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    match racing_client(server.local_addr()) {
        Outcome::Complete(200) => {}
        Outcome::Complete(s) => panic!("expected 200 after churn, got {s}"),
        Outcome::NoResponse => panic!("no response from a healthy server"),
    }
    server.shutdown();
}

#[test]
fn shutdown_with_queued_connections_drains_them() {
    let state = AppState::demo_with_telemetry(60, 13, Telemetry::disabled());
    let server = Server::bind_with(
        "127.0.0.1:0",
        build_router(state.clone()),
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            telemetry: Telemetry::disabled(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    // Several clients race a single worker; some will still be queued
    // when shutdown starts. Everyone must still be answered or cleanly
    // closed — never left hanging and never truncated.
    let clients: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || racing_client(addr)))
        .collect();
    server.shutdown();
    for c in clients {
        match c.join().unwrap() {
            Outcome::Complete(s) => assert!(s == 200 || s == 503, "status {s}"),
            Outcome::NoResponse => {}
        }
    }
}
