//! Quickstart: generate a synthetic scholarly world, wire the six
//! simulated sources, and get ranked reviewer recommendations for one
//! manuscript.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use minaret::prelude::*;

fn main() {
    // 1. A seeded synthetic world stands in for the live scholarly web
    //    (Google Scholar, DBLP, Publons, ACM DL, ORCID, ResearcherID).
    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(1000)).generate());
    let stats = world.stats();
    println!(
        "world: {} scholars, {} papers, {} venues, {} review records\n",
        stats.scholars, stats.papers, stats.venues, stats.reviews
    );

    // 2. Register the six sources.
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for spec in SourceSpec::all_defaults() {
        registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
    }

    // 3. The framework: sources + CS topic ontology + editor defaults.
    let minaret = Minaret::new(
        Arc::new(registry),
        Arc::new(minaret::ontology::seed::curated_cs_ontology()),
        EditorConfig::default(),
    );

    // 4. A manuscript, as the editor would type it (Figure 3 form).
    let lead = world
        .scholars()
        .iter()
        .find(|s| s.interests.len() >= 3 && !world.papers_of(s.id).is_empty())
        .expect("the world has active scholars");
    let inst = world.institution(lead.current_affiliation());
    let manuscript = ManuscriptDetails {
        title: "A Scalable Approach to Synthetic Data Management".into(),
        keywords: lead
            .interests
            .iter()
            .take(3)
            .map(|&t| world.ontology.label(t).to_string())
            .collect(),
        authors: vec![AuthorInput::named(lead.full_name())
            .with_affiliation(inst.name.clone())
            .with_country(inst.country.clone())],
        target_venue: world.venues()[0].name.clone(),
    };
    println!("manuscript: {:?}", manuscript.title);
    println!("keywords:   {}", manuscript.keywords.join(", "));
    println!("author:     {} ({})\n", lead.full_name(), inst.name);

    // 5. Run the three-phase pipeline.
    let report = minaret.recommend(&manuscript).expect("candidates exist");
    println!(
        "expanded keywords: {}",
        report
            .expansions
            .iter()
            .map(|e| format!("{} (+{})", e.original, e.expanded.len()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "retrieved {} candidates, filtered out {}, recommending {}:\n",
        report.candidates_retrieved,
        report.filtered_out.len(),
        report.recommendations.len()
    );
    println!("{}", report.render_table());
    println!(
        "phases: extraction {:.1} ms | filtering {:.1} ms | ranking {:.1} ms",
        report.timings.extraction.as_secs_f64() * 1e3,
        report.timings.filtering.as_secs_f64() * 1e3,
        report.timings.ranking.as_secs_f64() * 1e3,
    );
}
