//! CI perf smoke for the batched-retrieval pipeline (E7 addendum).
//!
//! Two modes:
//!
//! - `--record` re-measures and writes the committed baseline,
//!   `BENCH_e7_scalability.json`. Run it (release mode) after an
//!   intentional performance change and commit the new file.
//! - default (no flag) re-measures and **fails** (exit 1) when either
//!   guard breaks:
//!   1. batched retrieval of the full label set must stay at least
//!      [`MIN_SPEEDUP`]x faster than per-label retrieval, and
//!   2. the extraction phase of a multi-keyword recommendation must not
//!      regress more than [`REGRESSION_HEADROOM`] over the baseline.
//!
//! Sources carry scraping-scale injected latency, so the measurement is
//! dominated by round trips the registry schedules — not raw CPU — which
//! keeps the check stable across machines. Minimum-of-N timing discards
//! scheduler noise.
//!
//! The connection-scaling sweep holds 100 and 1 000 idle keep-alive
//! connections open against the epoll reactor and gates two claims:
//! the serving thread count stays at `io_threads + workers` (idle
//! sockets cost table entries, not threads), and the uncached
//! `/recommend` p50 stays flat as idle sockets pile up. Set
//! `MINARET_CONN_SWEEP=1` to extend the sweep to 10 000 connections
//! (clamped to the fd budget when both socket ends don't fit in
//! RLIMIT_NOFILE).
//!
//! The world-size sweep (E7 proper) stream-generates worlds of 10^3,
//! 10^4, and 10^5 scholars straight into an embedded store and gates
//! two same-run claims: the lazy cold start must beat regenerating the
//! largest world, and the uncached recommend p50 must stay flat (within
//! [`SWEEP_FLATNESS_HEADROOM`]) from the smallest to the largest size.
//! Set `MINARET_WORLD_SWEEP=1` to extend the sweep to 10^6 scholars
//! (minutes of wall time; reported, not gated).
//!
//! Built with `--features count-allocs`, the smoke additionally counts
//! **heap allocations per warm recommendation** through a counting
//! global allocator and fails when they regress more than
//! [`ALLOC_REGRESSION_HEADROOM`] over the committed baseline — the guard
//! for the zero-copy extraction work (Arc-shared profiles, interning,
//! single-flight coalescing). Without the feature the allocation guard
//! is skipped (timings stay valid either way).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: minaret_bench::alloc::CountingAllocator = minaret_bench::alloc::CountingAllocator;

use minaret::concurrent::{ConcurrentMap, ShardedMap, SingleLockMap};
use minaret::eval::harness::{EvalContext, ScenarioConfig};
use minaret::http::{KeepAliveConfig, Method, Request, Server, ServerConfig};
use minaret::json::{parse, Value};
use minaret::prelude::*;
use minaret::synth::LazyWorld;
use minaret_server::{build_router, AppState, ResultCache};
use minaret_telemetry::Telemetry;

/// Committed baseline, resolved against the workspace root so the smoke
/// works from any working directory.
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_e7_scalability.json");

/// World size: small — the round trips, not profile assembly, should
/// dominate.
const SCHOLARS: usize = 200;

/// Labels in the sweep set (the largest point of the e7 label sweep).
const LABELS: usize = 80;

/// Per-call injected source latency, in microseconds.
const LATENCY_MICROS: u64 = 500;

/// Timed repetitions; the minimum is kept.
const RUNS: usize = 5;

/// Batched retrieval must beat per-label retrieval by at least this
/// factor (the PR's headline claim).
const MIN_SPEEDUP: f64 = 2.0;

/// Allowed extraction-time growth over the committed baseline.
const REGRESSION_HEADROOM: f64 = 1.25;

/// Allowed growth in warm-path allocations per recommendation over the
/// committed baseline (only checked under `--features count-allocs`).
#[cfg(feature = "count-allocs")]
const ALLOC_REGRESSION_HEADROOM: f64 = 1.25;

/// A cached `/recommend` over HTTP must beat the uncached pipeline by at
/// least this factor (the serving-layer result cache's headline claim).
const CACHE_MIN_SPEEDUP: f64 = 10.0;

/// Allowed growth of the served cache-hit latency over the committed
/// baseline. Wider than the extraction headroom: loopback round trips
/// carry more scheduler noise than in-process timing.
const SERVED_REGRESSION_HEADROOM: f64 = 2.0;

/// Cached requests in the throughput run.
const THROUGHPUT_REQUESTS: usize = 100;

/// World size for the embedded-store smoke (the e7 scalability point:
/// snapshot, recover, and serve a 10k-scholar world).
const STORE_SCHOLARS: usize = 10_000;

/// Keys in the store put/get microbenchmark.
const STORE_OPS: usize = 2_000;

/// Allowed growth of the store metrics (`store_put_micros`,
/// `store_get_micros`, `store_recovery_millis`) over the committed
/// baseline. Wider than the extraction headroom because single-digit
/// microsecond ops carry proportionally more scheduler and filesystem
/// noise; a small additive slack absorbs tiny-baseline rounding.
const STORE_REGRESSION_HEADROOM: f64 = 2.0;

/// World sizes in the E7 scalability sweep (generation throughput, lazy
/// cold start, uncached recommend latency). The `MINARET_WORLD_SWEEP`
/// environment variable extends the sweep to [`SWEEP_FULL_SIZE`].
const SWEEP_SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// The opt-in million-scholar sweep point (minutes of wall time, so it
/// never runs by default).
const SWEEP_FULL_SIZE: usize = 1_000_000;

/// Distinct manuscripts behind the uncached recommend p50. Every title
/// is unique, so no result cache could serve any of them.
const SWEEP_MANUSCRIPTS: usize = 11;

/// Page cap ([`SourceSpec::max_hits`]) used by the sweep sources: small
/// enough that even the 10^3-scholar world saturates a page for common
/// topics, so the latency comparison isolates world-size effects from
/// result-count effects — the cap is exactly the mechanism that keeps
/// per-request work independent of world size.
const SWEEP_MAX_HITS: usize = 8;

/// Flat-latency gate: the uncached recommend p50 at the largest default
/// sweep size must stay within this factor of the p50 at the smallest.
/// Both ends are measured moments apart in this process, so the budget
/// absorbs scheduler noise, not cross-machine variance — but on a
/// single-CPU runner each point's p50 still swings ~±15% run to run
/// (observed same-tree ratios 1.26–1.61 across back-to-back runs), so
/// the budget must sit clear of the noise band around the true ~1.3–1.4
/// ratio. 1.75 still rejects the failure mode this gate exists for:
/// per-request work growing with world size (a linear path would be
/// ~100× here, not <2×).
const SWEEP_FLATNESS_HEADROOM: f64 = 1.75;

/// Idle keep-alive connection counts in the connection-scaling sweep
/// (E7 serving addendum): with the epoll reactor, idle connections must
/// cost table entries, not threads. `MINARET_CONN_SWEEP=1` extends the
/// sweep to [`CONN_FULL_SIZE`].
const CONN_SIZES: [usize; 2] = [100, 1_000];

/// The opt-in ten-thousand-connection point. Clamped to the process fd
/// budget when RLIMIT_NOFILE cannot hold both ends of that many
/// loopback sockets in one process (clamping is reported, never
/// silent).
const CONN_FULL_SIZE: usize = 10_000;

/// Uncached `/recommend` samples per connection-sweep point; the median
/// is kept.
const CONN_SAMPLES: usize = 9;

/// The uncached recommend p50 with the most idle connections open must
/// stay within this factor of the p50 at the smallest point — idle
/// sockets may not tax live requests. Same-run comparison, so the
/// budget only absorbs scheduler noise.
const CONN_FLATNESS_HEADROOM: f64 = 1.5;

/// Reactor threads in the connection sweep's server.
const CONN_IO_THREADS: usize = 1;

/// Worker threads in the connection sweep's server.
const CONN_WORKERS: usize = 2;

/// Threads the server may add beyond `io_threads + workers` at any
/// sweep point (slack for a runtime helper thread, not per-connection
/// growth).
const CONN_THREAD_SLACK: usize = 1;

/// Injected cost of a cache-miss build in the contention bench, in
/// microseconds. Sized like a cheap I/O round trip so the measurement
/// is dominated by time spent *holding a lock across a blocking build*
/// — the workload shape sharding helps with — rather than raw CPU,
/// which keeps the bench meaningful on single-core CI runners: the
/// single-lock baseline serializes the sleeps, the sharded map
/// overlaps them.
const CONTENTION_BUILD_MICROS: u64 = 200;

/// `get_or_insert_with` calls each bench thread performs (all distinct
/// keys, so every call pays the build cost).
const CONTENTION_OPS: usize = 64;

/// Timed repetitions of each contention configuration; the minimum
/// elapsed (maximum throughput) is kept.
const CONTENTION_RUNS: usize = 3;

/// Allowed single-thread throughput drop for the sharded map against
/// the committed baseline — the "sharding must not tax the
/// uncontended path" gate.
const CONTENTION_REGRESSION_HEADROOM: f64 = 1.25;

struct Measured {
    per_label: Duration,
    batched: Duration,
    extraction: Duration,
}

fn min_of<F: FnMut() -> Duration>(runs: usize, mut f: F) -> Duration {
    (0..runs).map(|_| f()).min().expect("runs >= 1")
}

fn measure() -> Measured {
    let mut scenario = ScenarioConfig::sized(SCHOLARS);
    scenario.source_latency_micros = LATENCY_MICROS;
    let ctx = EvalContext::build(scenario);

    let mut labels: Vec<String> = ctx
        .ontology
        .topics()
        .map(|t| t.label.clone())
        .take(LABELS)
        .collect();
    let mut filler = 0usize;
    while labels.len() < LABELS {
        labels.push(format!("synthetic topic {filler}"));
        filler += 1;
    }

    let per_label = min_of(RUNS, || {
        let t = Instant::now();
        for label in &labels {
            let _ = ctx.registry.search_by_interest_report(label);
        }
        t.elapsed()
    });
    let batched = min_of(RUNS, || {
        let t = Instant::now();
        let _ = ctx.registry.search_by_interests_report(&labels);
        t.elapsed()
    });

    // Extraction phase of a multi-keyword manuscript: the end-to-end
    // path the batching optimises (author verification fan-outs plus
    // exactly one batched interest fan-out).
    let sub = ctx.submissions(1, 0xE7).pop().expect("submission");
    let mut manuscript = ctx.manuscript_for(&sub);
    let mut topics = ctx.ontology.topics().map(|t| t.label.clone());
    while manuscript.keywords.len() < 3 {
        let label = topics.next().expect("curated ontology has topics");
        if !manuscript.keywords.contains(&label) {
            manuscript.keywords.push(label);
        }
    }
    let extraction = min_of(RUNS, || {
        let report = ctx
            .minaret
            .recommend(&manuscript)
            .expect("smoke pipeline succeeds");
        report.timings.extraction
    });

    Measured {
        per_label,
        batched,
        extraction,
    }
}

fn micros(d: Duration) -> u64 {
    d.as_micros() as u64
}

struct ServedMeasured {
    uncached: Duration,
    cached: Duration,
    rps: f64,
    hit_rate: f64,
}

/// One keep-alive POST: write the request, read a `Content-Length`-framed
/// response, return the status.
fn post_keep_alive(stream: &mut TcpStream, path: &str, body: &str) -> u16 {
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: smoke\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("request written");
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break i + 4;
        }
        let n = stream.read(&mut buf).expect("response readable");
        assert!(n > 0, "server closed mid-response");
        raw.extend_from_slice(&buf[..n]);
    };
    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length present");
    while raw.len() < head_end + content_length {
        let n = stream.read(&mut buf).expect("body readable");
        assert!(n > 0, "server closed mid-body");
        raw.extend_from_slice(&buf[..n]);
    }
    status
}

/// Serving-layer measurement: cached vs uncached `/recommend` latency
/// and cached throughput over one keep-alive connection, against a real
/// TCP server whose sources carry the same injected scraping latency as
/// the retrieval smoke (so the uncached path is round-trip-dominated
/// and the comparison is stable across machines).
fn measure_serving() -> ServedMeasured {
    let world = Arc::new(
        WorldGenerator::new(WorldConfig {
            seed: 0xE7,
            ..WorldConfig::sized(SCHOLARS)
        })
        .generate(),
    );
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for mut spec in SourceSpec::all_defaults() {
        spec.latency_micros = LATENCY_MICROS;
        registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
    }
    let telemetry = Telemetry::new();
    let cache = Arc::new(ResultCache::new(600_000_000, 1024).with_telemetry(telemetry.clone()));
    let state = AppState::with_registry_and_cache(
        world,
        Arc::new(registry),
        telemetry.clone(),
        Some(cache),
    );
    let router = build_router(state.clone());
    let server = Server::bind_with(
        "127.0.0.1:0",
        router,
        ServerConfig {
            workers: 2,
            keep_alive: KeepAliveConfig {
                max_requests: 1_000_000,
                idle_timeout: None,
            },
            telemetry: telemetry.clone(),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");

    let lead = state
        .world
        .scholars()
        .iter()
        .find(|s| !state.world.papers_of(s.id).is_empty())
        .expect("a published scholar exists");
    let keywords: Vec<Value> = lead
        .interests
        .iter()
        .take(3)
        .map(|&t| Value::from(state.world.ontology.label(t)))
        .collect();
    let body_for = |title: &str| {
        Value::object()
            .set("title", title)
            .set("keywords", keywords.clone())
            .set(
                "authors",
                vec![Value::object().set("name", lead.full_name().as_str())],
            )
            .set("target_venue", state.world.venues()[0].name.as_str())
            .to_string()
    };

    let mut stream = TcpStream::connect(server.local_addr()).expect("client connects");
    // Uncached: every request is a distinct title, so every request is
    // a miss and runs the full pipeline. Minimum-of-N discards noise.
    let uncached = (0..RUNS)
        .map(|i| {
            let body = body_for(&format!("smoke uncached {i}"));
            let t = Instant::now();
            let status = post_keep_alive(&mut stream, "/recommend", &body);
            assert_eq!(status, 200, "uncached /recommend failed");
            t.elapsed()
        })
        .min()
        .expect("runs >= 1");

    // Cached: one fill, then repeats of the identical question.
    let cached_body = body_for("smoke cached");
    assert_eq!(
        post_keep_alive(&mut stream, "/recommend", &cached_body),
        200
    );
    let cached = min_of(RUNS, || {
        let t = Instant::now();
        let status = post_keep_alive(&mut stream, "/recommend", &cached_body);
        assert_eq!(status, 200, "cached /recommend failed");
        t.elapsed()
    });

    // Throughput on the hit path, same keep-alive connection.
    let t = Instant::now();
    for _ in 0..THROUGHPUT_REQUESTS {
        assert_eq!(
            post_keep_alive(&mut stream, "/recommend", &cached_body),
            200
        );
    }
    let rps = THROUGHPUT_REQUESTS as f64 / t.elapsed().as_secs_f64().max(1e-9);

    let hits = telemetry
        .counter("minaret_result_cache_hits_total", &[])
        .get() as f64;
    let misses = telemetry
        .counter("minaret_result_cache_misses_total", &[])
        .get() as f64;
    let hit_rate = hits / (hits + misses).max(1.0);

    drop(stream);
    server.shutdown();
    ServedMeasured {
        uncached,
        cached,
        rps,
        hit_rate,
    }
}

struct StoreMeasured {
    put_micros: u64,
    get_micros: u64,
    recovery_millis: u64,
    regen: Duration,
    cold_start: Duration,
}

/// Embedded-store measurement over a 10k-scholar world: per-op put and
/// get latency, recovery time on reopen (WAL replay + table
/// validation), and the snapshot-served cold start — which must beat
/// regenerating the same world from scratch, the whole point of
/// `--data-dir`.
fn measure_store() -> StoreMeasured {
    use minaret::store::{Store, StoreConfig};
    use minaret::synth::{load_world, snapshot_world, SnapshotMeta};

    let dir = std::env::temp_dir().join(format!("minaret-perf-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Full regeneration cost: the bar a snapshot-served cold start must
    // clear.
    let t = Instant::now();
    let world = WorldGenerator::new(WorldConfig {
        seed: 0xE7,
        ..WorldConfig::sized(STORE_SCHOLARS)
    })
    .generate();
    let regen = t.elapsed();

    let store = Store::open(&dir, StoreConfig::default()).expect("store opens");
    snapshot_world(
        &store,
        &world,
        SnapshotMeta {
            scholars: STORE_SCHOLARS as u32,
            seed: 0xE7,
            current_year: world.current_year,
        },
    )
    .expect("snapshot written");

    // Per-op put latency over profile-sized values (buffered WAL path).
    let value = vec![0xABu8; 512];
    let key = |prefix: &str, i: usize| format!("{prefix}/{i:06}").into_bytes();
    let t = Instant::now();
    for i in 0..STORE_OPS {
        store.put(&key("bench", i), &value).expect("put");
    }
    let put_micros = (t.elapsed().as_micros() as u64 / STORE_OPS as u64).max(1);

    // Per-op get latency from a flushed sorted table (sparse-index
    // binary search + file reads), not the memtable fast path.
    store.flush().expect("flush");
    let t = Instant::now();
    for i in 0..STORE_OPS {
        assert!(
            store.get(&key("bench", i)).expect("get").is_some(),
            "bench key must be present"
        );
    }
    let get_micros = (t.elapsed().as_micros() as u64 / STORE_OPS as u64).max(1);

    // Leave unflushed records behind so recovery replays a real WAL.
    for i in 0..STORE_OPS / 4 {
        store.put(&key("tail", i), &value).expect("put");
    }
    store.sync().expect("sync");
    drop(store);

    let store = Store::open(&dir, StoreConfig::default()).expect("store reopens");
    let recovery_millis = store.stats().recovery_millis;
    let t = Instant::now();
    let (loaded, _) = load_world(&store)
        .expect("snapshot loads")
        .expect("snapshot present");
    let cold_start = t.elapsed();
    assert_eq!(
        loaded.scholars().len(),
        world.scholars().len(),
        "cold start must serve the snapshotted world"
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    StoreMeasured {
        put_micros,
        get_micros,
        recovery_millis,
        regen,
        cold_start,
    }
}

struct SweepPoint {
    scholars: usize,
    stream: Duration,
    peak_chunk_bytes: usize,
    cold_start: Duration,
    regen: Duration,
    p50: Duration,
}

/// Default sweep sizes, extended to [`SWEEP_FULL_SIZE`] when the
/// `MINARET_WORLD_SWEEP` environment variable is set (non-empty, not
/// `0`).
fn sweep_sizes() -> Vec<usize> {
    let mut sizes = SWEEP_SIZES.to_vec();
    let opt_in = std::env::var("MINARET_WORLD_SWEEP")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if opt_in {
        sizes.push(SWEEP_FULL_SIZE);
    }
    sizes
}

/// A manuscript whose lead author sits `i` strides into the world, with
/// keywords drawn from that scholar's interests. Built entirely from
/// resident summary data — no profile materialization.
fn sweep_manuscript(lazy: &LazyWorld, i: usize) -> ManuscriptDetails {
    let n = lazy.scholar_count();
    let stride = (n / SWEEP_MANUSCRIPTS).max(1);
    let mut idx = (i * stride) % n;
    // Skip the rare interest-free scholar so validation always passes.
    while lazy.summary(idx).2.is_empty() {
        idx = (idx + 1) % n;
    }
    let (given, family, interests) = lazy.summary(idx);
    let keywords = interests
        .iter()
        .take(3)
        .map(|&t| lazy.ontology().label(t).to_string())
        .collect();
    ManuscriptDetails {
        title: format!("world sweep manuscript {i}"),
        keywords,
        authors: vec![AuthorInput::named(format!("{given} {family}"))],
        target_venue: lazy.venues()[0].name.clone(),
    }
}

/// One point of the E7 world-size sweep: stream-generate a world of
/// `scholars` straight into an embedded store (write-through chunks, so
/// peak generator memory stays one community block regardless of world
/// size), then measure the lazy cold start against full regeneration
/// and the uncached recommend p50 over lazy sources carrying the same
/// injected scraping latency as the retrieval smoke.
fn measure_world_point(scholars: usize) -> SweepPoint {
    use minaret::store::{Store, StoreConfig};
    use minaret::synth::{stream_snapshot_world, StreamingGenerator};

    let dir = std::env::temp_dir().join(format!(
        "minaret-perf-sweep-{scholars}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = WorldConfig {
        seed: 0xE7,
        ..WorldConfig::sized(scholars)
    };

    // Streaming generation with write-through snapshotting.
    let store = Store::open(&dir, StoreConfig::default()).expect("store opens");
    let t = Instant::now();
    let totals = stream_snapshot_world(&store, &StreamingGenerator::new(cfg.clone()), |_| {})
        .expect("streamed snapshot");
    let stream = t.elapsed();
    drop(store);

    // Lazy cold start: reopen the store, decode the resident summaries,
    // and build all six source indexes — everything a server must do
    // before its first request. No profile is materialized.
    let t = Instant::now();
    let store = Arc::new(Store::open(&dir, StoreConfig::default()).expect("store reopens"));
    let lazy = LazyWorld::open(store)
        .expect("lazy world opens")
        .expect("streamed snapshot present");
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for mut spec in SourceSpec::all_defaults() {
        spec.latency_micros = LATENCY_MICROS;
        spec.max_hits = SWEEP_MAX_HITS;
        registry.register(Arc::new(SimulatedSource::lazy(spec, lazy.clone())));
    }
    let registry = Arc::new(registry);
    let cold_start = t.elapsed();

    // The bar the lazy cold start must clear: regenerating the same
    // world and building the same six sources eagerly.
    let t = Instant::now();
    let world = Arc::new(WorldGenerator::new(cfg).generate());
    let mut eager = SourceRegistry::new(RegistryConfig::default());
    for spec in SourceSpec::all_defaults() {
        eager.register(Arc::new(SimulatedSource::new(spec, world.clone())));
    }
    let regen = t.elapsed();
    drop(eager);
    drop(world);

    // Uncached recommend p50: the full pipeline behind POST /recommend,
    // measured in-process (HTTP framing is world-size-independent and
    // gated separately by the serving smoke). Every title is distinct,
    // so a result cache could never answer — each run pays author
    // resolution, keyword expansion, interest fan-out, and per-profile
    // source round trips. A first pass over the same manuscripts warms
    // the internal profile caches, the steady state of a serving
    // process (the serving smoke measures its uncached latency over a
    // warm server the same way); the cold one-off cost of the first
    // request is the cold_start metric's department, not p50's.
    let ontology = Arc::new(minaret::ontology::seed::curated_cs_ontology());
    let pipeline = Minaret::new(registry, ontology, EditorConfig::default());
    for i in 0..SWEEP_MANUSCRIPTS {
        let mut manuscript = sweep_manuscript(&lazy, i);
        manuscript.title = format!("world sweep warmup {i}");
        let _ = pipeline
            .recommend(&manuscript)
            .expect("sweep warmup recommendation succeeds");
    }
    // Per-manuscript minimum over three measured passes discards
    // scheduler noise, the same policy as the retrieval smoke's
    // minimum-of-N timing.
    let mut samples: Vec<Duration> = (0..SWEEP_MANUSCRIPTS)
        .map(|i| {
            let manuscript = sweep_manuscript(&lazy, i);
            min_of(3, || {
                let t = Instant::now();
                let _ = pipeline
                    .recommend(&manuscript)
                    .expect("sweep recommendation succeeds");
                t.elapsed()
            })
        })
        .collect();
    samples.sort();
    let p50 = samples[SWEEP_MANUSCRIPTS / 2];

    drop(pipeline);
    drop(lazy);
    let _ = std::fs::remove_dir_all(&dir);
    SweepPoint {
        scholars,
        stream,
        peak_chunk_bytes: totals.peak_chunk_bytes,
        cold_start,
        regen,
        p50,
    }
}

struct ConnPoint {
    conns: usize,
    p50: Duration,
    /// Threads the process gained over the pre-bind baseline while this
    /// many connections were open — must be `io_threads + workers`,
    /// never a function of `conns`.
    extra_threads: usize,
}

/// Live threads in this process, via `/proc/self/task`.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|entries| entries.count())
        .expect("/proc/self/task is readable on Linux")
}

/// Soft RLIMIT_NOFILE, from `/proc/self/limits`.
fn fd_soft_limit() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// Connection counts to sweep. The opt-in point holds both ends of
/// every loopback socket in this one process (client + server = 2 fds
/// per connection), so it is clamped to the fd budget with a printed
/// note rather than failing on EMFILE.
fn conn_sweep_sizes() -> Vec<usize> {
    let mut sizes = CONN_SIZES.to_vec();
    let opt_in = std::env::var("MINARET_CONN_SWEEP")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if opt_in {
        let budget = fd_soft_limit()
            .map(|soft| soft.saturating_sub(512) / 2)
            .unwrap_or(CONN_FULL_SIZE);
        let n = CONN_FULL_SIZE.min(budget);
        if n < CONN_FULL_SIZE {
            println!(
                "conn sweep: clamping the opt-in point from {CONN_FULL_SIZE} to {n} \
                 connections (RLIMIT_NOFILE holds both socket ends in this process)"
            );
        }
        sizes.push(n);
    }
    sizes
}

/// Connection-scaling sweep: hold N idle keep-alive connections open
/// and measure (a) the process thread count — which must stay at
/// `io_threads + workers` regardless of N — and (b) the uncached
/// `/recommend` p50 over a separate live connection, which must not
/// degrade as idle sockets pile up. Synchronization is on the
/// observable open-connections gauge, never sleeps.
fn measure_conn_scaling() -> Vec<ConnPoint> {
    let world = Arc::new(
        WorldGenerator::new(WorldConfig {
            seed: 0xE7,
            ..WorldConfig::sized(SCHOLARS)
        })
        .generate(),
    );
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for mut spec in SourceSpec::all_defaults() {
        spec.latency_micros = LATENCY_MICROS;
        registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
    }
    let telemetry = Telemetry::new();
    let state = AppState::with_registry_and_cache(
        world,
        Arc::new(registry),
        telemetry.clone(),
        None, // no result cache: every sampled request runs the pipeline
    );
    let router = build_router(state.clone());

    let lead = state
        .world
        .scholars()
        .iter()
        .find(|s| !state.world.papers_of(s.id).is_empty())
        .expect("a published scholar exists");
    let keywords: Vec<Value> = lead
        .interests
        .iter()
        .take(3)
        .map(|&t| Value::from(state.world.ontology.label(t)))
        .collect();
    let body_for = |title: &str| {
        Value::object()
            .set("title", title)
            .set("keywords", keywords.clone())
            .set(
                "authors",
                vec![Value::object().set("name", lead.full_name().as_str())],
            )
            .set("target_venue", state.world.venues()[0].name.as_str())
            .to_string()
    };

    // The registry's fan-out pool spawns lazily on the first
    // recommendation, so push one through the router *in process* before
    // taking the thread baseline — otherwise the pool's threads would be
    // billed to the serving layer by the fixed-thread gate below.
    let prime = router.dispatch(&Request {
        method: Method::Post,
        path: "/recommend".into(),
        query: vec![],
        headers: vec![],
        body: body_for("conn sweep pool prime").into_bytes(),
        minor_version: 1,
        deadline: None,
    });
    assert_eq!(prime.status, 200, "pool-priming recommendation failed");
    // Baseline after the pipeline (registry fan-out pool etc.) is up:
    // from here on, every additional thread belongs to the serving
    // layer, which is exactly what the fixed-thread gate measures.
    let baseline_threads = thread_count();
    let server = Server::bind_with(
        "127.0.0.1:0",
        router,
        ServerConfig {
            workers: CONN_WORKERS,
            io_threads: CONN_IO_THREADS,
            keep_alive: KeepAliveConfig {
                max_requests: usize::MAX,
                idle_timeout: None, // idle connections must survive the measurement
            },
            telemetry: telemetry.clone(),
            ..ServerConfig::default()
        },
    )
    .expect("conn-sweep server binds");
    let addr = server.local_addr();

    let open_connections = telemetry.gauge("minaret_http_open_connections", &[]);
    let wait_for_open = |want: usize| {
        let deadline = Instant::now() + Duration::from_secs(120);
        while open_connections.get() != want as i64 {
            assert!(
                Instant::now() < deadline,
                "open-connections gauge stuck at {} (want {want}) — connections shed?",
                open_connections.get()
            );
            thread::yield_now();
        }
    };

    // The measuring connection is itself one open connection.
    let mut probe = TcpStream::connect(addr).expect("probe connects");
    wait_for_open(1);
    // Warm the pipeline's internal caches once so the first sweep point
    // doesn't pay one-off costs the later points skip.
    assert_eq!(
        post_keep_alive(&mut probe, "/recommend", &body_for("conn sweep warmup")),
        200
    );

    let mut points = Vec::new();
    for n in conn_sweep_sizes() {
        let idle: Vec<TcpStream> = (0..n)
            .map(|_| TcpStream::connect(addr).expect("idle connection connects"))
            .collect();
        wait_for_open(n + 1);
        let extra_threads = thread_count() - baseline_threads;

        let mut samples: Vec<Duration> = (0..CONN_SAMPLES)
            .map(|i| {
                let body = body_for(&format!("conn sweep {n} sample {i}"));
                let t = Instant::now();
                let status = post_keep_alive(&mut probe, "/recommend", &body);
                assert_eq!(status, 200, "uncached /recommend failed at {n} conns");
                t.elapsed()
            })
            .collect();
        samples.sort();
        let p50 = samples[CONN_SAMPLES / 2];

        drop(idle);
        wait_for_open(1);
        points.push(ConnPoint {
            conns: n,
            p50,
            extra_threads,
        });
    }
    drop(probe);
    server.shutdown();
    points
}

struct ContentionMeasured {
    threads: Vec<usize>,
    baseline_ops: Vec<f64>,
    sharded_ops: Vec<f64>,
}

/// Thread counts for the contention sweep, overridable via the
/// `MINARET_CONTENTION_THREADS` environment variable (comma-separated,
/// e.g. `MINARET_CONTENTION_THREADS=1,4`).
fn contention_thread_counts() -> Vec<usize> {
    std::env::var("MINARET_CONTENTION_THREADS")
        .ok()
        .map(|raw| {
            raw.split(',')
                .filter_map(|part| part.trim().parse().ok())
                .filter(|&n| (1..=64).contains(&n))
                .collect::<Vec<usize>>()
        })
        .filter(|counts| !counts.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// Throughput (ops/s) of `threads` workers performing distinct-key
/// `get_or_insert_with` calls whose build blocks for
/// [`CONTENTION_BUILD_MICROS`]. A fresh map per run keeps every call
/// on the miss path.
fn contention_ops_per_sec<M, F>(threads: usize, make_map: F) -> f64
where
    M: ConcurrentMap<u64, u64> + Send + Sync + 'static,
    F: Fn() -> M,
{
    let best = min_of(CONTENTION_RUNS, || {
        let map = Arc::new(make_map());
        let start = Arc::new(Barrier::new(threads + 1));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                let start = Arc::clone(&start);
                thread::spawn(move || {
                    start.wait();
                    for i in 0..CONTENTION_OPS {
                        let key = (t * CONTENTION_OPS + i) as u64;
                        let _ = map.get_or_insert_with(key, || {
                            thread::sleep(Duration::from_micros(CONTENTION_BUILD_MICROS));
                            key
                        });
                    }
                })
            })
            .collect();
        start.wait();
        let t0 = Instant::now();
        for handle in handles {
            handle.join().expect("bench worker completes");
        }
        t0.elapsed()
    });
    (threads * CONTENTION_OPS) as f64 / best.as_secs_f64().max(1e-9)
}

/// Lock-contention sweep: single-lock baseline vs the sharded map at
/// each thread count, same workload.
fn measure_contention() -> ContentionMeasured {
    let threads = contention_thread_counts();
    let baseline_ops: Vec<f64> = threads
        .iter()
        .map(|&t| contention_ops_per_sec(t, SingleLockMap::new))
        .collect();
    let sharded_ops: Vec<f64> = threads
        .iter()
        .map(|&t| contention_ops_per_sec(t, ShardedMap::new))
        .collect();
    ContentionMeasured {
        threads,
        baseline_ops,
        sharded_ops,
    }
}

/// Batch-assignment point (E7 assignment addendum): conference scale.
const ASSIGN_SCHOLARS: usize = 10_000;
/// Manuscripts in the measured `assign` batch.
const ASSIGN_MANUSCRIPTS: usize = 50;
/// Reviewers demanded per paper.
const ASSIGN_K: usize = 3;
/// Per-reviewer load ceiling.
const ASSIGN_MAX_LOAD: usize = 8;
/// Allowed batch-solve latency growth over the committed baseline.
/// Wide, like the other wall-clock gates: seconds-scale solves on a
/// shared CI box jitter more than microbenchmarks.
const ASSIGN_REGRESSION_HEADROOM: f64 = 2.0;

struct AssignMeasured {
    elapsed: Duration,
    solved: minaret::assign::BatchAssignment,
}

/// Solves the conference-scale batch once, cold: a 50-manuscript batch
/// over a 10^4-scholar world through the full extract → score → greedy
/// → flow pipeline, then grades it against the world's ground truth.
/// One solve (not min-of-N) — at seconds scale a single run dominates
/// scheduler noise, and re-solving would measure warmed interning.
fn measure_assign() -> AssignMeasured {
    use minaret::assign::{coverage_against_world, manuscript_from_submission, Assigner};

    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(ASSIGN_SCHOLARS)).generate());
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for spec in SourceSpec::all_defaults() {
        registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
    }
    let ontology = Arc::new(minaret::ontology::seed::curated_cs_ontology());
    let manuscripts: Vec<ManuscriptDetails> =
        minaret::synth::SubmissionGenerator::new(&world, 4242)
            .generate_many(ASSIGN_MANUSCRIPTS)
            .iter()
            .map(|sub| manuscript_from_submission(&world, sub))
            .collect();
    let assigner = Assigner::new(Minaret::new(
        Arc::new(registry),
        ontology,
        EditorConfig::default(),
    ));
    let spec = AssignmentSpec::new(ASSIGN_K, ASSIGN_MAX_LOAD);
    let start = Instant::now();
    let mut solved = assigner
        .assign(&manuscripts, &spec)
        .expect("conference-scale batch is feasible");
    let elapsed = start.elapsed();
    solved.quality.coverage_at_k = coverage_against_world(&world, &manuscripts, &solved);
    AssignMeasured { elapsed, solved }
}

/// Warm-path allocation counts per recommendation: `(allocs, bytes)`
/// for a cached registry and for the uncached pipeline default.
#[cfg(feature = "count-allocs")]
fn measure_allocs() -> ((u64, u64), (u64, u64)) {
    use minaret::eval::harness::{EvalContext, ScenarioConfig};

    fn per_rec(cached: bool) -> (u64, u64) {
        let mut scenario = ScenarioConfig::sized(SCHOLARS);
        scenario.source_latency_micros = 0;
        scenario.cached = cached;
        let ctx = EvalContext::build(scenario);
        let sub = ctx.submissions(1, 0xE7).pop().expect("submission");
        let mut manuscript = ctx.manuscript_for(&sub);
        let mut topics = ctx.ontology.topics().map(|t| t.label.clone());
        while manuscript.keywords.len() < 3 {
            let label = topics.next().expect("curated ontology has topics");
            if !manuscript.keywords.contains(&label) {
                manuscript.keywords.push(label);
            }
        }
        // Warm caches, the interner, lazy profile stores, worker pools.
        for _ in 0..2 {
            let _ = ctx.minaret.recommend(&manuscript).unwrap();
        }
        const N: u64 = 5;
        let before = minaret_bench::alloc::snapshot();
        for _ in 0..N {
            let _ = std::hint::black_box(ctx.minaret.recommend(&manuscript).unwrap());
        }
        let after = minaret_bench::alloc::snapshot();
        (
            after.allocs_since(&before) / N,
            after.bytes_since(&before) / N,
        )
    }

    (per_rec(true), per_rec(false))
}

fn main() {
    let record = std::env::args().any(|a| a == "--record");
    let m = measure();
    let speedup = m.per_label.as_secs_f64() / m.batched.as_secs_f64().max(1e-9);
    println!(
        "perf smoke: per_label({LABELS})={:.2} ms  batched({LABELS})={:.2} ms  speedup={speedup:.1}x  extraction={:.2} ms",
        m.per_label.as_secs_f64() * 1e3,
        m.batched.as_secs_f64() * 1e3,
        m.extraction.as_secs_f64() * 1e3,
    );

    #[cfg(feature = "count-allocs")]
    let ((warm_allocs, warm_bytes), (uncached_allocs, uncached_bytes)) = {
        let counts = measure_allocs();
        println!(
            "alloc smoke: warm {} allocs/rec ({} bytes)  uncached {} allocs/rec ({} bytes)",
            counts.0 .0, counts.0 .1, counts.1 .0, counts.1 .1
        );
        counts
    };

    if speedup < MIN_SPEEDUP {
        eprintln!(
            "FAIL: batched retrieval speedup {speedup:.2}x is below the required {MIN_SPEEDUP}x"
        );
        std::process::exit(1);
    }

    let served = measure_serving();
    let cache_speedup = served.uncached.as_secs_f64() / served.cached.as_secs_f64().max(1e-9);
    println!(
        "serving smoke: uncached={:.2} ms  cached={:.3} ms  cache_speedup={cache_speedup:.1}x  throughput={:.0} req/s  hit_rate={:.2}",
        served.uncached.as_secs_f64() * 1e3,
        served.cached.as_secs_f64() * 1e3,
        served.rps,
        served.hit_rate,
    );
    if cache_speedup < CACHE_MIN_SPEEDUP {
        eprintln!(
            "FAIL: served cache-hit speedup {cache_speedup:.2}x is below the required {CACHE_MIN_SPEEDUP}x"
        );
        std::process::exit(1);
    }

    let conn_points = measure_conn_scaling();
    for p in &conn_points {
        println!(
            "conn sweep: idle_conns={}  recommend_p50={:.2} ms  serving_threads={} \
             (io={CONN_IO_THREADS} + workers={CONN_WORKERS})",
            p.conns,
            p.p50.as_secs_f64() * 1e3,
            p.extra_threads,
        );
    }
    // Fixed-thread gate: the serving thread count may never grow with
    // the number of open connections.
    let thread_budget = CONN_IO_THREADS + CONN_WORKERS + CONN_THREAD_SLACK;
    for p in &conn_points {
        if p.extra_threads > thread_budget {
            eprintln!(
                "FAIL: {} serving threads with {} idle connections open exceeds \
                 io_threads + workers + {CONN_THREAD_SLACK} = {thread_budget}",
                p.extra_threads, p.conns
            );
            std::process::exit(1);
        }
    }
    // Idle-connections-are-free gate: the uncached recommend p50 must
    // stay flat as idle keep-alive sockets pile up. Same-run comparison
    // against the smallest point.
    let conn_small = conn_points.first().expect("conn sweep is non-empty");
    for p in &conn_points[1..] {
        let ratio = p.p50.as_secs_f64() / conn_small.p50.as_secs_f64().max(1e-9);
        if ratio > CONN_FLATNESS_HEADROOM {
            eprintln!(
                "FAIL: recommend p50 with {} idle connections ({:.2} ms) is {ratio:.2}x the \
                 p50 with {} ({:.2} ms); budget {CONN_FLATNESS_HEADROOM}x",
                p.conns,
                p.p50.as_secs_f64() * 1e3,
                conn_small.conns,
                conn_small.p50.as_secs_f64() * 1e3,
            );
            std::process::exit(1);
        }
    }
    println!(
        "OK: serving threads fixed at <= {thread_budget} and recommend p50 flat from {} to {} \
         idle connections",
        conn_small.conns,
        conn_points.last().expect("conn sweep is non-empty").conns,
    );

    let store = measure_store();
    println!(
        "store smoke: put={} us/op  get={} us/op  recovery={} ms  cold_start={:.0} ms  regen={:.0} ms",
        store.put_micros,
        store.get_micros,
        store.recovery_millis,
        store.cold_start.as_secs_f64() * 1e3,
        store.regen.as_secs_f64() * 1e3,
    );
    if store.cold_start >= store.regen {
        eprintln!(
            "FAIL: snapshot-served cold start ({:?}) is not faster than regenerating the \
             {STORE_SCHOLARS}-scholar world ({:?})",
            store.cold_start, store.regen
        );
        std::process::exit(1);
    }

    let sweep: Vec<SweepPoint> = sweep_sizes().into_iter().map(measure_world_point).collect();
    for p in &sweep {
        println!(
            "world sweep: n={}  stream={:.0} ms ({:.0} scholars/s)  peak_chunk={} KiB  \
             cold_start={:.0} ms  regen={:.0} ms  recommend_p50={:.1} ms",
            p.scholars,
            p.stream.as_secs_f64() * 1e3,
            p.scholars as f64 / p.stream.as_secs_f64().max(1e-9),
            p.peak_chunk_bytes / 1024,
            p.cold_start.as_secs_f64() * 1e3,
            p.regen.as_secs_f64() * 1e3,
            p.p50.as_secs_f64() * 1e3,
        );
    }
    // Flat-latency gate: the page cap must keep the uncached recommend
    // p50 from growing with world size.
    let small = sweep.first().expect("sweep is non-empty");
    let large = sweep
        .iter()
        .find(|p| p.scholars == *SWEEP_SIZES.last().expect("sweep sizes are non-empty"))
        .expect("largest default sweep point measured");
    let flatness = large.p50.as_secs_f64() / small.p50.as_secs_f64().max(1e-9);
    if flatness > SWEEP_FLATNESS_HEADROOM {
        eprintln!(
            "FAIL: uncached recommend p50 at {} scholars ({:.1} ms) is {flatness:.2}x the p50 at \
             {} scholars ({:.1} ms); budget {SWEEP_FLATNESS_HEADROOM}x",
            large.scholars,
            large.p50.as_secs_f64() * 1e3,
            small.scholars,
            small.p50.as_secs_f64() * 1e3,
        );
        std::process::exit(1);
    }
    println!(
        "OK: uncached recommend p50 stays flat from {} to {} scholars ({flatness:.2}x <= \
         {SWEEP_FLATNESS_HEADROOM}x)",
        small.scholars, large.scholars
    );
    // Cold-start gate: serving a streamed snapshot lazily must beat
    // regenerating the world at the largest default size.
    if large.cold_start >= large.regen {
        eprintln!(
            "FAIL: lazy cold start at {} scholars ({:?}) is not faster than regenerating the \
             world ({:?})",
            large.scholars, large.cold_start, large.regen
        );
        std::process::exit(1);
    }
    println!(
        "OK: lazy cold start beats regeneration at {} scholars ({:.0} ms < {:.0} ms)",
        large.scholars,
        large.cold_start.as_secs_f64() * 1e3,
        large.regen.as_secs_f64() * 1e3,
    );

    let contention = measure_contention();
    for (i, &t) in contention.threads.iter().enumerate() {
        println!(
            "contention smoke: threads={t}  baseline={:.0} ops/s  sharded={:.0} ops/s  ratio={:.2}x",
            contention.baseline_ops[i],
            contention.sharded_ops[i],
            contention.sharded_ops[i] / contention.baseline_ops[i].max(1e-9),
        );
    }
    // Same-run separation gate: at 4 threads the sharded map must beat
    // the single global lock outright. Both sides are measured in this
    // process moments apart, so no cross-machine headroom is needed.
    if let Some(i) = contention.threads.iter().position(|&t| t == 4) {
        if contention.sharded_ops[i] <= contention.baseline_ops[i] {
            eprintln!(
                "FAIL: sharded map ({:.0} ops/s) did not beat the single-lock baseline \
                 ({:.0} ops/s) at 4 threads",
                contention.sharded_ops[i], contention.baseline_ops[i]
            );
            std::process::exit(1);
        }
    }

    let assign = measure_assign();
    let aq = &assign.solved.quality;
    println!(
        "assign smoke: batch of {ASSIGN_MANUSCRIPTS} over {ASSIGN_SCHOLARS} scholars = {:.0} ms  \
         mean_relevance={:.4}  coverage={:.4}  load_gini={:.4}  flow={:.3} (greedy {:.3}, {} augmentations)",
        assign.elapsed.as_secs_f64() * 1e3,
        aq.mean_relevance,
        aq.coverage_at_k.unwrap_or(0.0),
        aq.load_gini,
        assign.solved.total_score,
        assign.solved.greedy_total,
        assign.solved.augmentations,
    );
    // Same-run refinement gate: the flow solution may never total below
    // the greedy seed it started from.
    if assign.solved.total_score + 1e-9 < assign.solved.greedy_total {
        eprintln!(
            "FAIL: flow assignment total {:.6} fell below the greedy seed {:.6}",
            assign.solved.total_score, assign.solved.greedy_total
        );
        std::process::exit(1);
    }

    if record {
        #[allow(unused_mut)]
        let mut json = Value::object()
            .set("scholars", SCHOLARS)
            .set("labels", LABELS)
            .set("source_latency_micros", LATENCY_MICROS)
            .set("runs", RUNS)
            .set("per_label_micros", micros(m.per_label))
            .set("batched_micros", micros(m.batched))
            .set("speedup", speedup)
            .set("extraction_micros", micros(m.extraction))
            .set("served_uncached_micros", micros(served.uncached))
            .set("served_cached_micros", micros(served.cached))
            .set("served_cache_speedup", cache_speedup)
            .set("served_rps", served.rps)
            .set("served_cache_hit_rate", served.hit_rate)
            .set("store_scholars", STORE_SCHOLARS)
            .set("store_put_micros", store.put_micros)
            .set("store_get_micros", store.get_micros)
            .set("store_recovery_millis", store.recovery_millis)
            .set(
                "store_cold_start_millis",
                store.cold_start.as_millis() as u64,
            )
            .set("store_regen_millis", store.regen.as_millis() as u64)
            .set("contention_build_micros", CONTENTION_BUILD_MICROS)
            .set("contention_ops_per_thread", CONTENTION_OPS);
        for (i, &t) in contention.threads.iter().enumerate() {
            json = json
                .set(
                    &format!("contention_baseline_{t}t_ops"),
                    contention.baseline_ops[i],
                )
                .set(
                    &format!("contention_sharded_{t}t_ops"),
                    contention.sharded_ops[i],
                );
        }
        for p in &conn_points {
            let n = p.conns;
            json = json
                .set(&format!("conn_{n}_p50_micros"), micros(p.p50))
                .set(&format!("conn_{n}_threads"), p.extra_threads);
        }
        json = json
            .set("sweep_manuscripts", SWEEP_MANUSCRIPTS)
            .set("sweep_max_hits", SWEEP_MAX_HITS)
            .set("sweep_recommend_flatness", flatness)
            .set("assign_scholars", ASSIGN_SCHOLARS)
            .set("assign_manuscripts", ASSIGN_MANUSCRIPTS)
            .set("assign_reviewers_per_paper", ASSIGN_K)
            .set("assign_max_load", ASSIGN_MAX_LOAD)
            .set("assign_batch50_millis", assign.elapsed.as_millis() as u64)
            .set("assign_quality_mean_relevance", aq.mean_relevance)
            .set("assign_quality_coverage", aq.coverage_at_k.unwrap_or(0.0))
            .set("assign_quality_load_gini", aq.load_gini)
            .set("assign_greedy_total", assign.solved.greedy_total)
            .set("assign_flow_total", assign.solved.total_score)
            .set("assign_flow_augmentations", assign.solved.augmentations)
            .set("assign_pool_size", assign.solved.pool_size)
            .set("assign_eligible_pairs", assign.solved.eligible_pairs);
        for p in &sweep {
            let n = p.scholars;
            json = json
                .set(
                    &format!("world_{n}_stream_millis"),
                    p.stream.as_millis() as u64,
                )
                .set(
                    &format!("world_{n}_gen_rate"),
                    n as f64 / p.stream.as_secs_f64().max(1e-9),
                )
                .set(&format!("world_{n}_peak_chunk_bytes"), p.peak_chunk_bytes)
                .set(
                    &format!("world_{n}_cold_start_millis"),
                    p.cold_start.as_millis() as u64,
                )
                .set(
                    &format!("world_{n}_regen_millis"),
                    p.regen.as_millis() as u64,
                )
                .set(&format!("world_{n}_recommend_p50_micros"), micros(p.p50));
        }
        #[cfg(feature = "count-allocs")]
        {
            json = json
                .set("warm_allocs_per_rec", warm_allocs)
                .set("warm_alloc_bytes_per_rec", warm_bytes)
                .set("uncached_warm_allocs_per_rec", uncached_allocs)
                .set("uncached_warm_alloc_bytes_per_rec", uncached_bytes);
        }
        std::fs::write(BASELINE_PATH, json.to_pretty_string() + "\n")
            .expect("baseline file is writable");
        println!("recorded baseline to {BASELINE_PATH}");
        return;
    }

    let raw = std::fs::read_to_string(BASELINE_PATH).unwrap_or_else(|e| {
        eprintln!("FAIL: no committed baseline at {BASELINE_PATH} ({e}); run with --record first");
        std::process::exit(1);
    });
    let baseline = parse(&raw).expect("baseline parses as JSON");
    let base_extraction = baseline
        .get("extraction_micros")
        .and_then(|v| v.as_u64())
        .expect("baseline has extraction_micros");
    let budget = base_extraction as f64 * REGRESSION_HEADROOM;
    let measured = micros(m.extraction) as f64;
    if measured > budget {
        eprintln!(
            "FAIL: extraction {measured:.0} us exceeds baseline {base_extraction} us by more than {:.0}% \
             (budget {budget:.0} us)",
            (REGRESSION_HEADROOM - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "OK: extraction {measured:.0} us within {:.0}% of baseline {base_extraction} us",
        (REGRESSION_HEADROOM - 1.0) * 100.0
    );

    // Cache-hit-path regression gate: the served hit latency must stay
    // near the committed baseline.
    let base_cached = baseline
        .get("served_cached_micros")
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| {
            eprintln!("FAIL: baseline {BASELINE_PATH} lacks served_cached_micros; re-record");
            std::process::exit(1);
        });
    let served_budget = base_cached as f64 * SERVED_REGRESSION_HEADROOM;
    let served_measured = micros(served.cached) as f64;
    if served_measured > served_budget {
        eprintln!(
            "FAIL: served cache hit {served_measured:.0} us exceeds baseline {base_cached} us \
             by more than {:.0}% (budget {served_budget:.0} us)",
            (SERVED_REGRESSION_HEADROOM - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "OK: served cache hit {served_measured:.0} us within {:.0}% of baseline {base_cached} us",
        (SERVED_REGRESSION_HEADROOM - 1.0) * 100.0
    );

    // Store regression gates: each metric may grow at most
    // STORE_REGRESSION_HEADROOM× over the committed baseline, plus a
    // small additive slack so a 1-unit baseline doesn't gate on noise.
    for (field, measured, slack) in [
        ("store_put_micros", store.put_micros, 25),
        ("store_get_micros", store.get_micros, 25),
        ("store_recovery_millis", store.recovery_millis, 50),
    ] {
        let Some(base) = baseline.get(field).and_then(|v| v.as_u64()) else {
            eprintln!("FAIL: baseline {BASELINE_PATH} lacks {field}; re-record");
            std::process::exit(1);
        };
        let budget = base as f64 * STORE_REGRESSION_HEADROOM + slack as f64;
        if measured as f64 > budget {
            eprintln!(
                "FAIL: {field} {measured} exceeds baseline {base} by more than {:.0}% (budget {budget:.0})",
                (STORE_REGRESSION_HEADROOM - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        println!("OK: {field} {measured} within budget {budget:.0} (baseline {base})");
    }

    // Assignment-latency regression gate: the conference-scale batch
    // solve may grow at most ASSIGN_REGRESSION_HEADROOM× over the
    // committed baseline.
    let Some(base_assign) = baseline
        .get("assign_batch50_millis")
        .and_then(|v| v.as_u64())
    else {
        eprintln!("FAIL: baseline {BASELINE_PATH} lacks assign_batch50_millis; re-record");
        std::process::exit(1);
    };
    let assign_budget = base_assign as f64 * ASSIGN_REGRESSION_HEADROOM;
    let assign_measured = assign.elapsed.as_millis() as f64;
    if assign_measured > assign_budget {
        eprintln!(
            "FAIL: batch assign {assign_measured:.0} ms exceeds baseline {base_assign} ms by \
             more than {:.0}% (budget {assign_budget:.0} ms)",
            (ASSIGN_REGRESSION_HEADROOM - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "OK: batch assign {assign_measured:.0} ms within {:.0}% of baseline {base_assign} ms",
        (ASSIGN_REGRESSION_HEADROOM - 1.0) * 100.0
    );

    // Uncontended-path gate: single-thread sharded throughput must stay
    // within CONTENTION_REGRESSION_HEADROOM of the committed baseline —
    // sharding buys contended scaling, it must not tax the common case.
    if let Some(i) = contention.threads.iter().position(|&t| t == 1) {
        let Some(base) = baseline
            .get("contention_sharded_1t_ops")
            .and_then(|v| v.as_f64())
        else {
            eprintln!("FAIL: baseline {BASELINE_PATH} lacks contention_sharded_1t_ops; re-record");
            std::process::exit(1);
        };
        let floor = base / CONTENTION_REGRESSION_HEADROOM;
        let measured = contention.sharded_ops[i];
        if measured < floor {
            eprintln!(
                "FAIL: single-thread sharded throughput {measured:.0} ops/s fell more than \
                 {:.0}% below baseline {base:.0} ops/s (floor {floor:.0})",
                (CONTENTION_REGRESSION_HEADROOM - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "OK: single-thread sharded throughput {measured:.0} ops/s within {:.0}% of baseline {base:.0}",
            (CONTENTION_REGRESSION_HEADROOM - 1.0) * 100.0
        );
    }

    #[cfg(feature = "count-allocs")]
    for (field, measured) in [
        ("warm_allocs_per_rec", warm_allocs),
        ("uncached_warm_allocs_per_rec", uncached_allocs),
    ] {
        let Some(base) = baseline.get(field).and_then(|v| v.as_u64()) else {
            eprintln!(
                "FAIL: baseline {BASELINE_PATH} lacks {field}; re-record with --features count-allocs"
            );
            std::process::exit(1);
        };
        let budget = base as f64 * ALLOC_REGRESSION_HEADROOM;
        if measured as f64 > budget {
            eprintln!(
                "FAIL: {field} {measured} exceeds baseline {base} by more than {:.0}% (budget {budget:.0})",
                (ALLOC_REGRESSION_HEADROOM - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "OK: {field} {measured} within {:.0}% of baseline {base}",
            (ALLOC_REGRESSION_HEADROOM - 1.0) * 100.0
        );
    }
    #[cfg(feature = "count-allocs")]
    let _ = (warm_bytes, uncached_bytes);
}
