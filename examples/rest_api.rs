//! The RESTful API end to end: starts the server in-process on an
//! ephemeral port and drives the demo workflow over real HTTP —
//! `/health`, `/expand`, `/verify-authors`, `/recommend`.
//!
//! ```text
//! cargo run --release --example rest_api
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use minaret::json::{parse, Value};
use minaret_server::{build_router, AppState};

fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let payload = match body {
        Some(b) => format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{b}",
            b.len()
        ),
        None => format!("{method} {path} HTTP/1.1\r\nHost: localhost\r\n\r\n"),
    };
    stream.write_all(payload.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let json_body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .filter(|b| !b.is_empty())
        .map(|b| parse(b).expect("JSON body"))
        .unwrap_or(Value::Null);
    (status, json_body)
}

fn main() {
    let state: Arc<AppState> = AppState::demo(800, 7);
    let scholar = state
        .world
        .scholars()
        .iter()
        .find(|s| !state.world.papers_of(s.id).is_empty())
        .expect("active scholar");
    let keywords: Vec<String> = scholar
        .interests
        .iter()
        .take(2)
        .map(|&t| state.world.ontology.label(t).to_string())
        .collect();
    let venue = state.world.venues()[0].name.clone();
    let name = scholar.full_name();

    let server = minaret::http::Server::bind("127.0.0.1:0", build_router(state), 4).expect("bind");
    let addr = server.local_addr();
    println!("serving on http://{addr}\n");

    let (status, health) = http(addr, "GET", "/health", None);
    println!("GET /health -> {status}\n{}\n", health.to_pretty_string());

    let (status, expansion) = http(addr, "GET", "/expand?keyword=RDF", None);
    println!(
        "GET /expand?keyword=RDF -> {status}\n{}\n",
        expansion.to_pretty_string()
    );

    let verify_body = Value::object()
        .set("authors", vec![Value::object().set("name", name.as_str())])
        .set(
            "keywords",
            keywords
                .iter()
                .map(|k| Value::from(k.as_str()))
                .collect::<Vec<_>>(),
        )
        .to_string();
    let (status, verified) = http(addr, "POST", "/verify-authors", Some(&verify_body));
    println!(
        "POST /verify-authors -> {status}\n{}\n",
        verified.to_pretty_string()
    );

    let recommend_body = Value::object()
        .set("title", "An HTTP-submitted manuscript")
        .set(
            "keywords",
            keywords
                .iter()
                .map(|k| Value::from(k.as_str()))
                .collect::<Vec<_>>(),
        )
        .set("authors", vec![Value::object().set("name", name.as_str())])
        .set("target_venue", venue.as_str())
        .set(
            "config",
            Value::object()
                .set("max_recommendations", 5u32)
                .set("coi_affiliation_level", "university"),
        )
        .to_string();
    let (status, recommendations) = http(addr, "POST", "/recommend", Some(&recommend_body));
    println!(
        "POST /recommend -> {status}\n{}\n",
        recommendations.to_pretty_string()
    );

    server.shutdown();
    println!("server shut down cleanly");
}
