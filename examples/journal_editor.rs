//! The full demo scenario of §3, as a journal editor would drive it:
//! enter manuscript details → verify author identities (Figure 4) →
//! extract → filter (with COI explanations) → rank with a custom weight
//! profile → inspect the score breakdown (Figure 5).
//!
//! ```text
//! cargo run --release --example journal_editor
//! ```

use std::sync::Arc;

use minaret::core::filter::FilterReason;
use minaret::prelude::*;

fn main() {
    let world = Arc::new(
        WorldGenerator::new(WorldConfig {
            name_collision_rate: 0.15, // make identity verification earn its keep
            ..WorldConfig::sized(1500)
        })
        .generate(),
    );
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for spec in SourceSpec::all_defaults() {
        registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
    }
    let registry = Arc::new(registry);

    // An editor who cares most about topical fit and recent activity,
    // wants experienced reviewers, and excludes superstars who won't
    // answer (citation cap) — §1's "quite busy" high-profile reviewer.
    let config = EditorConfig {
        weights: RankingWeights {
            coverage: 0.40,
            impact: 0.10,
            recency: 0.25,
            experience: 0.15,
            familiarity: 0.10,
            responsiveness: 0.0,
        },
        expertise: ExpertiseConstraints {
            min_reviews: Some(2),
            max_citations: Some(15_000),
            ..Default::default()
        },
        coi: CoiConfig {
            affiliation_level: AffiliationMatchLevel::University,
            ..Default::default()
        },
        max_recommendations: 10,
        ..Default::default()
    };
    let minaret = Minaret::new(
        registry.clone(),
        Arc::new(minaret::ontology::seed::curated_cs_ontology()),
        config,
    );

    // The manuscript: two authors from the same lab.
    let lead = world
        .scholars()
        .iter()
        .find(|s| world.papers_of(s.id).len() >= 3)
        .expect("prolific scholar exists");
    let coauthor_id = world.coauthors_of(lead.id).first().copied();
    let inst = world.institution(lead.current_affiliation());
    let mut authors = vec![AuthorInput::named(lead.full_name())
        .with_affiliation(inst.name.clone())
        .with_country(inst.country.clone())];
    if let Some(co) = coauthor_id {
        let c = world.scholar(co);
        let ci = world.institution(c.current_affiliation());
        authors.push(
            AuthorInput::named(c.full_name())
                .with_affiliation(ci.name.clone())
                .with_country(ci.country.clone()),
        );
    }
    let manuscript = ManuscriptDetails {
        title: "Adaptive Techniques for Large-Scale Scholarly Data".into(),
        keywords: lead
            .interests
            .iter()
            .take(3)
            .map(|&t| world.ontology.label(t).to_string())
            .collect(),
        authors,
        target_venue: world.venues()[0].name.clone(),
    };

    println!("=== Step 1: manuscript details (Figure 3) ===");
    println!("title:    {}", manuscript.title);
    println!("keywords: {}", manuscript.keywords.join(", "));
    for a in &manuscript.authors {
        println!(
            "author:   {} — {}",
            a.name,
            a.affiliation.as_deref().unwrap_or("-")
        );
    }
    println!("target:   {}\n", manuscript.target_venue);

    println!("=== Step 2: author identity verification (Figure 4) ===");
    let resolver = IdentityResolver::new(&registry);
    for a in &manuscript.authors {
        let candidates = resolver.candidates(&AuthorQuery {
            name: a.name.clone(),
            affiliation: a.affiliation.clone(),
            country: a.country.clone(),
            context_keywords: manuscript.keywords.clone(),
        });
        println!("{} -> {} candidate profile(s)", a.name, candidates.len());
        for (i, m) in candidates.iter().take(3).enumerate() {
            println!(
                "   {}. {} @ {} [score {:.2}, sources: {}]",
                i + 1,
                m.candidate.display_name,
                m.candidate.affiliation.as_deref().unwrap_or("?"),
                m.score,
                m.candidate
                    .sources
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            );
        }
    }

    println!("\n=== Step 3: extraction, filtering, ranking ===");
    let report = minaret.recommend(&manuscript).expect("pipeline succeeds");
    println!(
        "retrieved {} candidates; removed {}:",
        report.candidates_retrieved,
        report.filtered_out.len()
    );
    let mut coi = 0;
    let mut threshold = 0;
    let mut expertise = 0;
    for (_, reason) in &report.filtered_out {
        match reason {
            FilterReason::ConflictOfInterest(_) => coi += 1,
            FilterReason::KeywordScoreBelowThreshold { .. } => threshold += 1,
            FilterReason::ExpertiseConstraint => expertise += 1,
            FilterReason::NotOnProgrammeCommittee => {}
        }
    }
    println!("  - conflict of interest: {coi}");
    println!("  - keyword score below threshold: {threshold}");
    println!("  - expertise constraints: {expertise}");
    // Show a concrete COI explanation, the way the demo UI would.
    if let Some((cand, FilterReason::ConflictOfInterest(verdict))) = report
        .filtered_out
        .iter()
        .find(|(_, r)| matches!(r, FilterReason::ConflictOfInterest(_)))
    {
        println!(
            "  e.g. {} removed because {:?}",
            cand.merged.display_name, verdict.reasons[0]
        );
    }

    println!("\n=== Step 4: ranked recommendations (Figure 5) ===");
    println!("{}", report.render_table());
    if let Some(top) = report.recommendations.first() {
        println!("score drill-down for #1 {}:", top.name);
        println!(
            "  coverage {:.3} | impact {:.3} | recency {:.3} | experience {:.3} | familiarity {:.3}",
            top.breakdown.coverage,
            top.breakdown.impact,
            top.breakdown.recency,
            top.breakdown.experience,
            top.breakdown.familiarity
        );
        println!(
            "  matched: {}",
            top.matched_keywords
                .iter()
                .map(|(k, s)| format!("{k} ({s:.2})"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}
