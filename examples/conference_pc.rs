//! Conference-mode integration (§3 of the paper): the same manuscript,
//! first against the open journal universe, then restricted to a
//! programme committee — "only candidate reviewers who belong to the
//! programme committee are retained".
//!
//! ```text
//! cargo run --release --example conference_pc
//! ```

use std::sync::Arc;

use minaret::prelude::*;

fn main() {
    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(1200)).generate());
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for spec in SourceSpec::all_defaults() {
        registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
    }
    let registry = Arc::new(registry);
    let ontology = Arc::new(minaret::ontology::seed::curated_cs_ontology());

    let lead = world
        .scholars()
        .iter()
        .find(|s| s.interests.len() >= 2 && !world.papers_of(s.id).is_empty())
        .expect("active scholar");
    let manuscript = ManuscriptDetails {
        title: "Reviewer Assignment under a Closed Committee".into(),
        keywords: lead
            .interests
            .iter()
            .take(3)
            .map(|&t| world.ontology.label(t).to_string())
            .collect(),
        authors: vec![AuthorInput::named(lead.full_name())],
        target_venue: world
            .venues()
            .iter()
            .find(|v| v.kind == minaret::synth::VenueKind::Conference)
            .map(|v| v.name.clone())
            .unwrap_or_else(|| world.venues()[0].name.clone()),
    };

    // --- Journal mode: open reviewer universe -------------------------
    let journal = Minaret::new(registry.clone(), ontology.clone(), EditorConfig::default());
    let open = journal.recommend(&manuscript).expect("journal mode");
    println!("=== journal mode (open universe) ===");
    println!("{}", open.render_table());

    // --- Conference mode: a PC drawn from the open top list ------------
    // (in reality the PC is fixed by the chairs; we take every second
    // name so the restriction's effect is visible)
    let pc: Vec<String> = open
        .recommendations
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, r)| r.name.clone())
        .collect();
    println!("programme committee ({} members):", pc.len());
    for name in &pc {
        println!("  - {name}");
    }

    let conference = Minaret::new(
        registry,
        ontology,
        EditorConfig {
            pc_members: Some(pc),
            ..Default::default()
        },
    );
    let restricted = conference.recommend(&manuscript).expect("conference mode");
    println!("\n=== conference mode (PC members only) ===");
    println!("{}", restricted.render_table());
    let rejected = restricted
        .filtered_out
        .iter()
        .filter(|(_, r)| {
            matches!(
                r,
                minaret::core::filter::FilterReason::NotOnProgrammeCommittee
            )
        })
        .count();
    println!("candidates rejected for not being on the PC: {rejected}");
}
