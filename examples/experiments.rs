//! Experiment driver: regenerates every table/figure in `DESIGN.md`'s
//! experiment index and prints the reports recorded in `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release --example experiments            # run everything
//! cargo run --release --example experiments -- f1 e4   # run a subset
//! ```

use minaret::eval::experiments as exp;

fn main() {
    let requested: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let all = requested.is_empty();
    let want = |id: &str| all || requested.iter().any(|r| r == id);
    let mut ran = 0;

    if want("f1") {
        println!("{}", exp::run_f1().report);
        ran += 1;
    }
    if want("f2") {
        println!("{}", exp::run_f2(1000, 8).report);
        ran += 1;
    }
    if want("f3") {
        println!("{}", exp::run_f3().report);
        ran += 1;
    }
    if want("f4") {
        println!(
            "{}",
            exp::run_f4(600, &[0.0, 0.1, 0.2, 0.4, 0.6], 60).report
        );
        ran += 1;
    }
    if want("f5") {
        println!("{}", exp::run_f5(1000).report);
        ran += 1;
    }
    if want("e1") {
        println!("{}", exp::run_e1().report);
        ran += 1;
    }
    if want("e2") {
        println!("{}", exp::run_e2().report);
        ran += 1;
    }
    if want("e3") {
        println!("{}", exp::run_e3(600, 10).report);
        ran += 1;
    }
    if want("e4") {
        println!(
            "{}",
            exp::run_e4(exp::E4Config {
                scholars: 600,
                manuscripts: 15,
                k: 10,
            })
            .report
        );
        ran += 1;
    }
    if want("e5") {
        println!("{}", exp::run_e5(500, 8).report);
        ran += 1;
    }
    if want("e6") {
        println!("{}", exp::run_e6(500, 500, 0.05).report);
        ran += 1;
    }
    if want("e7") {
        println!("{}", exp::run_e7(&[500, 1000, 2000, 5000], 4).report);
        ran += 1;
    }
    if want("e7a") {
        println!("{}", exp::run_e7_addendum(500, 6).report);
        ran += 1;
    }
    if want("e8") {
        println!("{}", exp::run_e8(800).report);
        ran += 1;
    }
    if want("e9") {
        println!("{}", exp::run_e9(500, 10).report);
        ran += 1;
    }
    if want("e10") {
        println!("{}", exp::run_e10(600, 80).report);
        ran += 1;
    }

    if ran == 0 {
        eprintln!(
            "unknown experiment id(s) {:?}; valid: f1 f2 f3 f4 f5 e1 e2 e3 e4 e5 e6 e7 e7a e8 e9 e10",
            requested
        );
        std::process::exit(2);
    }
}
