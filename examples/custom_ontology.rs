//! Bring-your-own ontology: load a CSO-style CSV export (the format the
//! paper downloads from cso.kmi.open.ac.uk) and run the recommendation
//! pipeline against it instead of the built-in curated ontology.
//!
//! ```text
//! cargo run --release --example custom_ontology [path/to/cso.csv]
//! ```
//!
//! Without an argument, an embedded mini-export is used.

use std::sync::Arc;

use minaret::ontology::io::parse_cso_csv;
use minaret::prelude::*;

const EMBEDDED_SAMPLE: &str = r#"
# A miniature CSO-style export (subject,relation,object).
"<https://cso.kmi.open.ac.uk/topics/computer_science>","<https://cso.kmi.open.ac.uk/schema/cso#superTopicOf>","<https://cso.kmi.open.ac.uk/topics/databases>"
"<https://cso.kmi.open.ac.uk/topics/computer_science>","<https://cso.kmi.open.ac.uk/schema/cso#superTopicOf>","<https://cso.kmi.open.ac.uk/topics/semantic_web>"
"<https://cso.kmi.open.ac.uk/topics/semantic_web>","<https://cso.kmi.open.ac.uk/schema/cso#superTopicOf>","<https://cso.kmi.open.ac.uk/topics/rdf>"
"<https://cso.kmi.open.ac.uk/topics/semantic_web>","<https://cso.kmi.open.ac.uk/schema/cso#superTopicOf>","<https://cso.kmi.open.ac.uk/topics/sparql>"
"<https://cso.kmi.open.ac.uk/topics/semantic_web>","<https://cso.kmi.open.ac.uk/schema/cso#superTopicOf>","<https://cso.kmi.open.ac.uk/topics/linked_open_data>"
"<https://cso.kmi.open.ac.uk/topics/rdf>","<https://cso.kmi.open.ac.uk/schema/cso#relatedEquivalent>","<https://cso.kmi.open.ac.uk/topics/sparql>"
"<https://cso.kmi.open.ac.uk/topics/rdf>","<https://cso.kmi.open.ac.uk/schema/cso#relatedEquivalent>","<https://cso.kmi.open.ac.uk/topics/linked_open_data>"
"<https://cso.kmi.open.ac.uk/topics/databases>","<https://cso.kmi.open.ac.uk/schema/cso#superTopicOf>","<https://cso.kmi.open.ac.uk/topics/query_processing>"
"<https://cso.kmi.open.ac.uk/topics/resource_description_framework>","<https://cso.kmi.open.ac.uk/schema/cso#preferentialEquivalent>","<https://cso.kmi.open.ac.uk/topics/rdf>"
"#;

fn main() {
    let csv = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => EMBEDDED_SAMPLE.to_string(),
    };
    let (ontology, report) = parse_cso_csv(&csv).expect("CSV parses");
    println!(
        "loaded ontology: {} topics, {} hierarchy edges, {} related edges, {} aliases, {} rows skipped",
        ontology.len(),
        report.super_edges,
        report.related_edges,
        report.aliases,
        report.skipped.len()
    );
    for (line, reason) in report.skipped.iter().take(5) {
        println!("  skipped line {line}: {reason}");
    }

    // Expansion against the loaded ontology (the paper's RDF example).
    let expander = KeywordExpander::with_defaults(&ontology);
    if let Ok(expansion) = expander.expand("rdf") {
        println!("\nexpansion of \"rdf\" on the loaded ontology:");
        for e in &expansion {
            println!("  {:<24} {:.3} ({} hops)", e.label, e.score, e.hops);
        }
    }

    // The full pipeline runs unchanged against the custom ontology —
    // generate the world against it so scholars register its topics.
    let ontology = Arc::new(ontology);
    let world =
        Arc::new(WorldGenerator::new(WorldConfig::sized(600)).generate_with((*ontology).clone()));
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for spec in SourceSpec::all_defaults() {
        registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
    }
    let minaret = Minaret::new(
        Arc::new(registry),
        ontology.clone(),
        EditorConfig::default(),
    );
    let lead = world
        .scholars()
        .iter()
        .find(|s| !world.papers_of(s.id).is_empty())
        .expect("someone published");
    let manuscript = ManuscriptDetails {
        title: "A manuscript matched against a custom ontology".into(),
        keywords: lead
            .interests
            .iter()
            .take(3)
            .map(|&t| world.ontology.label(t).to_string())
            .collect(),
        authors: vec![AuthorInput::named(lead.full_name())],
        target_venue: world.venues()[0].name.clone(),
    };
    match minaret.recommend(&manuscript) {
        Ok(report) => {
            println!("\nrecommendations under the custom ontology:");
            print!("{}", report.render_table());
        }
        Err(e) => println!("\npipeline: {e}"),
    }
}
