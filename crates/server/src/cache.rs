//! TTL'd recommendation result cache.
//!
//! `/recommend` is the expensive route: every uncached call runs the
//! full three-phase pipeline (fan-out, disambiguation, filter, rank).
//! Editors iterating on a submission re-ask the same question, so the
//! serving layer keys finished **response bytes** by a canonical
//! fingerprint of (manuscript, editor config) and serves repeats
//! without touching Phases 1–3. Storing the serialized bytes — not the
//! report — is what makes the hit path byte-identical to the miss path.
//!
//! The cache is **sharded**: each shard is an independent
//! `Mutex<map + FIFO order>`, selected by the high bits of the
//! fingerprint's avalanche hash. Requests for different manuscripts
//! almost never touch the same lock, and no operation other than the
//! aggregate ones ([`ResultCache::len`], [`ResultCache::invalidate_all`])
//! visits more than one shard. TTL expiry (evict-on-read) and FIFO
//! capacity are enforced **per shard** — the configured capacity is
//! split evenly across shards.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use minaret_concurrent::stable_hash;
use minaret_core::{EditorConfig, ManuscriptDetails};
use minaret_scholarly::{Clock, SystemClock};
use minaret_telemetry::Telemetry;
use parking_lot::Mutex;

/// Default shard count: comfortably above the admission controller's
/// worker count so concurrent distinct requests rarely collide.
const DEFAULT_SHARDS: usize = 8;

struct Entry {
    body: Arc<Vec<u8>>,
    expires_at_micros: u64,
}

#[derive(Default)]
struct CacheShard {
    map: HashMap<u64, Entry>,
    /// Insertion order for FIFO eviction at per-shard capacity.
    order: VecDeque<u64>,
}

/// A TTL'd, capacity-bounded, sharded cache of serialized `/recommend`
/// bodies.
///
/// Reports hit/miss/eviction/invalidation counters and an entry gauge
/// to telemetry. Time comes from an injectable [`Clock`], so expiry is
/// testable with a simulated clock instead of wall-time sleeps. Shard
/// placement is a pure function of the key ([`ResultCache::shard_of`]),
/// so eviction tests can target a chosen shard deterministically.
pub struct ResultCache {
    ttl_micros: u64,
    capacity: usize,
    shift: u32,
    shards: Box<[Mutex<CacheShard>]>,
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ResultCache(ttl {}us, cap {}, {} shards, {} entries)",
            self.ttl_micros,
            self.capacity,
            self.shards.len(),
            self.len()
        )
    }
}

impl ResultCache {
    /// A cache holding at most `capacity` responses (split evenly
    /// across the default shard count), each valid for `ttl_micros`
    /// after insertion.
    pub fn new(ttl_micros: u64, capacity: usize) -> Self {
        Self {
            ttl_micros,
            capacity: capacity.max(1),
            shift: 0,
            shards: Box::new([]),
            clock: Arc::new(SystemClock::new()),
            telemetry: Telemetry::disabled(),
        }
        .with_shards(DEFAULT_SHARDS)
    }

    /// Rebuilds the (empty) cache with `shards` shards, rounded up to a
    /// power of two and clamped to `1..=1024`. `with_shards(1)` gives
    /// the old single-lock, global-FIFO behaviour.
    pub fn with_shards(mut self, shards: usize) -> Self {
        let n = shards.clamp(1, 1024).next_power_of_two();
        self.shards = (0..n).map(|_| Mutex::new(CacheShard::default())).collect();
        self.shift = 64 - n.trailing_zeros();
        self
    }

    /// Replaces the clock (share a `SimulatedClock` for deterministic
    /// TTL tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Reports `minaret_result_cache_*` series to `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `key` lives on — deterministic, so tests can
    /// construct same-shard and different-shard fingerprints.
    pub fn shard_of(&self, key: u64) -> usize {
        if self.shift == 64 {
            0
        } else {
            (stable_hash(&key) >> self.shift) as usize
        }
    }

    /// Responses each shard may hold before FIFO eviction.
    fn shard_capacity(&self) -> usize {
        (self.capacity / self.shards.len()).max(1)
    }

    /// Entries currently stored (including any not yet expired-on-read).
    /// Sums per-shard counts, one shard lock at a time.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical fingerprint of a `/recommend` question: an FNV-64
    /// hash over the `Debug` rendering of the manuscript and the full
    /// editor configuration. Every config field participates — and any
    /// field added later participates automatically — so two requests
    /// share a cache line only if the pipeline would see identical
    /// inputs.
    pub fn fingerprint(manuscript: &ManuscriptDetails, config: &EditorConfig) -> u64 {
        let canonical = format!("{manuscript:?}|{config:?}");
        let mut h: u64 = 0xcbf29ce484222325;
        for b in canonical.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// The cached response for `key`, if present and unexpired. An
    /// expired entry is evicted on read and counts as a miss.
    pub fn get(&self, key: u64) -> Option<Arc<Vec<u8>>> {
        let now = self.clock.now_micros();
        let mut shard = self.shards[self.shard_of(key)].lock();
        match shard.map.get(&key) {
            Some(entry) if now < entry.expires_at_micros => {
                let body = entry.body.clone();
                drop(shard);
                self.telemetry
                    .counter("minaret_result_cache_hits_total", &[])
                    .inc();
                Some(body)
            }
            Some(_) => {
                shard.map.remove(&key);
                shard.order.retain(|k| *k != key);
                drop(shard);
                self.telemetry
                    .counter("minaret_result_cache_evictions_total", &[("cause", "ttl")])
                    .inc();
                self.note_miss();
                None
            }
            None => {
                drop(shard);
                self.note_miss();
                None
            }
        }
    }

    /// Stores a response under `key`. Entries already past their TTL
    /// are swept from the shard first — dead entries must never crowd
    /// out a fresh insertion — then the shard's oldest live entries are
    /// FIFO-evicted past its share of the capacity.
    pub fn insert(&self, key: u64, body: Vec<u8>) {
        let now = self.clock.now_micros();
        let expires_at_micros = now.saturating_add(self.ttl_micros);
        let capacity = self.shard_capacity();
        let mut shard = self.shards[self.shard_of(key)].lock();
        // Sweep expired entries at insert time. Without this, a shard
        // full of TTL-dead entries (written, never re-read) still sits
        // at capacity and sheds the *fresh* insertion's shardmates via
        // FIFO instead of the corpses.
        let mut expired = 0u64;
        shard.map.retain(|_, entry| {
            let live = now < entry.expires_at_micros;
            if !live {
                expired += 1;
            }
            live
        });
        if expired > 0 {
            let CacheShard { map, order } = &mut *shard;
            order.retain(|k| map.contains_key(k));
        }
        if shard
            .map
            .insert(
                key,
                Entry {
                    body: Arc::new(body),
                    expires_at_micros,
                },
            )
            .is_none()
        {
            shard.order.push_back(key);
        }
        let mut evicted = 0u64;
        while shard.map.len() > capacity {
            let Some(oldest) = shard.order.pop_front() else {
                break;
            };
            shard.map.remove(&oldest);
            evicted += 1;
        }
        drop(shard);
        if expired > 0 {
            self.telemetry
                .counter("minaret_result_cache_evictions_total", &[("cause", "ttl")])
                .inc_by(expired);
        }
        if evicted > 0 {
            self.telemetry
                .counter(
                    "minaret_result_cache_evictions_total",
                    &[("cause", "capacity")],
                )
                .inc_by(evicted);
        }
        self.note_entries();
    }

    /// Drops the single entry under `key`, if present. Returns whether
    /// an entry was actually dropped; both outcomes are counted to
    /// telemetry (`scope="single"`, `outcome="hit"|"miss"`), so an
    /// editor invalidating a fingerprint that was never cached — or
    /// already expired — is visible in the metrics.
    pub fn invalidate(&self, key: u64) -> bool {
        let mut shard = self.shards[self.shard_of(key)].lock();
        let dropped = shard.map.remove(&key).is_some();
        if dropped {
            shard.order.retain(|k| *k != key);
        }
        drop(shard);
        self.telemetry
            .counter(
                "minaret_result_cache_invalidations_total",
                &[
                    ("scope", "single"),
                    ("outcome", if dropped { "hit" } else { "miss" }),
                ],
            )
            .inc();
        self.note_entries();
        dropped
    }

    /// Drops every entry (the invalidation hook for world changes),
    /// shard by shard — no whole-cache lock. Returns how many entries
    /// were dropped.
    pub fn invalidate_all(&self) -> usize {
        let dropped = self
            .shards
            .iter()
            .map(|s| {
                let mut shard = s.lock();
                let n = shard.map.len();
                shard.map.clear();
                shard.order.clear();
                n
            })
            .sum();
        self.telemetry
            .counter("minaret_result_cache_invalidations_total", &[])
            .inc();
        self.telemetry
            .gauge("minaret_result_cache_entries", &[])
            .set(0);
        dropped
    }

    fn note_entries(&self) {
        self.telemetry
            .gauge("minaret_result_cache_entries", &[])
            .set(self.len() as i64);
    }

    fn note_miss(&self) {
        self.telemetry
            .counter("minaret_result_cache_misses_total", &[])
            .inc();
        self.note_entries();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_core::AuthorInput;
    use minaret_scholarly::SimulatedClock;

    fn manuscript(title: &str) -> ManuscriptDetails {
        ManuscriptDetails {
            title: title.to_string(),
            keywords: vec!["databases".into()],
            authors: vec![AuthorInput::named("A. Author")],
            target_venue: "EDBT".into(),
        }
    }

    /// `n` keys all living on the same shard (the first shard the probe
    /// sequence hits), for deterministic FIFO tests under sharding.
    fn same_shard_keys(cache: &ResultCache, n: usize) -> Vec<u64> {
        let target = cache.shard_of(0);
        (0u64..)
            .filter(|k| cache.shard_of(*k) == target)
            .take(n)
            .collect()
    }

    #[test]
    fn fingerprint_distinguishes_manuscript_and_config() {
        let m1 = manuscript("one");
        let m2 = manuscript("two");
        let c1 = EditorConfig::default();
        let c2 = EditorConfig {
            max_recommendations: c1.max_recommendations + 1,
            ..EditorConfig::default()
        };
        assert_eq!(
            ResultCache::fingerprint(&m1, &c1),
            ResultCache::fingerprint(&m1, &c1)
        );
        assert_ne!(
            ResultCache::fingerprint(&m1, &c1),
            ResultCache::fingerprint(&m2, &c1)
        );
        assert_ne!(
            ResultCache::fingerprint(&m1, &c1),
            ResultCache::fingerprint(&m1, &c2)
        );
    }

    #[test]
    fn hit_returns_stored_bytes_and_counts() {
        let telemetry = Telemetry::new();
        let cache = ResultCache::new(1_000_000, 8).with_telemetry(telemetry.clone());
        assert!(cache.get(1).is_none());
        cache.insert(1, b"body".to_vec());
        assert_eq!(cache.get(1).unwrap().as_slice(), b"body");
        assert_eq!(
            telemetry
                .counter("minaret_result_cache_hits_total", &[])
                .get(),
            1
        );
        assert_eq!(
            telemetry
                .counter("minaret_result_cache_misses_total", &[])
                .get(),
            1
        );
    }

    #[test]
    fn entries_expire_after_ttl_on_the_injected_clock() {
        let clock = SimulatedClock::new();
        let cache = ResultCache::new(1_000, 8).with_clock(clock.clone());
        cache.insert(7, b"x".to_vec());
        assert!(cache.get(7).is_some());
        clock.advance(999);
        assert!(cache.get(7).is_some(), "just inside the TTL");
        clock.advance(1);
        assert!(cache.get(7).is_none(), "expired exactly at the TTL");
        assert!(cache.is_empty(), "expired entry evicted on read");
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        // One shard = the pre-sharding global-FIFO behaviour.
        let cache = ResultCache::new(1_000_000, 2).with_shards(1);
        cache.insert(1, b"a".to_vec());
        cache.insert(2, b"b".to_vec());
        cache.insert(3, b"c".to_vec());
        assert!(cache.get(1).is_none(), "oldest entry evicted");
        assert!(cache.get(2).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_is_enforced_per_shard() {
        // 4 shards × (capacity 8 / 4 = 2 per shard). Three same-shard
        // keys overflow their shard — its oldest goes — while an entry
        // on any other shard is untouched.
        let cache = ResultCache::new(1_000_000, 8).with_shards(4);
        assert_eq!(cache.shard_count(), 4);
        let same = same_shard_keys(&cache, 3);
        let other = (0u64..)
            .find(|k| cache.shard_of(*k) != cache.shard_of(same[0]))
            .unwrap();
        cache.insert(other, b"elsewhere".to_vec());
        for k in &same {
            cache.insert(*k, b"x".to_vec());
        }
        assert!(cache.get(same[0]).is_none(), "shard-oldest evicted");
        assert!(cache.get(same[1]).is_some());
        assert!(cache.get(same[2]).is_some());
        assert!(
            cache.get(other).is_some(),
            "eviction on one shard must not touch another"
        );
    }

    #[test]
    fn insert_sweeps_expired_entries_before_capacity_eviction() {
        // A shard at capacity with only TTL-dead entries must shed the
        // corpses — not the fresh insertion's live shardmates.
        let telemetry = Telemetry::new();
        let clock = SimulatedClock::new();
        let cache = ResultCache::new(1_000, 2)
            .with_shards(1)
            .with_clock(clock.clone())
            .with_telemetry(telemetry.clone());
        cache.insert(1, b"old-a".to_vec());
        cache.insert(2, b"old-b".to_vec());
        clock.advance(1_000); // both entries are now expired, unread
        cache.insert(3, b"fresh-a".to_vec());
        cache.insert(4, b"fresh-b".to_vec());
        assert!(cache.get(3).is_some(), "fresh entry must survive");
        assert!(cache.get(4).is_some(), "fresh entry must survive");
        assert_eq!(cache.len(), 2, "expired entries were swept");
        assert_eq!(
            telemetry
                .counter("minaret_result_cache_evictions_total", &[("cause", "ttl")])
                .get(),
            2,
            "the sweep is counted as TTL evictions"
        );
        assert_eq!(
            telemetry
                .counter(
                    "minaret_result_cache_evictions_total",
                    &[("cause", "capacity")],
                )
                .get(),
            0,
            "no live entry was FIFO-evicted"
        );
    }

    #[test]
    fn invalidate_single_drops_only_that_entry_and_counts_outcomes() {
        let telemetry = Telemetry::new();
        let cache = ResultCache::new(1_000_000, 8).with_telemetry(telemetry.clone());
        cache.insert(1, b"a".to_vec());
        cache.insert(2, b"b".to_vec());
        assert!(cache.invalidate(1), "present entry is dropped");
        assert!(!cache.invalidate(1), "second attempt is a miss");
        assert!(!cache.invalidate(999), "never-cached key is a miss");
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_some(), "other entries survive");
        let hit = telemetry.counter(
            "minaret_result_cache_invalidations_total",
            &[("scope", "single"), ("outcome", "hit")],
        );
        let miss = telemetry.counter(
            "minaret_result_cache_invalidations_total",
            &[("scope", "single"), ("outcome", "miss")],
        );
        assert_eq!(hit.get(), 1);
        assert_eq!(miss.get(), 2);
    }

    #[test]
    fn invalidate_all_drops_everything() {
        let cache = ResultCache::new(1_000_000, 8);
        cache.insert(1, b"a".to_vec());
        cache.insert(2, b"b".to_vec());
        assert_eq!(cache.invalidate_all(), 2);
        assert!(cache.is_empty());
        assert!(cache.get(1).is_none());
    }

    #[test]
    fn shard_placement_is_stable_and_spread() {
        let cache = ResultCache::new(1_000_000, 64);
        let mut hit = vec![false; cache.shard_count()];
        for k in 0..4096u64 {
            let s = cache.shard_of(k);
            assert_eq!(s, cache.shard_of(k));
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "keys must reach every shard");
    }
}
