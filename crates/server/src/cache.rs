//! TTL'd recommendation result cache.
//!
//! `/recommend` is the expensive route: every uncached call runs the
//! full three-phase pipeline (fan-out, disambiguation, filter, rank).
//! Editors iterating on a submission re-ask the same question, so the
//! serving layer keys finished **response bytes** by a canonical
//! fingerprint of (manuscript, editor config) and serves repeats
//! without touching Phases 1–3. Storing the serialized bytes — not the
//! report — is what makes the hit path byte-identical to the miss path.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use minaret_core::{EditorConfig, ManuscriptDetails};
use minaret_scholarly::{Clock, SystemClock};
use minaret_telemetry::Telemetry;

struct Entry {
    body: Arc<Vec<u8>>,
    expires_at_micros: u64,
}

struct CacheInner {
    map: HashMap<u64, Entry>,
    /// Insertion order for FIFO eviction at capacity.
    order: VecDeque<u64>,
}

/// A TTL'd, capacity-bounded cache of serialized `/recommend` bodies.
///
/// Reports hit/miss/eviction/invalidation counters and an entry gauge
/// to telemetry. Time comes from an injectable [`Clock`], so expiry is
/// testable with a simulated clock instead of wall-time sleeps.
pub struct ResultCache {
    ttl_micros: u64,
    capacity: usize,
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ResultCache(ttl {}us, cap {}, {} entries)",
            self.ttl_micros,
            self.capacity,
            self.len()
        )
    }
}

impl ResultCache {
    /// A cache holding at most `capacity` responses, each valid for
    /// `ttl_micros` after insertion.
    pub fn new(ttl_micros: u64, capacity: usize) -> Self {
        Self {
            ttl_micros,
            capacity: capacity.max(1),
            clock: Arc::new(SystemClock::new()),
            telemetry: Telemetry::disabled(),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
        }
    }

    /// Replaces the clock (share a `SimulatedClock` for deterministic
    /// TTL tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Reports `minaret_result_cache_*` series to `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Entries currently stored (including any not yet expired-on-read).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical fingerprint of a `/recommend` question: an FNV-64
    /// hash over the `Debug` rendering of the manuscript and the full
    /// editor configuration. Every config field participates — and any
    /// field added later participates automatically — so two requests
    /// share a cache line only if the pipeline would see identical
    /// inputs.
    pub fn fingerprint(manuscript: &ManuscriptDetails, config: &EditorConfig) -> u64 {
        let canonical = format!("{manuscript:?}|{config:?}");
        let mut h: u64 = 0xcbf29ce484222325;
        for b in canonical.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// The cached response for `key`, if present and unexpired. An
    /// expired entry is evicted on read and counts as a miss.
    pub fn get(&self, key: u64) -> Option<Arc<Vec<u8>>> {
        let now = self.clock.now_micros();
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        match inner.map.get(&key) {
            Some(entry) if now < entry.expires_at_micros => {
                let body = entry.body.clone();
                drop(inner);
                self.telemetry
                    .counter("minaret_result_cache_hits_total", &[])
                    .inc();
                Some(body)
            }
            Some(_) => {
                inner.map.remove(&key);
                inner.order.retain(|k| *k != key);
                let entries = inner.map.len();
                drop(inner);
                self.telemetry
                    .counter("minaret_result_cache_evictions_total", &[("cause", "ttl")])
                    .inc();
                self.note_miss(entries);
                None
            }
            None => {
                let entries = inner.map.len();
                drop(inner);
                self.note_miss(entries);
                None
            }
        }
    }

    /// Stores a response under `key`, evicting the oldest entries past
    /// capacity.
    pub fn insert(&self, key: u64, body: Vec<u8>) {
        let expires_at_micros = self.clock.now_micros().saturating_add(self.ttl_micros);
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if inner
            .map
            .insert(
                key,
                Entry {
                    body: Arc::new(body),
                    expires_at_micros,
                },
            )
            .is_none()
        {
            inner.order.push_back(key);
        }
        let mut evicted = 0u64;
        while inner.map.len() > self.capacity {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            inner.map.remove(&oldest);
            evicted += 1;
        }
        let entries = inner.map.len();
        drop(inner);
        if evicted > 0 {
            self.telemetry
                .counter(
                    "minaret_result_cache_evictions_total",
                    &[("cause", "capacity")],
                )
                .inc_by(evicted);
        }
        self.telemetry
            .gauge("minaret_result_cache_entries", &[])
            .set(entries as i64);
    }

    /// Drops the single entry under `key`, if present. Returns whether
    /// an entry was actually dropped; both outcomes are counted to
    /// telemetry (`scope="single"`, `outcome="hit"|"miss"`), so an
    /// editor invalidating a fingerprint that was never cached — or
    /// already expired — is visible in the metrics.
    pub fn invalidate(&self, key: u64) -> bool {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        let dropped = inner.map.remove(&key).is_some();
        if dropped {
            inner.order.retain(|k| *k != key);
        }
        let entries = inner.map.len();
        drop(inner);
        self.telemetry
            .counter(
                "minaret_result_cache_invalidations_total",
                &[
                    ("scope", "single"),
                    ("outcome", if dropped { "hit" } else { "miss" }),
                ],
            )
            .inc();
        self.telemetry
            .gauge("minaret_result_cache_entries", &[])
            .set(entries as i64);
        dropped
    }

    /// Drops every entry (the invalidation hook for world changes).
    /// Returns how many entries were dropped.
    pub fn invalidate_all(&self) -> usize {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        let dropped = inner.map.len();
        inner.map.clear();
        inner.order.clear();
        drop(inner);
        self.telemetry
            .counter("minaret_result_cache_invalidations_total", &[])
            .inc();
        self.telemetry
            .gauge("minaret_result_cache_entries", &[])
            .set(0);
        dropped
    }

    fn note_miss(&self, entries: usize) {
        self.telemetry
            .counter("minaret_result_cache_misses_total", &[])
            .inc();
        self.telemetry
            .gauge("minaret_result_cache_entries", &[])
            .set(entries as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_core::AuthorInput;
    use minaret_scholarly::SimulatedClock;

    fn manuscript(title: &str) -> ManuscriptDetails {
        ManuscriptDetails {
            title: title.to_string(),
            keywords: vec!["databases".into()],
            authors: vec![AuthorInput::named("A. Author")],
            target_venue: "EDBT".into(),
        }
    }

    #[test]
    fn fingerprint_distinguishes_manuscript_and_config() {
        let m1 = manuscript("one");
        let m2 = manuscript("two");
        let c1 = EditorConfig::default();
        let c2 = EditorConfig {
            max_recommendations: c1.max_recommendations + 1,
            ..EditorConfig::default()
        };
        assert_eq!(
            ResultCache::fingerprint(&m1, &c1),
            ResultCache::fingerprint(&m1, &c1)
        );
        assert_ne!(
            ResultCache::fingerprint(&m1, &c1),
            ResultCache::fingerprint(&m2, &c1)
        );
        assert_ne!(
            ResultCache::fingerprint(&m1, &c1),
            ResultCache::fingerprint(&m1, &c2)
        );
    }

    #[test]
    fn hit_returns_stored_bytes_and_counts() {
        let telemetry = Telemetry::new();
        let cache = ResultCache::new(1_000_000, 8).with_telemetry(telemetry.clone());
        assert!(cache.get(1).is_none());
        cache.insert(1, b"body".to_vec());
        assert_eq!(cache.get(1).unwrap().as_slice(), b"body");
        assert_eq!(
            telemetry
                .counter("minaret_result_cache_hits_total", &[])
                .get(),
            1
        );
        assert_eq!(
            telemetry
                .counter("minaret_result_cache_misses_total", &[])
                .get(),
            1
        );
    }

    #[test]
    fn entries_expire_after_ttl_on_the_injected_clock() {
        let clock = SimulatedClock::new();
        let cache = ResultCache::new(1_000, 8).with_clock(clock.clone());
        cache.insert(7, b"x".to_vec());
        assert!(cache.get(7).is_some());
        clock.advance(999);
        assert!(cache.get(7).is_some(), "just inside the TTL");
        clock.advance(1);
        assert!(cache.get(7).is_none(), "expired exactly at the TTL");
        assert!(cache.is_empty(), "expired entry evicted on read");
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = ResultCache::new(1_000_000, 2);
        cache.insert(1, b"a".to_vec());
        cache.insert(2, b"b".to_vec());
        cache.insert(3, b"c".to_vec());
        assert!(cache.get(1).is_none(), "oldest entry evicted");
        assert!(cache.get(2).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalidate_single_drops_only_that_entry_and_counts_outcomes() {
        let telemetry = Telemetry::new();
        let cache = ResultCache::new(1_000_000, 8).with_telemetry(telemetry.clone());
        cache.insert(1, b"a".to_vec());
        cache.insert(2, b"b".to_vec());
        assert!(cache.invalidate(1), "present entry is dropped");
        assert!(!cache.invalidate(1), "second attempt is a miss");
        assert!(!cache.invalidate(999), "never-cached key is a miss");
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_some(), "other entries survive");
        let hit = telemetry.counter(
            "minaret_result_cache_invalidations_total",
            &[("scope", "single"), ("outcome", "hit")],
        );
        let miss = telemetry.counter(
            "minaret_result_cache_invalidations_total",
            &[("scope", "single"), ("outcome", "miss")],
        );
        assert_eq!(hit.get(), 1);
        assert_eq!(miss.get(), 2);
    }

    #[test]
    fn invalidate_all_drops_everything() {
        let cache = ResultCache::new(1_000_000, 8);
        cache.insert(1, b"a".to_vec());
        cache.insert(2, b"b".to_vec());
        assert_eq!(cache.invalidate_all(), 2);
        assert!(cache.is_empty());
        assert!(cache.get(1).is_none());
    }
}
