//! Shared application state.

use std::sync::Arc;

use minaret_core::{EditorConfig, Minaret};
use minaret_ontology::Ontology;
use minaret_scholarly::{
    RegistryConfig, ResilienceConfig, SimulatedSource, SourceRegistry, SourceSpec,
};
use minaret_synth::{World, WorldConfig, WorldGenerator};
use minaret_telemetry::Telemetry;

/// Everything the route handlers need.
pub struct AppState {
    /// The synthetic world behind the simulated sources.
    pub world: Arc<World>,
    /// The source registry.
    pub registry: Arc<SourceRegistry>,
    /// The topic ontology.
    pub ontology: Arc<Ontology>,
    /// The framework with the server's default editor configuration.
    pub minaret: Minaret,
    /// Process-wide metrics + traces, served at `/metrics` and
    /// `/traces/recent`. Enabled by [`AppState::demo`].
    pub telemetry: Telemetry,
}

impl AppState {
    /// Builds the default demo state: a generated world, the six default
    /// sources, the curated ontology, a default editor config, and
    /// telemetry enabled throughout.
    pub fn demo(scholars: usize, seed: u64) -> Arc<AppState> {
        Self::demo_with_telemetry(scholars, seed, Telemetry::new())
    }

    /// Like [`AppState::demo`], but with a caller-provided telemetry
    /// handle (pass [`Telemetry::disabled`] to opt out).
    pub fn demo_with_telemetry(scholars: usize, seed: u64, telemetry: Telemetry) -> Arc<AppState> {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                seed,
                ..WorldConfig::sized(scholars)
            })
            .generate(),
        );
        // Servers run with the production resilience preset: deadlines,
        // backoff, and breakers on, so a misbehaving source degrades
        // results instead of stalling requests.
        let mut registry = SourceRegistry::with_telemetry(
            RegistryConfig {
                resilience: ResilienceConfig::standard(),
                ..Default::default()
            },
            telemetry.clone(),
        );
        for spec in SourceSpec::all_defaults() {
            registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        Self::with_registry(world, Arc::new(registry), telemetry)
    }

    /// Builds state over a caller-assembled registry (tests inject
    /// scripted-fault sources this way) plus the curated ontology and a
    /// default editor configuration.
    pub fn with_registry(
        world: Arc<World>,
        registry: Arc<SourceRegistry>,
        telemetry: Telemetry,
    ) -> Arc<AppState> {
        let ontology = Arc::new(minaret_ontology::seed::curated_cs_ontology());
        let minaret = Minaret::new(registry.clone(), ontology.clone(), EditorConfig::default())
            .with_telemetry(telemetry.clone());
        Arc::new(AppState {
            world,
            registry,
            ontology,
            minaret,
            telemetry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_state_wires_everything() {
        let state = AppState::demo(100, 7);
        assert_eq!(state.registry.len(), 6);
        assert!(state.world.scholars().len() == 100);
        assert!(state.ontology.len() > 100);
        assert!(state.telemetry.is_enabled());
    }

    #[test]
    fn demo_state_can_opt_out_of_telemetry() {
        let state = AppState::demo_with_telemetry(100, 7, Telemetry::disabled());
        assert!(!state.telemetry.is_enabled());
    }
}
