//! Shared application state.

use std::path::Path;
use std::sync::Arc;

use minaret_core::{EditorConfig, Minaret};
use minaret_ontology::Ontology;
use minaret_scholarly::{
    RegistryConfig, ResilienceConfig, SimulatedSource, SourceRegistry, SourceSpec,
};
use minaret_store::{Store, StoreConfig, StoreError};
use minaret_synth::{
    load_world, persist::load_world_streamed, stream_snapshot_world, StreamingGenerator, World,
    WorldConfig, WorldGenerator,
};
use minaret_telemetry::Telemetry;

use crate::cache::ResultCache;

/// Default `/recommend` result-cache TTL for demo servers, in micros.
pub const DEFAULT_CACHE_TTL_MICROS: u64 = 30_000_000;
/// Default `/recommend` result-cache capacity for demo servers.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Everything the route handlers need.
pub struct AppState {
    /// The synthetic world behind the simulated sources.
    pub world: Arc<World>,
    /// The source registry.
    pub registry: Arc<SourceRegistry>,
    /// The topic ontology.
    pub ontology: Arc<Ontology>,
    /// The framework with the server's default editor configuration.
    pub minaret: Minaret,
    /// Process-wide metrics + traces, served at `/metrics` and
    /// `/traces/recent`. Enabled by [`AppState::demo`].
    pub telemetry: Telemetry,
    /// TTL'd cache of serialized `/recommend` responses, keyed by the
    /// (manuscript, editor config) fingerprint. `None` disables caching
    /// (the [`AppState::with_registry`] test path, so scripted-fault
    /// tests always exercise the live pipeline).
    pub result_cache: Option<Arc<ResultCache>>,
    /// The embedded store backing `--data-dir` mode: world snapshot and
    /// persisted source profiles. `None` in pure-RAM mode, where
    /// serving behaviour is byte-identical to a store-backed server
    /// over the same (scholars, seed).
    pub store: Option<Arc<Store>>,
}

impl AppState {
    /// Builds the default demo state: a generated world, the six default
    /// sources, the curated ontology, a default editor config, telemetry
    /// enabled throughout, and the default result cache.
    pub fn demo(scholars: usize, seed: u64) -> Arc<AppState> {
        Self::demo_with_telemetry(scholars, seed, Telemetry::new())
    }

    /// Like [`AppState::demo`], but with a caller-provided telemetry
    /// handle (pass [`Telemetry::disabled`] to opt out).
    pub fn demo_with_telemetry(scholars: usize, seed: u64, telemetry: Telemetry) -> Arc<AppState> {
        Self::demo_with_cache_ttl(scholars, seed, telemetry, DEFAULT_CACHE_TTL_MICROS)
    }

    /// Like [`AppState::demo_with_telemetry`], with an explicit result
    /// cache TTL in microseconds; `0` disables the cache entirely.
    pub fn demo_with_cache_ttl(
        scholars: usize,
        seed: u64,
        telemetry: Telemetry,
        cache_ttl_micros: u64,
    ) -> Arc<AppState> {
        Self::demo_with_data_dir(scholars, seed, telemetry, cache_ttl_micros, None)
            .expect("pure-RAM demo state cannot fail: no store I/O involved")
    }

    /// Like [`AppState::demo_with_cache_ttl`], optionally backed by an
    /// embedded store at `data_dir`.
    ///
    /// With a data directory, the world is loaded from the snapshot
    /// there when one exists for the same `(scholars, seed)` — skipping
    /// regeneration entirely — and snapshotted after generation
    /// otherwise; source profile caches also persist across restarts.
    /// With `None`, behaviour (and every recommendation byte) is
    /// identical to the historical pure-RAM path.
    pub fn demo_with_data_dir(
        scholars: usize,
        seed: u64,
        telemetry: Telemetry,
        cache_ttl_micros: u64,
        data_dir: Option<&Path>,
    ) -> Result<Arc<AppState>, StoreError> {
        let store = match data_dir {
            Some(dir) => Some(Arc::new(Store::open_with_telemetry(
                dir,
                StoreConfig::default(),
                telemetry.clone(),
            )?)),
            None => None,
        };
        let config = WorldConfig {
            seed,
            ..WorldConfig::sized(scholars)
        };
        let world = match &store {
            Some(store) => match load_snapshot(store, scholars, seed)? {
                // Serve the snapshot only when it matches what was
                // asked for; a stale snapshot (different size or seed)
                // is regenerated and overwritten.
                Some(world) => Arc::new(world),
                None => {
                    // Write-through streaming: chunks land in the store
                    // as they are generated (peak memory one community
                    // block + memtable), then the snapshot is loaded
                    // back for the resident serving world.
                    let chunk_writes = telemetry.counter("minaret_world_chunk_writes_total", &[]);
                    let chunk_bytes = telemetry.counter("minaret_world_chunk_bytes_total", &[]);
                    stream_snapshot_world(store, &StreamingGenerator::new(config), |p| {
                        chunk_writes.inc();
                        chunk_bytes.inc_by(p.bytes as u64);
                    })?;
                    let (world, _) = load_world_streamed(store)?
                        .expect("a just-written streamed snapshot must load");
                    Arc::new(world)
                }
            },
            None => Arc::new(WorldGenerator::new(config).generate()),
        };
        telemetry
            .gauge("minaret_world_scholars", &[])
            .set(world.scholars().len() as i64);
        // Servers run with the production resilience preset: deadlines,
        // backoff, and breakers on, so a misbehaving source degrades
        // results instead of stalling requests.
        let mut registry = SourceRegistry::with_telemetry(
            RegistryConfig {
                resilience: ResilienceConfig::standard(),
                ..Default::default()
            },
            telemetry.clone(),
        );
        for spec in SourceSpec::all_defaults() {
            let mut source = SimulatedSource::new(spec, world.clone());
            if let Some(store) = &store {
                source = source.with_persistence(store.clone());
            }
            registry.register(Arc::new(source));
        }
        let cache = (cache_ttl_micros > 0).then(|| {
            Arc::new(
                ResultCache::new(cache_ttl_micros, DEFAULT_CACHE_CAPACITY)
                    .with_telemetry(telemetry.clone()),
            )
        });
        let mut state = Self::with_registry_and_cache(world, Arc::new(registry), telemetry, cache);
        if let Some(store) = store {
            Arc::get_mut(&mut state)
                .expect("state Arc is unshared at construction")
                .store = Some(store);
        }
        Ok(state)
    }

    /// Builds state over a caller-assembled registry (tests inject
    /// scripted-fault sources this way) plus the curated ontology and a
    /// default editor configuration. No result cache: every request
    /// exercises the live pipeline.
    pub fn with_registry(
        world: Arc<World>,
        registry: Arc<SourceRegistry>,
        telemetry: Telemetry,
    ) -> Arc<AppState> {
        Self::with_registry_and_cache(world, registry, telemetry, None)
    }

    /// [`AppState::with_registry`] with an explicit result cache.
    pub fn with_registry_and_cache(
        world: Arc<World>,
        registry: Arc<SourceRegistry>,
        telemetry: Telemetry,
        result_cache: Option<Arc<ResultCache>>,
    ) -> Arc<AppState> {
        let ontology = Arc::new(minaret_ontology::seed::curated_cs_ontology());
        let minaret = Minaret::new(registry.clone(), ontology.clone(), EditorConfig::default())
            .with_telemetry(telemetry.clone());
        Arc::new(AppState {
            world,
            registry,
            ontology,
            minaret,
            telemetry,
            result_cache,
            store: None,
        })
    }

    /// Drops every cached `/recommend` response (the hook to call when
    /// the underlying world or source data changes). Returns how many
    /// entries were dropped; 0 when no cache is configured.
    pub fn invalidate_result_cache(&self) -> usize {
        self.result_cache
            .as_ref()
            .map(|c| c.invalidate_all())
            .unwrap_or(0)
    }
}

/// A matching world snapshot from `store`, preferring the chunked (v2)
/// format and falling back to a legacy monolithic (v1) one. A snapshot
/// for a different `(scholars, seed)` is stale and reported as absent.
fn load_snapshot(store: &Store, scholars: usize, seed: u64) -> Result<Option<World>, StoreError> {
    if let Some((world, meta)) = load_world_streamed(store)? {
        if meta.scholars as usize == scholars && meta.seed == seed {
            return Ok(Some(world));
        }
    }
    if let Some((world, meta)) = load_world(store)? {
        if meta.scholars as usize == scholars && meta.seed == seed {
            return Ok(Some(world));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_state_wires_everything() {
        let state = AppState::demo(100, 7);
        assert_eq!(state.registry.len(), 6);
        assert!(state.world.scholars().len() == 100);
        assert!(state.ontology.len() > 100);
        assert!(state.telemetry.is_enabled());
        assert!(state.result_cache.is_some());
    }

    #[test]
    fn demo_state_can_opt_out_of_telemetry() {
        let state = AppState::demo_with_telemetry(100, 7, Telemetry::disabled());
        assert!(!state.telemetry.is_enabled());
    }

    #[test]
    fn data_dir_state_snapshots_then_loads_the_same_world() {
        let dir = std::env::temp_dir().join(format!("minaret-state-dd-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let first = AppState::demo_with_data_dir(80, 11, Telemetry::disabled(), 0, Some(&dir))
            .expect("fresh data dir");
        assert!(first.store.is_some());
        let scholars_first = first.world.scholars().to_vec();
        drop(first);

        // Second boot: the world comes from the snapshot, identically.
        let second = AppState::demo_with_data_dir(80, 11, Telemetry::disabled(), 0, Some(&dir))
            .expect("restart over snapshot");
        assert_eq!(second.world.scholars(), scholars_first.as_slice());

        // Different seed: the stale snapshot is regenerated, not served.
        let third = AppState::demo_with_data_dir(80, 12, Telemetry::disabled(), 0, Some(&dir))
            .expect("reseed over stale snapshot");
        assert_ne!(third.world.scholars(), scholars_first.as_slice());
        drop(second);
        drop(third);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn data_dir_boot_streams_a_chunked_snapshot_and_records_metrics() {
        use minaret_telemetry::SnapshotValue;
        let dir = std::env::temp_dir().join(format!("minaret-state-v2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let telemetry = Telemetry::new();
        let state = AppState::demo_with_data_dir(90, 5, telemetry.clone(), 0, Some(&dir))
            .expect("fresh data dir");
        let snapshot = telemetry.snapshot();
        let value = |name: &str| {
            snapshot
                .iter()
                .find(|m| m.name == name)
                .map(|m| m.value.clone())
        };
        assert!(
            matches!(
                value("minaret_world_scholars"),
                Some(SnapshotValue::Gauge(90))
            ),
            "world gauge: {:?}",
            value("minaret_world_scholars")
        );
        assert!(
            matches!(value("minaret_world_chunk_writes_total"), Some(SnapshotValue::Counter(n)) if n >= 1)
        );
        assert!(
            matches!(value("minaret_world_chunk_bytes_total"), Some(SnapshotValue::Counter(n)) if n > 0)
        );
        // The store now holds a chunked (v2) snapshot and no legacy one.
        let store = state.store.clone().expect("data-dir state has a store");
        assert!(load_world_streamed(&store).unwrap().is_some());
        assert!(load_world(&store).unwrap().is_none());
        drop(state);
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn zero_ttl_disables_the_result_cache() {
        let state = AppState::demo_with_cache_ttl(100, 7, Telemetry::disabled(), 0);
        assert!(state.result_cache.is_none());
        assert_eq!(state.invalidate_result_cache(), 0);
    }
}
