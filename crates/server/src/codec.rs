//! JSON ↔ domain-type mapping.

use minaret_assign::{AssignmentSpec, BatchAssignment};
use minaret_core::{
    AffiliationMatchLevel, AuthorInput, EditorConfig, ManuscriptDetails, RecommendationReport,
};
use minaret_json::Value;

/// Parses the `/recommend` request body: the manuscript plus optional
/// editor-configuration overrides under `"config"`.
///
/// Expected shape (config entirely optional):
/// ```json
/// {
///   "title": "...", "keywords": ["RDF"],
///   "authors": [{"name": "...", "affiliation": "...", "country": "..."}],
///   "target_venue": "...",
///   "config": {
///     "keyword_score_threshold": 0.6,
///     "max_recommendations": 10,
///     "coi_affiliation_level": "university" | "country" | "off",
///     "weights": {"coverage": 0.4, "impact": 0.2, "recency": 0.2,
///                  "experience": 0.1, "familiarity": 0.1},
///     "min_sources": 2,
///     "min_citations": 100, "max_citations": 50000,
///     "min_h_index": 5, "max_h_index": 60,
///     "min_reviews": 1, "max_reviews": 500,
///     "pc_members": ["Name One", "Name Two"]
///   }
/// }
/// ```
pub fn manuscript_from_json(
    body: &Value,
    base: &EditorConfig,
) -> Result<(ManuscriptDetails, EditorConfig), String> {
    let title = body
        .get("title")
        .and_then(Value::as_str)
        .ok_or("missing string field \"title\"")?
        .to_string();
    let keywords = body
        .get("keywords")
        .and_then(Value::as_array)
        .ok_or("missing array field \"keywords\"")?
        .iter()
        .map(|k| {
            k.as_str()
                .map(str::to_string)
                .ok_or("keywords must be strings".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let authors = body
        .get("authors")
        .and_then(Value::as_array)
        .ok_or("missing array field \"authors\"")?
        .iter()
        .map(|a| {
            let name = a
                .get("name")
                .and_then(Value::as_str)
                .ok_or("author entries need a \"name\"")?
                .to_string();
            Ok(AuthorInput {
                name,
                affiliation: a
                    .get("affiliation")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                country: a.get("country").and_then(Value::as_str).map(str::to_string),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let target_venue = body
        .get("target_venue")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string();
    let manuscript = ManuscriptDetails {
        title,
        keywords,
        authors,
        target_venue,
    };

    let mut config = base.clone();
    if let Some(cfg) = body.get("config") {
        apply_config_overrides(cfg, &mut config)?;
    }
    Ok((manuscript, config))
}

fn apply_config_overrides(cfg: &Value, config: &mut EditorConfig) -> Result<(), String> {
    if let Some(t) = cfg.get("keyword_score_threshold").and_then(Value::as_f64) {
        if !(0.0..=1.0).contains(&t) {
            return Err("keyword_score_threshold must be in [0, 1]".into());
        }
        config.keyword_score_threshold = t;
    }
    if let Some(m) = cfg.get("max_recommendations").and_then(Value::as_u64) {
        config.max_recommendations = m as usize;
    }
    if let Some(m) = cfg.get("min_sources").and_then(Value::as_u64) {
        config.min_sources = m as usize;
    }
    if let Some(level) = cfg.get("coi_affiliation_level").and_then(Value::as_str) {
        config.coi.affiliation_level = match level {
            "university" => AffiliationMatchLevel::University,
            "country" => AffiliationMatchLevel::Country,
            "off" => AffiliationMatchLevel::Off,
            other => return Err(format!("unknown coi_affiliation_level {other:?}")),
        };
    }
    if let Some(w) = cfg.get("weights") {
        let read = |key: &str, current: f64| -> Result<f64, String> {
            match w.get(key) {
                None => Ok(current),
                Some(v) => {
                    let x = v
                        .as_f64()
                        .ok_or_else(|| format!("weight {key:?} must be a number"))?;
                    if x < 0.0 {
                        return Err(format!("weight {key:?} must be non-negative"));
                    }
                    Ok(x)
                }
            }
        };
        config.weights.coverage = read("coverage", config.weights.coverage)?;
        config.weights.impact = read("impact", config.weights.impact)?;
        config.weights.recency = read("recency", config.weights.recency)?;
        config.weights.experience = read("experience", config.weights.experience)?;
        config.weights.familiarity = read("familiarity", config.weights.familiarity)?;
        config.weights.responsiveness = read("responsiveness", config.weights.responsiveness)?;
    }
    let u64_field = |key: &str| cfg.get(key).and_then(Value::as_u64);
    if let Some(v) = u64_field("min_citations") {
        config.expertise.min_citations = Some(v);
    }
    if let Some(v) = u64_field("max_citations") {
        config.expertise.max_citations = Some(v);
    }
    if let Some(v) = u64_field("min_h_index") {
        config.expertise.min_h_index = Some(v as u32);
    }
    if let Some(v) = u64_field("max_h_index") {
        config.expertise.max_h_index = Some(v as u32);
    }
    if let Some(v) = u64_field("min_reviews") {
        config.expertise.min_reviews = Some(v as u32);
    }
    if let Some(v) = u64_field("max_reviews") {
        config.expertise.max_reviews = Some(v as u32);
    }
    if let Some(pc) = cfg.get("pc_members").and_then(Value::as_array) {
        let members = pc
            .iter()
            .map(|m| {
                m.as_str()
                    .map(str::to_string)
                    .ok_or("pc_members must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        config.pc_members = Some(members);
    }
    Ok(())
}

/// Parses the `/assign` request body: a manuscript batch, the
/// assignment spec, and optional editor-configuration overrides shared
/// by every paper.
///
/// Expected shape (spec and config optional):
/// ```json
/// {
///   "manuscripts": [{"title": "...", "keywords": [...],
///                     "authors": [...], "target_venue": "..."}, ...],
///   "spec": {
///     "reviewers_per_paper": 3,
///     "max_load": 5,
///     "coi": {"coauthorship": true,
///              "affiliation_level": "university" | "country" | "off"}
///   },
///   "config": { ...same overrides as /recommend... }
/// }
/// ```
pub fn assign_request_from_json(
    body: &Value,
    base: &EditorConfig,
) -> Result<(Vec<ManuscriptDetails>, AssignmentSpec, EditorConfig), String> {
    let mut config = base.clone();
    if let Some(cfg) = body.get("config") {
        apply_config_overrides(cfg, &mut config)?;
    }
    let manuscripts = body
        .get("manuscripts")
        .and_then(Value::as_array)
        .ok_or("missing array field \"manuscripts\"")?
        .iter()
        .map(|item| manuscript_from_json(item, &config).map(|(m, _)| m))
        .collect::<Result<Vec<_>, _>>()?;

    let mut spec = AssignmentSpec::new(3, 5);
    if let Some(s) = body.get("spec") {
        if let Some(k) = s.get("reviewers_per_paper").and_then(Value::as_u64) {
            spec.reviewers_per_paper = k as usize;
        }
        if let Some(l) = s.get("max_load").and_then(Value::as_u64) {
            spec.max_load = l as usize;
        }
        if let Some(cap) = s.get("max_candidates_per_paper").and_then(Value::as_u64) {
            spec.max_candidates_per_paper = cap as usize;
        }
        if let Some(coi) = s.get("coi") {
            let mut policy = config.coi;
            if let Some(c) = coi.get("coauthorship").and_then(Value::as_bool) {
                policy.coauthorship = c;
            }
            if let Some(level) = coi.get("affiliation_level").and_then(Value::as_str) {
                policy.affiliation_level = match level {
                    "university" => AffiliationMatchLevel::University,
                    "country" => AffiliationMatchLevel::Country,
                    "off" => AffiliationMatchLevel::Off,
                    other => return Err(format!("unknown coi affiliation_level {other:?}")),
                };
            }
            spec = spec.with_coi(policy);
        }
    }
    Ok((manuscripts, spec, config))
}

/// Serializes a solved batch assignment for the API.
pub fn assignment_to_json(assignment: &BatchAssignment) -> Value {
    let papers: Vec<Value> = assignment
        .papers
        .iter()
        .map(|p| {
            Value::object().set("title", p.title.as_str()).set(
                "reviewers",
                p.reviewers
                    .iter()
                    .map(|r| {
                        Value::object()
                            .set("name", r.name.as_str())
                            .set("affiliation", r.affiliation.clone())
                            .set("score", r.score)
                    })
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let loads: Vec<Value> = assignment
        .loads
        .iter()
        .map(|l| {
            Value::object()
                .set("name", l.name.as_str())
                .set("load", l.load)
        })
        .collect();
    let mut quality = Value::object()
        .set("mean_relevance", assignment.quality.mean_relevance)
        .set("load_gini", assignment.quality.load_gini);
    if let Some(cov) = assignment.quality.coverage_at_k {
        quality = quality.set("coverage_at_k", cov);
    }
    Value::object()
        .set("papers", papers)
        .set("loads", loads)
        .set("pool_size", assignment.pool_size)
        .set("eligible_pairs", assignment.eligible_pairs)
        .set("greedy_total", assignment.greedy_total)
        .set("total_score", assignment.total_score)
        .set(
            "refinement_improvement",
            assignment.refinement_improvement(),
        )
        .set("augmentations", assignment.augmentations)
        .set("quality", quality)
}

/// Serializes a recommendation report for the API.
pub fn report_to_json(report: &RecommendationReport) -> Value {
    let recommendations: Vec<Value> = report
        .recommendations
        .iter()
        .map(|r| {
            Value::object()
                .set("rank", r.rank)
                .set("name", r.name.as_str())
                .set("affiliation", r.affiliation.clone())
                .set(
                    "sources",
                    r.sources
                        .iter()
                        .map(|s| Value::from(s.to_string()))
                        .collect::<Vec<_>>(),
                )
                .set(
                    "matched_keywords",
                    r.matched_keywords
                        .iter()
                        .map(|(k, s)| Value::object().set("keyword", k.as_str()).set("score", *s))
                        .collect::<Vec<_>>(),
                )
                .set("total_score", r.total)
                .set(
                    "score_details",
                    Value::object()
                        .set("topic_coverage", r.breakdown.coverage)
                        .set("scientific_impact", r.breakdown.impact)
                        .set("recency", r.breakdown.recency)
                        .set("review_experience", r.breakdown.experience)
                        .set("outlet_familiarity", r.breakdown.familiarity)
                        .set("responsiveness", r.breakdown.responsiveness),
                )
        })
        .collect();
    let expansions: Vec<Value> = report
        .expansions
        .iter()
        .map(|e| {
            Value::object().set("keyword", e.original.as_str()).set(
                "expanded",
                e.expanded
                    .iter()
                    .map(|(label, score)| {
                        Value::object()
                            .set("keyword", label.as_str())
                            .set("score", *score)
                    })
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    Value::object()
        .set("title", report.manuscript.title.as_str())
        .set("recommendations", recommendations)
        .set("expansions", expansions)
        .set(
            "unknown_keywords",
            report
                .unknown_keywords
                .iter()
                .map(|k| Value::from(k.as_str()))
                .collect::<Vec<_>>(),
        )
        .set("candidates_retrieved", report.candidates_retrieved)
        .set("filtered_out", report.filtered_out.len())
        .set("degraded", report.degraded)
        .set(
            "degraded_sources",
            report
                .degraded_sources
                .iter()
                .map(|s| Value::from(s.as_str()))
                .collect::<Vec<_>>(),
        )
        .set(
            "source_errors",
            report
                .source_errors
                .iter()
                .map(|s| Value::from(s.as_str()))
                .collect::<Vec<_>>(),
        )
        .set(
            "timings_ms",
            Value::object()
                .set("extraction", report.timings.extraction.as_secs_f64() * 1e3)
                .set("filtering", report.timings.filtering.as_secs_f64() * 1e3)
                .set("ranking", report.timings.ranking.as_secs_f64() * 1e3),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_json::parse;

    fn base() -> EditorConfig {
        EditorConfig::default()
    }

    #[test]
    fn parses_minimal_manuscript() {
        let body = parse(
            r#"{"title":"T","keywords":["RDF"],
                "authors":[{"name":"A B"}],"target_venue":"J"}"#,
        )
        .unwrap();
        let (m, cfg) = manuscript_from_json(&body, &base()).unwrap();
        assert_eq!(m.title, "T");
        assert_eq!(m.keywords, vec!["RDF"]);
        assert_eq!(m.authors[0].name, "A B");
        assert!(m.authors[0].affiliation.is_none());
        assert_eq!(cfg, base());
    }

    #[test]
    fn applies_config_overrides() {
        let body = parse(
            r#"{"title":"T","keywords":["RDF"],"authors":[{"name":"A B"}],
                "target_venue":"J",
                "config":{"keyword_score_threshold":0.7,
                          "max_recommendations":5,
                          "min_sources":2,
                          "coi_affiliation_level":"country",
                          "weights":{"coverage":1.0,"impact":0.0},
                          "min_citations":10,
                          "pc_members":["X Y"]}}"#,
        )
        .unwrap();
        let (_, cfg) = manuscript_from_json(&body, &base()).unwrap();
        assert_eq!(cfg.keyword_score_threshold, 0.7);
        assert_eq!(cfg.max_recommendations, 5);
        assert_eq!(cfg.min_sources, 2);
        assert_eq!(cfg.coi.affiliation_level, AffiliationMatchLevel::Country);
        assert_eq!(cfg.weights.coverage, 1.0);
        assert_eq!(cfg.weights.impact, 0.0);
        assert_eq!(cfg.weights.recency, base().weights.recency);
        assert_eq!(cfg.expertise.min_citations, Some(10));
        assert_eq!(cfg.pc_members, Some(vec!["X Y".to_string()]));
    }

    #[test]
    fn rejects_bad_payloads() {
        for bad in [
            r#"{"keywords":[],"authors":[],"target_venue":""}"#,
            r#"{"title":"T","keywords":[1],"authors":[],"target_venue":""}"#,
            r#"{"title":"T","keywords":["k"],"authors":[{}],"target_venue":""}"#,
            r#"{"title":"T","keywords":["k"],"authors":[{"name":"A"}],
                "config":{"keyword_score_threshold":7}}"#,
            r#"{"title":"T","keywords":["k"],"authors":[{"name":"A"}],
                "config":{"coi_affiliation_level":"galaxy"}}"#,
            r#"{"title":"T","keywords":["k"],"authors":[{"name":"A"}],
                "config":{"weights":{"coverage":-1}}}"#,
        ] {
            let body = parse(bad).unwrap();
            assert!(
                manuscript_from_json(&body, &base()).is_err(),
                "accepted bad payload {bad}"
            );
        }
    }
}
