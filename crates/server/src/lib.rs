//! The MINARET RESTful API.
//!
//! The paper's prototype is "available both as a Web application as well
//! as RESTful APIs". This crate exposes the same workflow over HTTP:
//!
//! | route | method | purpose |
//! |---|---|---|
//! | `/health` | GET | liveness + world statistics |
//! | `/sources` | GET | the registered scholarly sources |
//! | `/expand?keyword=K` | GET | semantic expansion of one keyword |
//! | `/verify-authors` | POST | identity candidates per author (Fig 4) |
//! | `/recommend` | POST | the full three-phase pipeline (Figs 3→5) |
//! | `/assign` | POST | batch assignment: one extraction fan-out for a whole submission batch, greedy + min-cost-flow solve |
//! | `/cache/invalidate` | POST | empty body: drop every cached `/recommend` result; manuscript body: drop just that fingerprint |
//!
//! The binary (`minaret-server`) generates a synthetic world, wires the
//! six simulated sources, and serves. [`build_router`] is also used
//! in-process by the integration tests and examples.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod codec;
mod routes;
mod state;

pub use cache::ResultCache;
pub use codec::{
    assign_request_from_json, assignment_to_json, manuscript_from_json, report_to_json,
};
pub use routes::build_router;
pub use state::AppState;
