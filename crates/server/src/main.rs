//! The `minaret-server` binary: generates a synthetic scholarly world,
//! wires the six simulated sources, and serves the REST API.
//!
//! ```text
//! minaret-server [--addr 127.0.0.1:8080] [--scholars 2000] [--seed 42]
//! ```

use std::sync::Arc;

use minaret_http::Server;
use minaret_server::{build_router, AppState};

fn main() {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut scholars = 2000usize;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--scholars" => {
                scholars = value("--scholars")
                    .parse()
                    .expect("--scholars must be an integer")
            }
            "--seed" => seed = value("--seed").parse().expect("--seed must be an integer"),
            "--help" | "-h" => {
                println!("minaret-server [--addr 127.0.0.1:8080] [--scholars 2000] [--seed 42]");
                return;
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    eprintln!("generating synthetic scholarly world ({scholars} scholars, seed {seed})…");
    let state: Arc<AppState> = AppState::demo(scholars, seed);
    let stats = state.world.stats();
    eprintln!(
        "world ready: {} scholars, {} papers, {} venues, {} review records",
        stats.scholars, stats.papers, stats.venues, stats.reviews
    );
    let router = build_router(state);
    let server = Server::bind(&addr, router, 8).expect("failed to bind");
    eprintln!("MINARET API listening on http://{}", server.local_addr());
    eprintln!("  GET  /health     GET /sources     GET /expand?keyword=RDF");
    eprintln!("  POST /verify-authors               POST /recommend");
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
