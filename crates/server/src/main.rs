//! The `minaret-server` binary: generates a synthetic scholarly world,
//! wires the six simulated sources, and serves the REST API behind the
//! admission-controlled serving layer (bounded queue, load shedding,
//! keep-alive, result cache).
//!
//! Run `minaret-server --help` for the full flag reference.

use std::sync::Arc;
use std::time::Duration;

use minaret_http::{KeepAliveConfig, Server, ServerConfig};
use minaret_server::{build_router, AppState};
use minaret_telemetry::Telemetry;

const USAGE: &str = "\
minaret-server — MINARET reviewer-recommendation REST API

USAGE:
    minaret-server [FLAGS]

WORLD:
    --addr <host:port>            Bind address          [default: 127.0.0.1:8080]
    --scholars <n>                Synthetic scholars, n >= 1 [default: 2000]
    --seed <n>                    World generator seed  [default: 42]
    --data-dir <path>             Embedded-store directory. On first boot the
                                  generated world is snapshotted there; later
                                  boots with the same --scholars/--seed load
                                  the snapshot instead of regenerating, and
                                  source profile caches persist across
                                  restarts. Omit for pure-RAM mode (identical
                                  recommendation bytes, nothing on disk)

SERVING LAYER:
    --workers <n>                 Worker threads, n >= 1      [default: 8]
    --io-threads <n>              Event-loop (reactor) threads multiplexing
                                  connections, 1 <= n <= 1024; total serving
                                  threads = io-threads + workers [default: 1]
    --queue-depth <n>             Admission queue slots, n >= 1; connections
                                  beyond this are shed with 503 [default: 128]
    --request-timeout-ms <ms>     Per-request budget (read + handle + write);
                                  0 disables                  [default: 10000]
    --keepalive-max-requests <n>  Requests per connection before the server
                                  closes it; 1 disables keep-alive [default: 100]
    --idle-timeout-ms <ms>        Keep-alive idle limit; 0 waits forever
                                  [default: 5000]
    --cache-ttl-ms <ms>           /recommend result-cache TTL; 0 disables
                                  caching                     [default: 30000]

    -h, --help                    Print this help and exit
";

#[derive(Debug)]
struct Flags {
    addr: String,
    scholars: usize,
    seed: u64,
    workers: usize,
    io_threads: usize,
    queue_depth: usize,
    request_timeout_ms: u64,
    keepalive_max_requests: usize,
    idle_timeout_ms: u64,
    cache_ttl_ms: u64,
    data_dir: Option<String>,
}

impl Default for Flags {
    fn default() -> Self {
        Flags {
            addr: "127.0.0.1:8080".into(),
            scholars: 2000,
            seed: 42,
            workers: 8,
            io_threads: 1,
            queue_depth: 128,
            request_timeout_ms: 10_000,
            keepalive_max_requests: 100,
            idle_timeout_ms: 5_000,
            cache_ttl_ms: 30_000,
            data_dir: None,
        }
    }
}

/// Parses and validates flags. `Ok(None)` means `--help` was requested.
fn parse_flags(mut args: impl Iterator<Item = String>) -> Result<Option<Flags>, String> {
    let mut flags = Flags::default();
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        let value = args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        fn num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("{flag} must be a non-negative integer, got {value:?}"))
        }
        match flag.as_str() {
            "--addr" => flags.addr = value,
            "--scholars" => {
                flags.scholars = num(&flag, &value)?;
                if flags.scholars == 0 {
                    return Err("--scholars must be at least 1".into());
                }
            }
            "--seed" => flags.seed = num(&flag, &value)?,
            "--workers" => {
                flags.workers = num(&flag, &value)?;
                if flags.workers == 0 {
                    return Err("--workers must be at least 1 (the server cannot serve requests with zero workers)".into());
                }
            }
            "--io-threads" => {
                flags.io_threads = num(&flag, &value)?;
                if flags.io_threads == 0 {
                    return Err(
                        "--io-threads must be at least 1 (someone has to run the event loop)"
                            .into(),
                    );
                }
                if flags.io_threads > 1024 {
                    return Err(format!(
                        "--io-threads must be at most 1024, got {} (each reactor costs an epoll instance and a wake pipe; more event loops than that serves nothing)",
                        flags.io_threads
                    ));
                }
            }
            "--queue-depth" => {
                flags.queue_depth = num(&flag, &value)?;
                if flags.queue_depth == 0 {
                    return Err("--queue-depth must be at least 1 (a zero-slot queue would shed every request)".into());
                }
            }
            "--request-timeout-ms" => flags.request_timeout_ms = num(&flag, &value)?,
            "--keepalive-max-requests" => {
                flags.keepalive_max_requests = num(&flag, &value)?;
                if flags.keepalive_max_requests == 0 {
                    return Err(
                        "--keepalive-max-requests must be at least 1 (use 1 to disable keep-alive)"
                            .into(),
                    );
                }
            }
            "--idle-timeout-ms" => flags.idle_timeout_ms = num(&flag, &value)?,
            "--cache-ttl-ms" => flags.cache_ttl_ms = num(&flag, &value)?,
            "--data-dir" => {
                if value.is_empty() {
                    return Err("--data-dir needs a non-empty path".into());
                }
                flags.data_dir = Some(value);
            }
            other => return Err(format!("unknown flag {other}; try --help")),
        }
    }
    Ok(Some(flags))
}

fn main() {
    let flags = match parse_flags(std::env::args().skip(1)) {
        Ok(Some(flags)) => flags,
        Ok(None) => {
            print!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run minaret-server --help for the flag reference");
            std::process::exit(2);
        }
    };

    match &flags.data_dir {
        Some(dir) => eprintln!(
            "opening scholarly world ({} scholars, seed {}) from data dir {dir}…",
            flags.scholars, flags.seed
        ),
        None => eprintln!(
            "generating synthetic scholarly world ({} scholars, seed {})…",
            flags.scholars, flags.seed
        ),
    }
    let telemetry = Telemetry::new();
    let state: Arc<AppState> = match AppState::demo_with_data_dir(
        flags.scholars,
        flags.seed,
        telemetry.clone(),
        flags.cache_ttl_ms.saturating_mul(1_000),
        flags.data_dir.as_deref().map(std::path::Path::new),
    ) {
        Ok(state) => state,
        Err(e) => {
            eprintln!("error: failed to open data dir: {e}");
            std::process::exit(2);
        }
    };
    let stats = state.world.stats();
    eprintln!(
        "world ready: {} scholars, {} papers, {} venues, {} review records",
        stats.scholars, stats.papers, stats.venues, stats.reviews
    );
    let router = build_router(state);
    let config = ServerConfig {
        workers: flags.workers,
        io_threads: flags.io_threads,
        queue_depth: flags.queue_depth,
        request_timeout: (flags.request_timeout_ms > 0)
            .then(|| Duration::from_millis(flags.request_timeout_ms)),
        keep_alive: KeepAliveConfig {
            max_requests: flags.keepalive_max_requests,
            idle_timeout: (flags.idle_timeout_ms > 0)
                .then(|| Duration::from_millis(flags.idle_timeout_ms)),
        },
        telemetry,
        ..ServerConfig::default()
    };
    let server = match Server::bind_with(&flags.addr, router, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: failed to bind {}: {e}", flags.addr);
            std::process::exit(2);
        }
    };
    eprintln!("MINARET API listening on http://{}", server.local_addr());
    eprintln!("  GET  /health     GET /sources     GET /expand?keyword=RDF");
    eprintln!("  POST /verify-authors               POST /recommend");
    eprintln!("  POST /cache/invalidate             GET /metrics");
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<Flags>, String> {
        parse_flags(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_parse() {
        let flags = parse(&[]).unwrap().unwrap();
        assert_eq!(flags.workers, 8);
        assert_eq!(flags.io_threads, 1);
        assert_eq!(flags.queue_depth, 128);
        assert_eq!(flags.cache_ttl_ms, 30_000);
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse(&["--help"]).unwrap().is_none());
        assert!(parse(&["-h", "--workers", "0"]).unwrap().is_none());
    }

    #[test]
    fn all_flags_round_trip() {
        let flags = parse(&[
            "--addr",
            "0.0.0.0:9999",
            "--scholars",
            "500",
            "--seed",
            "7",
            "--workers",
            "3",
            "--io-threads",
            "2",
            "--queue-depth",
            "16",
            "--request-timeout-ms",
            "0",
            "--keepalive-max-requests",
            "1",
            "--idle-timeout-ms",
            "250",
            "--cache-ttl-ms",
            "0",
            "--data-dir",
            "/tmp/minaret-data",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(flags.addr, "0.0.0.0:9999");
        assert_eq!(flags.scholars, 500);
        assert_eq!(flags.seed, 7);
        assert_eq!(flags.workers, 3);
        assert_eq!(flags.io_threads, 2);
        assert_eq!(flags.queue_depth, 16);
        assert_eq!(flags.request_timeout_ms, 0);
        assert_eq!(flags.keepalive_max_requests, 1);
        assert_eq!(flags.idle_timeout_ms, 250);
        assert_eq!(flags.cache_ttl_ms, 0);
        assert_eq!(flags.data_dir.as_deref(), Some("/tmp/minaret-data"));
    }

    #[test]
    fn data_dir_defaults_to_ram_mode_and_rejects_empty_paths() {
        assert!(parse(&[]).unwrap().unwrap().data_dir.is_none());
        assert!(parse(&["--data-dir", ""])
            .unwrap_err()
            .contains("--data-dir"));
    }

    #[test]
    fn nonsense_values_are_rejected_with_clear_errors() {
        assert!(parse(&["--workers", "0"])
            .unwrap_err()
            .contains("--workers"));
        assert!(parse(&["--queue-depth", "0"])
            .unwrap_err()
            .contains("--queue-depth"));
        assert!(parse(&["--io-threads", "0"])
            .unwrap_err()
            .contains("--io-threads"));
        assert!(parse(&["--io-threads", "4097"])
            .unwrap_err()
            .contains("at most 1024"));
        assert!(parse(&["--io-threads", "-1"])
            .unwrap_err()
            .contains("non-negative integer"));
        assert!(parse(&["--keepalive-max-requests", "0"])
            .unwrap_err()
            .contains("--keepalive-max-requests"));
        assert!(parse(&["--scholars", "0"])
            .unwrap_err()
            .contains("--scholars"));
        assert!(parse(&["--workers", "many"])
            .unwrap_err()
            .contains("non-negative integer"));
        assert!(parse(&["--workers"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--bogus", "1"]).unwrap_err().contains("--bogus"));
    }
}
