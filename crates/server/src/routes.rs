//! Route handlers.

use std::sync::Arc;
use std::time::Instant;

use minaret_assign::{coverage_against_world, AssignError, Assigner};
use minaret_core::{Minaret, MinaretError};
use minaret_disambig::{AuthorQuery, IdentityResolver};
use minaret_http::{Params, Request, Response, Router};
use minaret_json::Value;
use minaret_ontology::{ExpansionConfig, KeywordExpander};
use minaret_scholarly::SourceRegistry;
use minaret_telemetry::Telemetry;

use crate::cache::ResultCache;
use crate::codec::{
    assign_request_from_json, assignment_to_json, manuscript_from_json, report_to_json,
};
use crate::state::AppState;

/// The registry view for this request. When the admission layer stamped
/// a deadline on the request, every fan-out this handler performs is
/// clamped to the *remaining* budget; a request whose budget is already
/// spent is refused here (503 + `Retry-After`) instead of fanning out
/// to sources that cannot possibly answer in time.
fn scoped_registry(
    registry: &Arc<SourceRegistry>,
    req: &Request,
) -> Result<Arc<SourceRegistry>, Response> {
    let Some(deadline) = req.deadline else {
        return Ok(registry.clone());
    };
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(
            Response::error(503, "request deadline exhausted before dispatch")
                .with_header("Retry-After", "1"),
        );
    }
    Ok(Arc::new(
        registry.scoped_with_budget(remaining.as_micros() as u64),
    ))
}

/// Wraps a handler with per-route telemetry: a latency histogram
/// (`minaret_http_request_micros{route}`) and a status-code counter
/// (`minaret_http_requests_total{route,status}`).
fn instrumented(
    telemetry: Telemetry,
    route: &'static str,
    handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
) -> impl Fn(&Request, &Params) -> Response + Send + Sync + 'static {
    move |req, params| {
        let start = Instant::now();
        let resp = handler(req, params);
        let status = resp.status.to_string();
        telemetry
            .counter(
                "minaret_http_requests_total",
                &[("route", route), ("status", &status)],
            )
            .inc();
        telemetry
            .histogram("minaret_http_request_micros", &[("route", route)])
            .observe_duration(start.elapsed());
        resp
    }
}

/// Builds the full API router over the given state.
pub fn build_router(state: Arc<AppState>) -> Router {
    let mut router = Router::new();
    let t = |route| (state.telemetry.clone(), route);

    let s = state.clone();
    let (tel, route) = t("/health");
    router.get(
        route,
        instrumented(tel, route, move |_, _| {
            let stats = s.world.stats();
            Response::json(
                200,
                &Value::object()
                    .set("status", "ok")
                    .set(
                        "world",
                        Value::object()
                            .set("scholars", stats.scholars)
                            .set("papers", stats.papers)
                            .set("venues", stats.venues)
                            .set("reviews", stats.reviews),
                    )
                    .set("sources", s.registry.len()),
            )
        }),
    );

    let s = state.clone();
    let (tel, route) = t("/sources");
    router.get(
        route,
        instrumented(tel, route, move |_, _| {
            let kinds: Vec<Value> = s
                .registry
                .kinds()
                .iter()
                .map(|k| Value::from(k.to_string()))
                .collect();
            Response::json(200, &Value::object().set("sources", kinds))
        }),
    );

    let s = state.clone();
    let (tel, route) = t("/expand");
    router.get(
        route,
        instrumented(tel, route, move |req, _| {
            let Some(keyword) = req.query_param("keyword") else {
                return Response::error(400, "missing query parameter \"keyword\"");
            };
            let min_score = req
                .query_param("min_score")
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(ExpansionConfig::default().min_score);
            let cfg = ExpansionConfig {
                min_score,
                ..Default::default()
            };
            let expander = KeywordExpander::new(&s.ontology, cfg);
            match expander.expand(keyword) {
                Ok(expanded) => {
                    let items: Vec<Value> = expanded
                        .iter()
                        .map(|e| {
                            Value::object()
                                .set("keyword", e.label.as_str())
                                .set("score", e.score)
                                .set("hops", e.hops)
                        })
                        .collect();
                    Response::json(
                        200,
                        &Value::object()
                            .set("keyword", keyword)
                            .set("expanded", items),
                    )
                }
                Err(e) => Response::error(404, &e.to_string()),
            }
        }),
    );

    let s = state.clone();
    let (tel, route) = t("/verify-authors");
    router.post(
        route,
        instrumented(tel, route, move |req, _| {
            let body = match req.json_body() {
                Ok(b) => b,
                Err(e) => return Response::error(400, &e.to_string()),
            };
            let Some(authors) = body.get("authors").and_then(Value::as_array) else {
                return Response::error(400, "missing array field \"authors\"");
            };
            let keywords: Vec<String> = body
                .get("keywords")
                .and_then(Value::as_array)
                .map(|ks| {
                    ks.iter()
                        .filter_map(Value::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default();
            let registry = match scoped_registry(&s.registry, req) {
                Ok(r) => r,
                Err(resp) => return resp,
            };
            let resolver = IdentityResolver::new(&registry).with_telemetry(s.telemetry.clone());
            let mut results = Vec::new();
            for a in authors {
                let Some(name) = a.get("name").and_then(Value::as_str) else {
                    return Response::error(400, "author entries need a \"name\"");
                };
                let query = AuthorQuery {
                    name: name.to_string(),
                    affiliation: a
                        .get("affiliation")
                        .and_then(Value::as_str)
                        .map(str::to_string),
                    country: a.get("country").and_then(Value::as_str).map(str::to_string),
                    context_keywords: keywords.clone(),
                };
                let candidates = resolver.candidates(&query);
                let matches: Vec<Value> = candidates
                    .iter()
                    .map(|m| {
                        Value::object()
                            .set("display_name", m.candidate.display_name.as_str())
                            .set("affiliation", m.candidate.affiliation.clone())
                            .set("score", m.score)
                            .set(
                                "sources",
                                m.candidate
                                    .sources
                                    .iter()
                                    .map(|k| Value::from(k.to_string()))
                                    .collect::<Vec<_>>(),
                            )
                            .set("publications", m.candidate.publications.len())
                    })
                    .collect();
                results.push(Value::object().set("name", name).set("matches", matches));
            }
            Response::json(200, &Value::object().set("authors", results))
        }),
    );

    let s = state.clone();
    let (tel, route) = t("/recommend");
    router.post(
        route,
        instrumented(tel, route, move |req, _| {
            let body = match req.json_body() {
                Ok(b) => b,
                Err(e) => return Response::error(400, &e.to_string()),
            };
            let (manuscript, config) = match manuscript_from_json(&body, s.minaret.config()) {
                Ok(x) => x,
                Err(e) => return Response::error(422, &e),
            };
            // Cache lookup before any pipeline work: identical
            // (manuscript, config) questions are answered from the
            // stored bytes, so the hit path is byte-identical to the
            // miss that populated it.
            let cached = s
                .result_cache
                .as_ref()
                .map(|c| (c, ResultCache::fingerprint(&manuscript, &config)));
            if let Some((cache, key)) = &cached {
                if let Some(body) = cache.get(*key) {
                    return Response::json_bytes(200, body.as_ref().clone());
                }
            }
            let registry = match scoped_registry(&s.registry, req) {
                Ok(r) => r,
                Err(resp) => return resp,
            };
            // Per-request configuration: a fresh framework view over the same
            // shared registry/ontology (both Arc-shared, so this is cheap).
            let minaret = Minaret::new(registry, s.ontology.clone(), config)
                .with_telemetry(s.telemetry.clone());
            match minaret.recommend(&manuscript) {
                Ok(report) => {
                    let body = report_to_json(&report).to_string().into_bytes();
                    // Degraded answers are deliberately not cached: the
                    // next identical request should retry the full
                    // fan-out rather than pin a partial answer for a TTL.
                    if !report.degraded {
                        if let Some((cache, key)) = &cached {
                            cache.insert(*key, body.clone());
                        }
                    }
                    Response::json_bytes(200, body)
                }
                Err(MinaretError::InvalidManuscript(m)) => Response::error(422, &m),
                Err(MinaretError::NoCandidates) => Response::json(
                    200,
                    &report_empty(&manuscript.title, "no candidate reviewers found"),
                ),
                // Too few sources answered to trust a result: the
                // service is temporarily degraded below the floor.
                Err(e @ MinaretError::SourcesUnavailable { .. }) => {
                    Response::error(503, &e.to_string())
                }
                Err(e) => Response::error(500, &e.to_string()),
            }
        }),
    );

    let s = state.clone();
    let (tel, route) = t("/assign");
    router.post(
        route,
        instrumented(tel, route, move |req, _| {
            let body = match req.json_body() {
                Ok(b) => b,
                Err(e) => return Response::error(400, &e.to_string()),
            };
            let (manuscripts, spec, config) =
                match assign_request_from_json(&body, s.minaret.config()) {
                    Ok(x) => x,
                    Err(e) => return Response::error(422, &e),
                };
            let registry = match scoped_registry(&s.registry, req) {
                Ok(r) => r,
                Err(resp) => return resp,
            };
            let assigner = Assigner::new(
                Minaret::new(registry, s.ontology.clone(), config)
                    .with_telemetry(s.telemetry.clone()),
            )
            .with_telemetry(s.telemetry.clone());
            match assigner.assign(&manuscripts, &spec) {
                Ok(mut solved) => {
                    // Ground-truth coverage is a synthetic-world luxury;
                    // the server always has the world on hand.
                    solved.quality.coverage_at_k =
                        coverage_against_world(&s.world, &manuscripts, &solved);
                    Response::json(200, &assignment_to_json(&solved))
                }
                Err(AssignError::InvalidSpec(m)) => Response::error(422, &m),
                Err(AssignError::Pipeline(MinaretError::InvalidManuscript(m))) => {
                    Response::error(422, &m)
                }
                // A batch with no satisfying assignment is a conflict
                // between the spec and the pool, not a server fault.
                Err(e @ AssignError::Infeasible { .. }) => Response::error(409, &e.to_string()),
                Err(AssignError::Pipeline(MinaretError::NoCandidates)) => {
                    Response::error(409, "no candidate reviewers found for the batch")
                }
                Err(AssignError::Pipeline(e @ MinaretError::SourcesUnavailable { .. })) => {
                    Response::error(503, &e.to_string())
                }
                Err(e) => Response::error(500, &e.to_string()),
            }
        }),
    );

    let s = state.clone();
    let (tel, route) = t("/cache/invalidate");
    router.post(
        route,
        instrumented(tel, route, move |req, _| {
            // No body: drop everything (the world-changed hook). With a
            // manuscript body: drop only that (manuscript, config)
            // fingerprint — the editor edited one submission and wants
            // exactly its cached answer retired.
            if req.body.is_empty() {
                let dropped = s.invalidate_result_cache();
                return Response::json(
                    200,
                    &Value::object()
                        .set("invalidated", dropped as u64)
                        .set("scope", "all"),
                );
            }
            let body = match req.json_body() {
                Ok(b) => b,
                Err(e) => return Response::error(400, &e.to_string()),
            };
            let (manuscript, config) = match manuscript_from_json(&body, s.minaret.config()) {
                Ok(x) => x,
                Err(e) => return Response::error(422, &e),
            };
            let key = ResultCache::fingerprint(&manuscript, &config);
            let dropped = s
                .result_cache
                .as_ref()
                .is_some_and(|cache| cache.invalidate(key));
            Response::json(
                200,
                &Value::object()
                    .set("invalidated", dropped as u64)
                    .set("scope", "single"),
            )
        }),
    );

    let s = state.clone();
    let (tel, route) = t("/metrics");
    router.get(
        route,
        instrumented(tel, route, move |_, _| {
            Response::text(200, s.telemetry.encode_prometheus())
        }),
    );

    let s = state.clone();
    let (tel, route) = t("/traces/recent");
    router.get(
        route,
        instrumented(tel, route, move |_, _| {
            let traces: Vec<Value> = s
                .telemetry
                .recent_traces()
                .iter()
                .map(|trace| {
                    let spans: Vec<Value> = trace
                        .spans
                        .iter()
                        .map(|span| {
                            Value::object()
                                .set("name", span.name.as_str())
                                .set("depth", span.depth as u64)
                                .set("start_micros", span.start_micros)
                                .set("duration_micros", span.duration_micros)
                        })
                        .collect();
                    Value::object()
                        .set("name", trace.name.as_str())
                        .set("started_unix_ms", trace.started_unix_ms)
                        .set("total_micros", trace.total_micros)
                        .set("spans", spans)
                })
                .collect();
            Response::json(200, &Value::object().set("traces", traces))
        }),
    );

    router
}

fn report_empty(title: &str, note: &str) -> Value {
    Value::object()
        .set("title", title)
        .set("recommendations", Vec::<Value>::new())
        .set("note", note)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_http::{Method, Request};

    fn request(method: Method, path: &str, query: &[(&str, &str)], body: &str) -> Request {
        Request {
            method,
            path: path.into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
            minor_version: 1,
            deadline: None,
        }
    }

    fn router() -> (Arc<AppState>, Router) {
        let state = AppState::demo(150, 42);
        let router = build_router(state.clone());
        (state, router)
    }

    #[test]
    fn health_reports_world_stats() {
        let (_, router) = router();
        let resp = router.dispatch(&request(Method::Get, "/health", &[], ""));
        assert_eq!(resp.status, 200);
        let v = minaret_json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(v.get("sources").and_then(Value::as_u64), Some(6));
    }

    #[test]
    fn expand_returns_scored_neighbours() {
        let (_, router) = router();
        let resp = router.dispatch(&request(Method::Get, "/expand", &[("keyword", "RDF")], ""));
        assert_eq!(resp.status, 200);
        let v = minaret_json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let expanded = v.get("expanded").and_then(Value::as_array).unwrap();
        let labels: Vec<&str> = expanded
            .iter()
            .filter_map(|e| e.get("keyword").and_then(Value::as_str))
            .collect();
        assert!(labels.contains(&"Semantic Web"));
        // Unknown keyword -> 404, missing param -> 400.
        let resp = router.dispatch(&request(
            Method::Get,
            "/expand",
            &[("keyword", "flower arranging")],
            "",
        ));
        assert_eq!(resp.status, 404);
        let resp = router.dispatch(&request(Method::Get, "/expand", &[], ""));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn verify_authors_returns_matches() {
        let (state, router) = router();
        let scholar = &state.world.scholars()[0];
        let body = Value::object()
            .set(
                "authors",
                vec![Value::object().set("name", scholar.full_name().as_str())],
            )
            .set("keywords", Vec::<Value>::new())
            .to_string();
        let resp = router.dispatch(&request(Method::Post, "/verify-authors", &[], &body));
        assert_eq!(resp.status, 200);
        let v = minaret_json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let authors = v.get("authors").and_then(Value::as_array).unwrap();
        assert_eq!(authors.len(), 1);
        assert!(
            !authors[0]
                .get("matches")
                .and_then(Value::as_array)
                .unwrap()
                .is_empty(),
            "expected at least one identity match"
        );
    }

    #[test]
    fn recommend_end_to_end() {
        let (state, router) = router();
        let lead = state
            .world
            .scholars()
            .iter()
            .find(|s| !state.world.papers_of(s.id).is_empty())
            .unwrap();
        let keywords: Vec<Value> = lead
            .interests
            .iter()
            .take(2)
            .map(|&t| Value::from(state.world.ontology.label(t)))
            .collect();
        let body = Value::object()
            .set("title", "An HTTP-submitted manuscript")
            .set("keywords", keywords)
            .set(
                "authors",
                vec![Value::object().set("name", lead.full_name().as_str())],
            )
            .set("target_venue", state.world.venues()[0].name.as_str())
            .set("config", Value::object().set("max_recommendations", 5u32))
            .to_string();
        let resp = router.dispatch(&request(Method::Post, "/recommend", &[], &body));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let v = minaret_json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let recs = v.get("recommendations").and_then(Value::as_array).unwrap();
        assert!(!recs.is_empty() && recs.len() <= 5);
        assert!(recs[0].get("score_details").is_some());
        assert!(v.get("timings_ms").is_some());
        assert_eq!(v.get("degraded").and_then(Value::as_bool), Some(false));
        assert!(v
            .get("degraded_sources")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (_, router) = router();
        router.dispatch(&request(Method::Get, "/health", &[], ""));
        let resp = router.dispatch(&request(Method::Get, "/metrics", &[], ""));
        assert_eq!(resp.status, 200);
        assert!(resp
            .headers
            .iter()
            .any(|(k, v)| k == "Content-Type" && v.starts_with("text/plain")));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(
            text.contains("minaret_http_requests_total{route=\"/health\",status=\"200\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("minaret_http_request_micros_count{route=\"/health\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn traces_endpoint_reports_pipeline_spans() {
        let (state, router) = router();
        let lead = state
            .world
            .scholars()
            .iter()
            .find(|s| !state.world.papers_of(s.id).is_empty())
            .unwrap();
        let keywords: Vec<Value> = lead
            .interests
            .iter()
            .take(2)
            .map(|&t| Value::from(state.world.ontology.label(t)))
            .collect();
        let body = Value::object()
            .set("title", "Traced manuscript")
            .set("keywords", keywords)
            .set(
                "authors",
                vec![Value::object().set("name", lead.full_name().as_str())],
            )
            .set("target_venue", state.world.venues()[0].name.as_str())
            .to_string();
        let resp = router.dispatch(&request(Method::Post, "/recommend", &[], &body));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));

        let resp = router.dispatch(&request(Method::Get, "/traces/recent", &[], ""));
        assert_eq!(resp.status, 200);
        let v = minaret_json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let traces = v.get("traces").and_then(Value::as_array).unwrap();
        assert_eq!(traces.len(), 1);
        assert_eq!(
            traces[0].get("name").and_then(Value::as_str),
            Some("recommend")
        );
        let spans = traces[0].get("spans").and_then(Value::as_array).unwrap();
        let names: Vec<&str> = spans
            .iter()
            .filter_map(|s| s.get("name").and_then(Value::as_str))
            .collect();
        assert_eq!(names, ["extraction", "filtering", "ranking"]);
    }

    #[test]
    fn recommend_repeats_are_served_from_cache_and_invalidatable() {
        let (state, router) = router();
        let lead = state
            .world
            .scholars()
            .iter()
            .find(|s| !state.world.papers_of(s.id).is_empty())
            .unwrap();
        let keywords: Vec<Value> = lead
            .interests
            .iter()
            .take(2)
            .map(|&t| Value::from(state.world.ontology.label(t)))
            .collect();
        let body = Value::object()
            .set("title", "A cached manuscript")
            .set("keywords", keywords)
            .set(
                "authors",
                vec![Value::object().set("name", lead.full_name().as_str())],
            )
            .set("target_venue", state.world.venues()[0].name.as_str())
            .to_string();
        let first = router.dispatch(&request(Method::Post, "/recommend", &[], &body));
        assert_eq!(
            first.status,
            200,
            "{}",
            String::from_utf8_lossy(&first.body)
        );
        let second = router.dispatch(&request(Method::Post, "/recommend", &[], &body));
        assert_eq!(second.status, 200);
        assert_eq!(first.body, second.body, "cache hit must be byte-identical");
        assert_eq!(
            state
                .telemetry
                .counter("minaret_result_cache_hits_total", &[])
                .get(),
            1
        );
        let resp = router.dispatch(&request(Method::Post, "/cache/invalidate", &[], ""));
        assert_eq!(resp.status, 200);
        let v = minaret_json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("invalidated").and_then(Value::as_u64), Some(1));
        assert!(state.result_cache.as_ref().unwrap().is_empty());
    }

    #[test]
    fn scoped_invalidation_drops_only_the_fingerprinted_entry() {
        let (state, router) = router();
        let lead = state
            .world
            .scholars()
            .iter()
            .find(|s| !state.world.papers_of(s.id).is_empty())
            .unwrap();
        let keywords: Vec<Value> = lead
            .interests
            .iter()
            .take(2)
            .map(|&t| Value::from(state.world.ontology.label(t)))
            .collect();
        let make_body = |title: &str| {
            Value::object()
                .set("title", title)
                .set("keywords", keywords.clone())
                .set(
                    "authors",
                    vec![Value::object().set("name", lead.full_name().as_str())],
                )
                .set("target_venue", state.world.venues()[0].name.as_str())
                .to_string()
        };
        let body_a = make_body("Submission A");
        let body_b = make_body("Submission B");
        assert_eq!(
            router
                .dispatch(&request(Method::Post, "/recommend", &[], &body_a))
                .status,
            200
        );
        assert_eq!(
            router
                .dispatch(&request(Method::Post, "/recommend", &[], &body_b))
                .status,
            200
        );
        assert_eq!(state.result_cache.as_ref().unwrap().len(), 2);

        // Scoped invalidation of A: only A's entry goes.
        let resp = router.dispatch(&request(Method::Post, "/cache/invalidate", &[], &body_a));
        assert_eq!(resp.status, 200);
        let v = minaret_json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("invalidated").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("scope").and_then(Value::as_str), Some("single"));
        assert_eq!(state.result_cache.as_ref().unwrap().len(), 1);

        // Invalidating it again is a counted miss, not an error.
        let resp = router.dispatch(&request(Method::Post, "/cache/invalidate", &[], &body_a));
        let v = minaret_json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("invalidated").and_then(Value::as_u64), Some(0));
        let miss = state.telemetry.counter(
            "minaret_result_cache_invalidations_total",
            &[("scope", "single"), ("outcome", "miss")],
        );
        assert_eq!(miss.get(), 1);

        // Malformed scoped bodies are rejected, not treated as "all".
        let resp = router.dispatch(&request(
            Method::Post,
            "/cache/invalidate",
            &[],
            "{not json",
        ));
        assert_eq!(resp.status, 400);
        let resp = router.dispatch(&request(
            Method::Post,
            "/cache/invalidate",
            &[],
            r#"{"keywords":[]}"#,
        ));
        assert_eq!(resp.status, 422);
        assert_eq!(state.result_cache.as_ref().unwrap().len(), 1, "B survives");

        // Empty body still clears everything.
        let resp = router.dispatch(&request(Method::Post, "/cache/invalidate", &[], ""));
        let v = minaret_json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("scope").and_then(Value::as_str), Some("all"));
        assert_eq!(v.get("invalidated").and_then(Value::as_u64), Some(1));
        assert!(state.result_cache.as_ref().unwrap().is_empty());
    }

    fn assign_body(state: &AppState, papers: usize, k: u64, max_load: u64) -> String {
        let manuscripts: Vec<Value> = state
            .world
            .scholars()
            .iter()
            .filter(|s| !state.world.papers_of(s.id).is_empty())
            .take(papers)
            .map(|lead| {
                let keywords: Vec<Value> = lead
                    .interests
                    .iter()
                    .take(2)
                    .map(|&t| Value::from(state.world.ontology.label(t)))
                    .collect();
                Value::object()
                    .set("title", format!("Batch paper by {}", lead.full_name()))
                    .set("keywords", keywords)
                    .set(
                        "authors",
                        vec![Value::object().set("name", lead.full_name().as_str())],
                    )
                    .set("target_venue", state.world.venues()[0].name.as_str())
            })
            .collect();
        Value::object()
            .set("manuscripts", manuscripts)
            .set(
                "spec",
                Value::object()
                    .set("reviewers_per_paper", k)
                    .set("max_load", max_load),
            )
            .to_string()
    }

    #[test]
    fn assign_end_to_end() {
        let (state, router) = router();
        let body = assign_body(&state, 3, 2, 4);
        let resp = router.dispatch(&request(Method::Post, "/assign", &[], &body));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let v = minaret_json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let papers = v.get("papers").and_then(Value::as_array).unwrap();
        assert_eq!(papers.len(), 3);
        for p in papers {
            let reviewers = p.get("reviewers").and_then(Value::as_array).unwrap();
            assert_eq!(reviewers.len(), 2, "exactly k reviewers per paper");
        }
        let loads = v.get("loads").and_then(Value::as_array).unwrap();
        assert!(!loads.is_empty());
        for l in loads {
            assert!(l.get("load").and_then(Value::as_u64).unwrap() <= 4);
        }
        let total = v.get("total_score").and_then(Value::as_f64).unwrap();
        let greedy = v.get("greedy_total").and_then(Value::as_f64).unwrap();
        assert!(
            total >= greedy - 1e-9,
            "flow below greedy: {total} < {greedy}"
        );
        let quality = v.get("quality").unwrap();
        assert!(
            quality
                .get("mean_relevance")
                .and_then(Value::as_f64)
                .unwrap()
                > 0.0
        );
        assert!(quality
            .get("coverage_at_k")
            .and_then(Value::as_f64)
            .is_some());
        assert_eq!(
            state
                .telemetry
                .counter("minaret_assign_total", &[("result", "ok")])
                .get(),
            1
        );
    }

    #[test]
    fn assign_infeasible_spec_is_a_409() {
        let (state, router) = router();
        let body = assign_body(&state, 3, 400, 1);
        let resp = router.dispatch(&request(Method::Post, "/assign", &[], &body));
        assert_eq!(resp.status, 409, "{}", String::from_utf8_lossy(&resp.body));
        assert!(String::from_utf8_lossy(&resp.body).contains("infeasible"));
    }

    #[test]
    fn assign_rejects_bad_bodies() {
        let (state, router) = router();
        let resp = router.dispatch(&request(Method::Post, "/assign", &[], "{not json"));
        assert_eq!(resp.status, 400);
        let resp = router.dispatch(&request(Method::Post, "/assign", &[], r#"{"spec":{}}"#));
        assert_eq!(resp.status, 422, "missing manuscripts array");
        // A zero spec field is rejected before any fan-out.
        let mut body = assign_body(&state, 1, 2, 3);
        body = body.replace("\"reviewers_per_paper\":2", "\"reviewers_per_paper\":0");
        let resp = router.dispatch(&request(Method::Post, "/assign", &[], &body));
        assert_eq!(resp.status, 422, "{}", String::from_utf8_lossy(&resp.body));
    }

    #[test]
    fn assign_respects_exhausted_deadlines() {
        let (state, router) = router();
        let body = assign_body(&state, 2, 2, 3);
        let mut req = request(Method::Post, "/assign", &[], &body);
        req.deadline = Some(Instant::now());
        let resp = router.dispatch(&req);
        assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
        assert!(resp
            .headers
            .iter()
            .any(|(k, v)| k == "Retry-After" && v == "1"));
    }

    #[test]
    fn expired_deadline_is_shed_before_fan_out() {
        let (_, router) = router();
        let body =
            r#"{"title":"T","keywords":["RDF"],"authors":[{"name":"A B"}],"target_venue":"J"}"#;
        let mut req = request(Method::Post, "/recommend", &[], body);
        // A deadline of "now" is already exhausted by dispatch time.
        req.deadline = Some(Instant::now());
        let resp = router.dispatch(&req);
        assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
        assert!(
            resp.headers
                .iter()
                .any(|(k, v)| k == "Retry-After" && v == "1"),
            "shed responses carry Retry-After"
        );
    }

    #[test]
    fn recommend_rejects_bad_bodies() {
        let (_, router) = router();
        let resp = router.dispatch(&request(Method::Post, "/recommend", &[], "{not json"));
        assert_eq!(resp.status, 400);
        let resp = router.dispatch(&request(
            Method::Post,
            "/recommend",
            &[],
            r#"{"keywords":[],"authors":[]}"#,
        ));
        assert_eq!(resp.status, 422);
        // Valid shape but empty title -> validation error.
        let resp = router.dispatch(&request(
            Method::Post,
            "/recommend",
            &[],
            r#"{"title":"","keywords":["RDF"],"authors":[{"name":"A B"}],"target_venue":"J"}"#,
        ));
        assert_eq!(resp.status, 422);
    }
}
