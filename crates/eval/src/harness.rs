//! Shared experiment setup: world + sources + framework in one call.

use std::sync::Arc;

use minaret_core::{EditorConfig, Minaret};
use minaret_ontology::{seed::curated_cs_ontology, Ontology};
use minaret_scholarly::{
    CachingSource, FaultSchedule, RegistryConfig, ScholarSource, SimulatedSource, SourceKind,
    SourceRegistry, SourceSpec,
};
use minaret_synth::{SubmissionGenerator, SubmissionSpec, World, WorldConfig, WorldGenerator};

/// Scenario parameters for one experiment context.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// World-generation parameters.
    pub world: WorldConfig,
    /// Editor configuration for the framework.
    pub editor: EditorConfig,
    /// Per-source latency in microseconds (0 = instant, for pure
    /// algorithmic experiments; E6 raises it to scraping scale).
    pub source_latency_micros: u64,
    /// Per-call transient failure probability injected into each source.
    pub source_failure_rate: f64,
    /// Whether to wrap sources in the read-through cache.
    pub cached: bool,
    /// Registry behaviour: retries, concurrency, and the resilience
    /// policy (deadlines, backoff, circuit breakers).
    pub registry: RegistryConfig,
    /// Sources scripted as permanently dead (degraded-mode scenarios).
    pub dead_sources: Vec<SourceKind>,
    /// Worker threads for the pipeline's filter/rank phases (`0` = all
    /// cores, `1` = sequential). Output is identical either way; the E7
    /// addendum sweeps this to measure phase-level scaling.
    pub pipeline_parallelism: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            world: WorldConfig::default(),
            editor: EditorConfig::default(),
            source_latency_micros: 0,
            source_failure_rate: 0.0,
            cached: false,
            registry: RegistryConfig::default(),
            dead_sources: Vec::new(),
            pipeline_parallelism: 0,
        }
    }
}

impl ScenarioConfig {
    /// A scenario over a world with `scholars` scholars.
    pub fn sized(scholars: usize) -> Self {
        Self {
            world: WorldConfig::sized(scholars),
            ..Default::default()
        }
    }
}

/// A fully wired experiment context.
pub struct EvalContext {
    /// The ground-truth world.
    pub world: Arc<World>,
    /// The source registry the framework queries.
    pub registry: Arc<SourceRegistry>,
    /// Cache handles (present when the scenario enabled caching), in
    /// source registration order.
    pub caches: Vec<Arc<CachingSource>>,
    /// The ontology used for expansion.
    pub ontology: Arc<Ontology>,
    /// The framework under test.
    pub minaret: Minaret,
    /// The scenario this context was built from.
    pub scenario: ScenarioConfig,
}

impl EvalContext {
    /// Builds the context: generates the world, instantiates the six
    /// sources (optionally latency/failure-injected and cached), and
    /// wires the framework.
    pub fn build(scenario: ScenarioConfig) -> Self {
        let world = Arc::new(WorldGenerator::new(scenario.world.clone()).generate());
        let ontology = Arc::new(curated_cs_ontology());
        let mut registry = SourceRegistry::new(scenario.registry);
        let mut caches = Vec::new();
        for mut spec in SourceSpec::all_defaults() {
            spec.latency_micros = scenario.source_latency_micros;
            spec.failure_rate = scenario.source_failure_rate;
            let kind = spec.kind;
            let mut sim = SimulatedSource::new(spec, world.clone());
            if scenario.dead_sources.contains(&kind) {
                sim = sim.with_fault(FaultSchedule::PermanentOutage);
            }
            let sim: Arc<dyn ScholarSource> = Arc::new(sim);
            if scenario.cached {
                let cached = Arc::new(CachingSource::new(sim));
                caches.push(cached.clone());
                registry.register(cached);
            } else {
                registry.register(sim);
            }
        }
        let registry = Arc::new(registry);
        let minaret = Minaret::new(registry.clone(), ontology.clone(), scenario.editor.clone())
            .with_parallelism(scenario.pipeline_parallelism);
        Self {
            world,
            registry,
            caches,
            ontology,
            minaret,
            scenario,
        }
    }

    /// Generates `n` ground-truthed submissions from the world.
    pub fn submissions(&self, n: usize, seed: u64) -> Vec<SubmissionSpec> {
        SubmissionGenerator::new(&self.world, seed).generate_many(n)
    }

    /// Converts a synthetic submission into the editor's form input.
    pub fn manuscript_for(&self, sub: &SubmissionSpec) -> minaret_core::ManuscriptDetails {
        minaret_core::ManuscriptDetails {
            title: sub.title.clone(),
            keywords: sub.keywords.clone(),
            authors: sub
                .authors
                .iter()
                .map(|&id| {
                    let s = self.world.scholar(id);
                    let inst = self.world.institution(s.current_affiliation());
                    minaret_core::AuthorInput {
                        name: s.full_name(),
                        affiliation: Some(inst.name.clone()),
                        country: Some(inst.country.clone()),
                    }
                })
                .collect(),
            target_venue: self.world.venue(sub.target_venue).name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_and_recommends() {
        let ctx = EvalContext::build(ScenarioConfig::sized(200));
        assert_eq!(ctx.registry.len(), 6);
        assert!(ctx.caches.is_empty());
        let subs = ctx.submissions(3, 1);
        assert_eq!(subs.len(), 3);
        let m = ctx.manuscript_for(&subs[0]);
        assert!(m.validate().is_ok());
        let report = ctx.minaret.recommend(&m).unwrap();
        assert!(!report.recommendations.is_empty());
    }

    #[test]
    fn cached_scenario_exposes_cache_handles() {
        let mut scenario = ScenarioConfig::sized(100);
        scenario.cached = true;
        let ctx = EvalContext::build(scenario);
        assert_eq!(ctx.caches.len(), 6);
        let subs = ctx.submissions(1, 2);
        let m = ctx.manuscript_for(&subs[0]);
        ctx.minaret.recommend(&m).unwrap();
        let total_misses: u64 = ctx.caches.iter().map(|c| c.stats().misses).sum();
        assert!(total_misses > 0);
    }
}
