//! Ranking-quality metrics.
//!
//! All functions take the *graded relevance* of a ranked list (relevance
//! of the item at position i, best-first) and, where needed, the ideal
//! relevance pool. Binary metrics threshold the grades.

/// Precision@k: fraction of the top-k with relevance above `threshold`.
pub fn precision_at_k(relevances: &[f64], k: usize, threshold: f64) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let top = &relevances[..k.min(relevances.len())];
    if top.is_empty() {
        return 0.0;
    }
    top.iter().filter(|&&r| r > threshold).count() as f64 / k as f64
}

/// Recall@k: fraction of all `total_relevant` items that appear in the
/// top-k (by the same threshold).
pub fn recall_at_k(relevances: &[f64], k: usize, total_relevant: usize, threshold: f64) -> f64 {
    if total_relevant == 0 {
        return 0.0;
    }
    let top = &relevances[..k.min(relevances.len())];
    // Clamped: callers passing a `total_relevant` inconsistent with the
    // ranked list (possible when the list comes from a noisier view than
    // the pool) must not report recall > 1.
    (top.iter().filter(|&&r| r > threshold).count() as f64 / total_relevant as f64).min(1.0)
}

/// Discounted cumulative gain at k.
pub fn dcg_at_k(relevances: &[f64], k: usize) -> f64 {
    relevances
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &r)| r / ((i + 2) as f64).log2())
        .sum()
}

/// Normalized DCG@k. `ideal_pool` is the relevance of every candidate in
/// the universe (any order); the ideal ranking is its descending sort.
pub fn ndcg_at_k(relevances: &[f64], ideal_pool: &[f64], k: usize) -> f64 {
    let mut ideal = ideal_pool.to_vec();
    ideal.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let idcg = dcg_at_k(&ideal, k);
    if idcg <= 0.0 {
        return 0.0;
    }
    (dcg_at_k(relevances, k) / idcg).min(1.0)
}

/// Mean reciprocal rank of the first item above `threshold`.
pub fn reciprocal_rank(relevances: &[f64], threshold: f64) -> f64 {
    relevances
        .iter()
        .position(|&r| r > threshold)
        .map(|i| 1.0 / (i + 1) as f64)
        .unwrap_or(0.0)
}

/// Kendall's tau-a rank correlation between two rankings of the same item
/// set. Items are identified by the value at each position of `a` and
/// `b`; items present in only one ranking are ignored. Returns a value in
/// `[-1, 1]`; `1.0` for identical orders, `-1.0` for reversed. Returns
/// `1.0` when fewer than two common items exist (no evidence of
/// disagreement).
pub fn kendall_tau<T: Eq + std::hash::Hash + Clone>(a: &[T], b: &[T]) -> f64 {
    use std::collections::HashMap;
    let pos_b: HashMap<&T, usize> = b.iter().enumerate().map(|(i, x)| (x, i)).collect();
    let common: Vec<usize> = a.iter().filter_map(|x| pos_b.get(x).copied()).collect();
    let n = common.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            if common[i] < common[j] {
                concordant += 1;
            } else if common[i] > common[j] {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Gini coefficient of a non-negative distribution (reviewer loads in
/// the batch-assignment workload): `0.0` for perfectly even loads,
/// approaching `1.0` as one reviewer carries everything. Empty or
/// all-zero input yields `0.0`.
pub fn gini(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = xs.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // Gini = (2·Σ i·x_(i) / (n·Σ x)) − (n+1)/n, with 1-based ranks i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i + 1) as f64 * x)
        .sum();
    (2.0 * weighted / (n as f64 * total) - (n as f64 + 1.0) / n as f64).max(0.0)
}

/// Mean of a slice; `0.0` when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn precision_counts_threshold_exceedances() {
        let rels = [1.0, 0.0, 0.6, 0.0, 0.9];
        assert!((precision_at_k(&rels, 5, 0.5) - 3.0 / 5.0).abs() < 1e-12);
        assert!((precision_at_k(&rels, 1, 0.5) - 1.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&rels, 0, 0.5), 0.0);
        // k larger than the list divides by k, penalizing short lists.
        assert!((precision_at_k(&[1.0], 5, 0.5) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn recall_divides_by_pool() {
        let rels = [1.0, 0.0, 0.6];
        assert!((recall_at_k(&rels, 3, 4, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(recall_at_k(&rels, 3, 0, 0.5), 0.0);
    }

    #[test]
    fn ndcg_is_one_for_ideal_ranking() {
        let pool = [0.9, 0.5, 0.2, 0.0];
        let ranked = [0.9, 0.5, 0.2, 0.0];
        assert!((ndcg_at_k(&ranked, &pool, 4) - 1.0).abs() < 1e-12);
        let reversed = [0.0, 0.2, 0.5, 0.9];
        assert!(ndcg_at_k(&reversed, &pool, 4) < 1.0);
    }

    #[test]
    fn ndcg_empty_pool_is_zero() {
        assert_eq!(ndcg_at_k(&[0.5], &[], 3), 0.0);
        assert_eq!(ndcg_at_k(&[0.5], &[0.0, 0.0], 3), 0.0);
    }

    #[test]
    fn reciprocal_rank_finds_first_hit() {
        assert_eq!(reciprocal_rank(&[0.0, 0.0, 0.9], 0.5), 1.0 / 3.0);
        assert_eq!(reciprocal_rank(&[0.9], 0.5), 1.0);
        assert_eq!(reciprocal_rank(&[0.1, 0.2], 0.5), 0.0);
    }

    #[test]
    fn kendall_tau_extremes() {
        let a = [1, 2, 3, 4];
        let rev = [4, 3, 2, 1];
        assert!((kendall_tau(&a, &a) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&a, &rev) + 1.0).abs() < 1e-12);
        // One swap out of 6 pairs: (6-2*1-... ) -> (5-1)/6
        let swapped = [2, 1, 3, 4];
        assert!((kendall_tau(&a, &swapped) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_ignores_noncommon_items() {
        let a = [1, 2, 3, 99];
        let b = [1, 2, 3, 100];
        assert!((kendall_tau(&a, &b) - 1.0).abs() < 1e-12);
        // Degenerate: no overlap.
        assert_eq!(kendall_tau(&[1, 2], &[3, 4]), 1.0);
    }

    #[test]
    fn gini_extremes_and_bounds() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        // Perfectly even loads.
        assert!(gini(&[3.0, 3.0, 3.0, 3.0]).abs() < 1e-12);
        // One reviewer carries everything: (n-1)/n.
        assert!((gini(&[0.0, 0.0, 0.0, 8.0]) - 0.75).abs() < 1e-12);
        // Order-invariant.
        assert!((gini(&[1.0, 5.0, 2.0]) - gini(&[5.0, 1.0, 2.0])).abs() < 1e-12);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn metrics_are_bounded(rels in proptest::collection::vec(0.0f64..=1.0, 0..20), k in 1usize..25) {
            prop_assert!((0.0..=1.0).contains(&precision_at_k(&rels, k, 0.5)));
            prop_assert!((0.0..=1.0).contains(&recall_at_k(&rels, k, 10, 0.5)));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ndcg_at_k(&rels, &rels, k)));
            prop_assert!((0.0..=1.0).contains(&reciprocal_rank(&rels, 0.5)));
        }

        #[test]
        fn tau_symmetric(perm in Just(()).prop_flat_map(|_| proptest::sample::subsequence((0..10u32).collect::<Vec<_>>(), 2..10))) {
            let mut rev = perm.clone();
            rev.reverse();
            let t1 = kendall_tau(&perm, &rev);
            let t2 = kendall_tau(&rev, &perm);
            prop_assert!((t1 - t2).abs() < 1e-12);
        }
    }
}
