//! Minimal plain-text table rendering for experiment reports.

/// A left-aligned text table with a header row.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// are truncated to the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut r: Vec<String> = cells.iter().take(self.header.len()).cloned().collect();
        while r.len() < self.header.len() {
            r.push(String::new());
        }
        self.rows.push(r);
        self
    }

    /// Convenience for rows of displayable values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column widths fitted to content.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an `f64` with 3 decimal places (the convention for scores in
/// the experiment reports).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["method", "p@5"]);
        t.row(&["minaret".into(), "0.80".into()]);
        t.row(&["random".into(), "0.10".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only".into()]);
        t.row(&["x".into(), "y".into(), "extra".into()]);
        let s = t.render();
        assert!(s.contains("only"));
        assert!(!s.contains("extra"));
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f3(1.0), "1.000");
    }
}
