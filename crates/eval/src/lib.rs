//! Evaluation harness for the MINARET reproduction.
//!
//! The demo paper shows no quantitative evaluation; this crate supplies
//! the experiments a credible release needs and regenerates the paper's
//! own figures. Each experiment in `DESIGN.md`'s index has a runner here
//! (module [`experiments`]) that returns both structured results and a
//! printable report; the `experiments` example binary and the Criterion
//! benches are thin wrappers over these runners.
//!
//! * [`metrics`] — precision/recall@k, nDCG, MRR, Kendall's tau.
//! * [`harness`] — builds a world + sources + framework for a scenario.
//! * [`experiments`] — one runner per experiment id (F1–F5, E1–E8).
//! * [`table`] — plain-text table rendering for reports.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod table;
