//! E5 — weight-sensitivity ablation: how much does each of the five
//! ranking components actually move the final ordering?

use minaret_core::{EditorConfig, Minaret, RankingWeights};

use crate::harness::{EvalContext, ScenarioConfig};
use crate::metrics::{kendall_tau, mean};
use crate::table::{f3, TextTable};

/// Result of experiment E5.
#[derive(Debug)]
pub struct E5Result {
    /// `(component, mean Kendall tau vs. default ranking when the
    /// component's weight is zeroed)` — lower tau = the component
    /// matters more.
    pub zeroed_tau: Vec<(String, f64)>,
    /// `(component, mean tau when the component's weight is tripled)`.
    pub boosted_tau: Vec<(String, f64)>,
    /// Rendered report.
    pub report: String,
}

fn with_weight(base: RankingWeights, component: &str, value: f64) -> RankingWeights {
    let mut w = base;
    match component {
        "coverage" => w.coverage = value,
        "impact" => w.impact = value,
        "recency" => w.recency = value,
        "experience" => w.experience = value,
        "familiarity" => w.familiarity = value,
        "responsiveness" => w.responsiveness = value,
        _ => unreachable!("unknown component {component}"),
    }
    w
}

fn base_value(base: RankingWeights, component: &str) -> f64 {
    match component {
        "coverage" => base.coverage,
        "impact" => base.impact,
        "recency" => base.recency,
        "experience" => base.experience,
        "familiarity" => base.familiarity,
        "responsiveness" => base.responsiveness,
        _ => unreachable!(),
    }
}

/// Runs the weight-sensitivity sweep.
pub fn run_e5(scholars: usize, manuscripts: usize) -> E5Result {
    let ctx = EvalContext::build(ScenarioConfig::sized(scholars));
    let subs = ctx.submissions(manuscripts, 0xE5);
    let components = [
        "coverage",
        "impact",
        "recency",
        "experience",
        "familiarity",
        "responsiveness",
    ];
    let defaults = RankingWeights::default();

    let rank_names = |minaret: &Minaret| -> Vec<Vec<String>> {
        subs.iter()
            .filter_map(|sub| {
                let m = ctx.manuscript_for(sub);
                minaret
                    .recommend(&m)
                    .ok()
                    .map(|r| r.recommendations.into_iter().map(|rec| rec.name).collect())
            })
            .collect()
    };

    let baseline_minaret = Minaret::new(
        ctx.registry.clone(),
        ctx.ontology.clone(),
        EditorConfig::default(),
    );
    let baseline = rank_names(&baseline_minaret);

    let mut zeroed_tau = Vec::new();
    let mut boosted_tau = Vec::new();
    for comp in components {
        for (value_kind, out) in [("zero", &mut zeroed_tau), ("boost", &mut boosted_tau)] {
            let value = match value_kind {
                "zero" => 0.0,
                // Components weighted 0 by default (responsiveness) get a
                // meaningful boost rather than 3 × 0.
                _ => (base_value(defaults, comp) * 3.0).max(0.3),
            };
            let cfg = EditorConfig {
                weights: with_weight(defaults, comp, value),
                ..Default::default()
            };
            let variant = Minaret::new(ctx.registry.clone(), ctx.ontology.clone(), cfg);
            let rankings = rank_names(&variant);
            let taus: Vec<f64> = baseline
                .iter()
                .zip(&rankings)
                .map(|(a, b)| kendall_tau(a, b))
                .collect();
            out.push((comp.to_string(), mean(&taus)));
        }
    }

    let mut table = TextTable::new(&["component", "tau (weight=0)", "tau (weight×3)"]);
    for i in 0..components.len() {
        table.row(&[
            components[i].to_string(),
            f3(zeroed_tau[i].1),
            f3(boosted_tau[i].1),
        ]);
    }
    let report = format!(
        "E5  ranking-weight sensitivity ({scholars} scholars, {manuscripts} manuscripts)\n\
         Kendall tau between the default ranking and the perturbed ranking; lower = component matters more\n{}",
        table.render()
    );
    E5Result {
        zeroed_tau,
        boosted_tau,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_perturbations_change_rankings_but_not_wildly() {
        let r = run_e5(200, 4);
        assert_eq!(r.zeroed_tau.len(), 6);
        assert_eq!(r.boosted_tau.len(), 6);
        for (comp, tau) in r.zeroed_tau.iter().chain(&r.boosted_tau) {
            assert!(
                (-1.0..=1.0).contains(tau),
                "tau out of range for {comp}: {tau}"
            );
        }
        // Zeroing the dominant component (coverage) must shuffle the
        // ranking at least somewhat.
        let coverage_tau = r
            .zeroed_tau
            .iter()
            .find(|(c, _)| c == "coverage")
            .unwrap()
            .1;
        assert!(coverage_tau < 0.999, "zeroing coverage changed nothing");
    }
}
