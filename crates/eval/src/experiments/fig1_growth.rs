//! F1 — Figure 1: DBLP new records per year by publication type.

use minaret_synth::growth::{GrowthModel, RecordKind};

use crate::table::TextTable;

/// Result of experiment F1.
#[derive(Debug)]
pub struct F1Result {
    /// `(year, per-kind records)` series, kinds in [`RecordKind::ALL`]
    /// order.
    pub series: Vec<(u32, Vec<f64>)>,
    /// Cumulative records through the reference year (paper: "over
    /// 3.8M publications").
    pub cumulative_total: f64,
    /// Journal articles added in the reference year (paper: "about 120K
    /// articles" in 2018).
    pub journal_articles_reference_year: f64,
    /// Rendered report.
    pub report: String,
}

/// Regenerates the Figure 1 series from the calibrated growth model.
pub fn run_f1() -> F1Result {
    let model = GrowthModel::default();
    let end = model.reference_year;
    let mut series = Vec::new();
    let mut table = TextTable::new(&[
        "year",
        "journal",
        "conference",
        "informal",
        "books",
        "editorship",
        "in-collection",
        "reference",
        "total",
    ]);
    for year in (model.start_year..=end).step_by(2) {
        let per_kind: Vec<f64> = RecordKind::ALL
            .iter()
            .map(|&k| model.records_of_kind(year, k))
            .collect();
        let total: f64 = per_kind.iter().sum();
        let mut row: Vec<String> = vec![year.to_string()];
        row.extend(per_kind.iter().map(|v| format!("{:.0}", v / 1000.0)));
        row.push(format!("{:.0}", total / 1000.0));
        table.row(&row);
        series.push((year, per_kind));
    }
    let cumulative_total = model.cumulative_through(end);
    let journal = model.records_of_kind(end, RecordKind::JournalArticle);
    let report = format!(
        "F1  DBLP-style new records per year (thousands), doubling every {} years\n{}\n\
         cumulative records through {}: {:.2}M (paper: >3.8M)\n\
         journal articles in {}: {:.0}K (paper: ~120K)\n",
        model.doubling_years,
        table.render(),
        end,
        cumulative_total / 1e6,
        end,
        journal / 1e3,
    );
    F1Result {
        series,
        cumulative_total,
        journal_articles_reference_year: journal,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_matches_paper_scale() {
        let r = run_f1();
        assert!((r.journal_articles_reference_year - 120_000.0).abs() < 1.0);
        assert!(r.cumulative_total > 3_000_000.0);
        assert!(r.report.contains("120K"));
        assert!(!r.series.is_empty());
        // Each series row has one entry per record kind.
        for (_, kinds) in &r.series {
            assert_eq!(kinds.len(), minaret_synth::growth::RecordKind::ALL.len());
        }
    }

    #[test]
    fn f1_series_grows_over_time() {
        let r = run_f1();
        let first: f64 = r.series.first().unwrap().1.iter().sum();
        let last: f64 = r.series.last().unwrap().1.iter().sum();
        assert!(last > first * 4.0, "28 years at 9-year doubling ≈ 8×");
    }
}
