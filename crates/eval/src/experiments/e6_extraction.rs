//! E6 — what on-the-fly extraction costs, and what the per-run cache
//! buys back, under web-scraping-scale latency and transient failures.

use std::time::Duration;

use minaret_scholarly::{BreakerConfig, RegistryConfig, ResilienceConfig, SourceKind};
use minaret_synth::WorldConfig;

use crate::harness::{EvalContext, ScenarioConfig};
use crate::table::TextTable;

/// Result of experiment E6.
#[derive(Debug)]
pub struct E6Result {
    /// Wall-clock of the cold run (empty caches).
    pub cold: Duration,
    /// Wall-clock of the warm run (same manuscript again).
    pub warm: Duration,
    /// Cache hit ratio after the warm run.
    pub hit_ratio: f64,
    /// Registry call counters after both runs.
    pub calls: u64,
    /// Retries absorbed (injected transient failures).
    pub retries: u64,
    /// Wall-clock of the cold run with Publons scripted permanently dead.
    pub degraded_cold: Duration,
    /// Wall-clock of the warm degraded run (cache hot, breaker open).
    pub degraded_warm: Duration,
    /// Calls the open breaker rejected across both degraded runs.
    pub short_circuited: u64,
    /// Rendered report.
    pub report: String,
}

/// Runs the cold/warm extraction comparison.
///
/// `latency_micros` is the simulated per-call source latency; real
/// scraping sits at 10⁵–10⁶ µs, unit tests pass 0–500.
pub fn run_e6(scholars: usize, latency_micros: u64, failure_rate: f64) -> E6Result {
    let ctx = EvalContext::build(ScenarioConfig {
        world: WorldConfig::sized(scholars),
        source_latency_micros: latency_micros,
        source_failure_rate: failure_rate,
        cached: true,
        ..Default::default()
    });
    let sub = ctx.submissions(1, 0xE6).pop().expect("submission");
    let m = ctx.manuscript_for(&sub);

    let t0 = std::time::Instant::now();
    let first = ctx.minaret.recommend(&m);
    let cold = t0.elapsed();
    let t1 = std::time::Instant::now();
    let second = ctx.minaret.recommend(&m);
    let warm = t1.elapsed();
    assert!(
        first.is_ok() && second.is_ok(),
        "pipeline failed under injection"
    );

    let (mut hits, mut misses) = (0u64, 0u64);
    for c in &ctx.caches {
        let s = c.stats();
        hits += s.hits;
        misses += s.misses;
    }
    let hit_ratio = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    let stats = ctx.registry.stats();

    // Same scenario, but Publons is scripted permanently dead and the
    // registry runs with a breaker: the cost of degraded-mode service.
    // No dice here — the scripted outage is the only fault, so the
    // degraded numbers are attributable to it alone.
    let dead_ctx = EvalContext::build(ScenarioConfig {
        world: WorldConfig::sized(scholars),
        source_latency_micros: latency_micros,
        source_failure_rate: 0.0,
        cached: true,
        registry: RegistryConfig {
            resilience: ResilienceConfig {
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    cooldown_micros: 60_000_000,
                    probe_successes: 1,
                },
                ..ResilienceConfig::disabled()
            },
            ..Default::default()
        },
        dead_sources: vec![SourceKind::Publons],
        ..Default::default()
    });
    let dead_sub = dead_ctx.submissions(1, 0xE6).pop().expect("submission");
    let dm = dead_ctx.manuscript_for(&dead_sub);
    let t2 = std::time::Instant::now();
    let degraded_run = dead_ctx
        .minaret
        .recommend(&dm)
        .expect("five healthy sources still recommend");
    let degraded_cold = t2.elapsed();
    let t3 = std::time::Instant::now();
    dead_ctx.minaret.recommend(&dm).expect("warm degraded run");
    let degraded_warm = t3.elapsed();
    assert!(
        degraded_run.degraded
            && degraded_run
                .degraded_sources
                .contains(&"Publons".to_string()),
        "the dead source must be named: {:?}",
        degraded_run.degraded_sources
    );
    let dead_stats = dead_ctx.registry.stats();

    let mut table = TextTable::new(&["run", "wall clock"]);
    table.row(&[
        "cold (empty cache)".into(),
        format!("{:.1} ms", cold.as_secs_f64() * 1e3),
    ]);
    table.row(&[
        "warm (cached)".into(),
        format!("{:.1} ms", warm.as_secs_f64() * 1e3),
    ]);
    table.row(&[
        "degraded cold (Publons dead)".into(),
        format!("{:.1} ms", degraded_cold.as_secs_f64() * 1e3),
    ]);
    table.row(&[
        "degraded warm (breaker open)".into(),
        format!("{:.1} ms", degraded_warm.as_secs_f64() * 1e3),
    ]);
    let report = format!(
        "E6  on-the-fly extraction cost ({scholars} scholars, {latency_micros} µs/call, \
         {failure_rate} failure rate)\n{}\
         cache hit ratio {:.2}; registry calls {}, retries {}, gave up {}\n\
         speedup warm/cold: {:.1}x\n\
         degraded runs: flagged degraded, missing {:?}; breaker short-circuited {} calls\n",
        table.render(),
        hit_ratio,
        stats.calls,
        stats.retries,
        stats.gave_up,
        if warm.as_secs_f64() > 0.0 {
            cold.as_secs_f64() / warm.as_secs_f64()
        } else {
            f64::INFINITY
        },
        degraded_run.degraded_sources,
        dead_stats.short_circuited,
    );
    E6Result {
        cold,
        warm,
        hit_ratio,
        calls: stats.calls,
        retries: stats.retries,
        degraded_cold,
        degraded_warm,
        short_circuited: dead_stats.short_circuited,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_cache_makes_warm_runs_cheaper() {
        let r = run_e6(150, 200, 0.05);
        assert!(r.warm <= r.cold, "warm {:?} vs cold {:?}", r.warm, r.cold);
        assert!(r.hit_ratio > 0.3, "hit ratio {}", r.hit_ratio);
        assert!(r.calls > 0);
    }

    #[test]
    fn e6_survives_failure_injection() {
        let r = run_e6(100, 0, 0.3);
        assert!(r.retries > 0, "expected retries under 30% failure rate");
    }

    #[test]
    fn e6_degraded_runs_short_circuit_the_dead_source() {
        let r = run_e6(120, 0, 0.0);
        assert!(r.short_circuited >= 1, "{r:?}");
        assert!(r.report.contains("Publons"), "{}", r.report);
    }
}
