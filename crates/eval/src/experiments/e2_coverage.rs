//! E2 — the §2.3 topic-coverage example: with keywords
//! {Semantic Web, Big Data}, a reviewer covering both must outrank one
//! covering only Semantic Web (plus related topics).

use std::collections::HashMap;

use minaret_core::{rank, KeywordExpansionSet};
use minaret_ontology::normalize_label;
use minaret_scholarly::{MergedCandidate, SourceMetrics};

use crate::table::{f3, TextTable};

/// Result of experiment E2.
#[derive(Debug)]
pub struct E2Result {
    /// Coverage score of reviewer A ({Semantic Web, Ontologies, RDF}).
    pub coverage_a: f64,
    /// Coverage score of reviewer B ({Semantic Web, Big Data}).
    pub coverage_b: f64,
    /// True when B outranks A, as the paper requires.
    pub example_holds: bool,
    /// Rendered report.
    pub report: String,
}

fn reviewer(interests: &[&str]) -> MergedCandidate {
    MergedCandidate {
        display_name: "reviewer".into(),
        affiliation: None,
        country: None,
        affiliation_history: vec![],
        interests: interests.iter().map(|i| normalize_label(i)).collect(),
        publications: vec![],
        metrics: SourceMetrics::default(),
        reviews: vec![],
        sources: vec![],
        keys: vec![],
        truths: vec![],
    }
}

/// Replays the paper's worked example through the real coverage code.
pub fn run_e2() -> E2Result {
    let ontology = minaret_ontology::seed::curated_cs_ontology();
    let expander = minaret_ontology::KeywordExpander::with_defaults(&ontology);
    let expansions: Vec<KeywordExpansionSet> = ["Semantic Web", "Big Data"]
        .iter()
        .map(|kw| {
            let mut scores = HashMap::new();
            for e in expander.expand(kw).expect("curated topics") {
                scores.insert(normalize_label(&e.label), e.score);
            }
            scores.insert(normalize_label(kw), 1.0);
            KeywordExpansionSet {
                original: kw.to_string(),
                scores,
            }
        })
        .collect();
    let a = reviewer(&["Semantic Web", "Ontologies", "RDF"]);
    let b = reviewer(&["Semantic Web", "Big Data"]);
    let coverage_a = rank::topic_coverage(&a, &expansions);
    let coverage_b = rank::topic_coverage(&b, &expansions);
    let example_holds = coverage_b > coverage_a;
    let mut table = TextTable::new(&["reviewer", "interests", "coverage"]);
    table.row(&[
        "A".into(),
        "Semantic Web, Ontologies, RDF".into(),
        f3(coverage_a),
    ]);
    table.row(&["B".into(), "Semantic Web, Big Data".into(), f3(coverage_b)]);
    let report = format!(
        "E2  topic-coverage example from §2.3 — paper keywords {{Semantic Web, Big Data}}\n{}\
         B outranks A: {example_holds} (paper requires true)\n",
        table.render()
    );
    E2Result {
        coverage_a,
        coverage_b,
        example_holds,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_paper_example_holds() {
        let r = run_e2();
        assert!(r.example_holds, "report:\n{}", r.report);
        assert!(r.coverage_b > r.coverage_a);
        // B covers both keywords exactly.
        assert!((r.coverage_b - 1.0).abs() < 1e-9);
        // A still gets partial credit for Big Data via expansion — but
        // strictly less than full coverage.
        assert!(r.coverage_a < 1.0);
        assert!(r.coverage_a >= 0.5);
    }
}
