//! F2 — Figure 2: the three-phase workflow, measured.

use std::time::Duration;

use crate::harness::{EvalContext, ScenarioConfig};
use crate::table::TextTable;

/// Result of experiment F2.
#[derive(Debug)]
pub struct F2Result {
    /// Mean wall-clock per phase across the sampled manuscripts.
    pub mean_extraction: Duration,
    /// Mean filtering time.
    pub mean_filtering: Duration,
    /// Mean ranking time.
    pub mean_ranking: Duration,
    /// Mean candidates retrieved / filtered out / recommended.
    pub mean_counts: (f64, f64, f64),
    /// Rendered report.
    pub report: String,
}

/// Runs the full pipeline over `runs` submissions in a `scholars`-sized
/// world and reports the per-phase breakdown.
pub fn run_f2(scholars: usize, runs: usize) -> F2Result {
    let ctx = EvalContext::build(ScenarioConfig::sized(scholars));
    let subs = ctx.submissions(runs, 0xF2);
    let mut ext = Duration::ZERO;
    let mut fil = Duration::ZERO;
    let mut rank = Duration::ZERO;
    let mut retrieved = 0usize;
    let mut removed = 0usize;
    let mut recommended = 0usize;
    let mut completed = 0usize;
    for sub in &subs {
        let m = ctx.manuscript_for(sub);
        let Ok(report) = ctx.minaret.recommend(&m) else {
            continue;
        };
        ext += report.timings.extraction;
        fil += report.timings.filtering;
        rank += report.timings.ranking;
        retrieved += report.candidates_retrieved;
        removed += report.filtered_out.len();
        recommended += report.recommendations.len();
        completed += 1;
    }
    let n = completed.max(1) as u32;
    let mean_extraction = ext / n;
    let mean_filtering = fil / n;
    let mean_ranking = rank / n;
    let nf = completed.max(1) as f64;
    let mean_counts = (
        retrieved as f64 / nf,
        removed as f64 / nf,
        recommended as f64 / nf,
    );
    let mut table = TextTable::new(&["phase", "mean time", "share"]);
    let total = (mean_extraction + mean_filtering + mean_ranking).as_secs_f64();
    for (name, d) in [
        ("1. information extraction", mean_extraction),
        ("2. filtering (COI + constraints)", mean_filtering),
        ("3. ranking", mean_ranking),
    ] {
        table.row(&[
            name.to_string(),
            format!("{:.3} ms", d.as_secs_f64() * 1e3),
            if total > 0.0 {
                format!("{:.1}%", 100.0 * d.as_secs_f64() / total)
            } else {
                "-".into()
            },
        ]);
    }
    let report = format!(
        "F2  workflow phase breakdown ({completed} manuscripts, {scholars} scholars)\n{}\n\
         mean candidates retrieved {:.1}, filtered out {:.1}, recommended {:.1}\n",
        table.render(),
        mean_counts.0,
        mean_counts.1,
        mean_counts.2
    );
    F2Result {
        mean_extraction,
        mean_filtering,
        mean_ranking,
        mean_counts,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2_measures_all_phases() {
        let r = run_f2(150, 3);
        assert!(r.mean_extraction > Duration::ZERO);
        assert!(r.mean_counts.0 > 0.0);
        assert!(r.report.contains("information extraction"));
    }
}
