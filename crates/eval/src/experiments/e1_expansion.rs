//! E1 — the paper's keyword-expansion example: "RDF" must expand to
//! "Semantic Web", "Linked Open Data" and "SPARQL", each with a score in
//! [0, 1]; plus an expansion-breadth sweep over the score floor.

use minaret_ontology::{seed::curated_cs_ontology, ExpansionConfig, KeywordExpander};

use crate::table::{f3, TextTable};

/// Result of experiment E1.
#[derive(Debug)]
pub struct E1Result {
    /// The expansion of "RDF": `(label, score, hops)`, best first.
    pub rdf_expansion: Vec<(String, f64, u32)>,
    /// `(min_score, mean expanded labels per keyword)` sweep.
    pub breadth_sweep: Vec<(f64, f64)>,
    /// True when all three labels from the paper's example are present.
    pub paper_example_reproduced: bool,
    /// Rendered report.
    pub report: String,
}

/// Runs the expansion example and the breadth sweep.
pub fn run_e1() -> E1Result {
    let ontology = curated_cs_ontology();
    let expander = KeywordExpander::with_defaults(&ontology);
    let expansion = expander
        .expand("RDF")
        .expect("RDF is in the curated ontology");
    let rdf_expansion: Vec<(String, f64, u32)> = expansion
        .iter()
        .map(|e| (e.label.clone(), e.score, e.hops))
        .collect();
    let mut table = TextTable::new(&["expanded keyword", "score", "hops"]);
    for (label, score, hops) in &rdf_expansion {
        table.row(&[label.clone(), f3(*score), hops.to_string()]);
    }
    let labels: Vec<&str> = rdf_expansion.iter().map(|(l, _, _)| l.as_str()).collect();
    let paper_example_reproduced = ["Semantic Web", "Linked Open Data", "SPARQL"]
        .iter()
        .all(|l| labels.contains(l));

    // Breadth sweep: how many related topics a typical keyword expands to
    // as the editor's score floor varies.
    let sample = [
        "RDF",
        "Big Data",
        "Machine Learning",
        "Query Optimization",
        "Cryptography",
    ];
    let mut breadth_sweep = Vec::new();
    let mut sweep_table = TextTable::new(&["min score", "mean expanded labels"]);
    for &floor in &[0.9, 0.8, 0.7, 0.6, 0.5] {
        let cfg = ExpansionConfig {
            min_score: floor,
            max_results: 100,
            ..Default::default()
        };
        let e = KeywordExpander::new(&ontology, cfg);
        let mean = sample
            .iter()
            .map(|kw| e.expand(kw).map(|v| v.len() - 1).unwrap_or(0) as f64)
            .sum::<f64>()
            / sample.len() as f64;
        sweep_table.row(&[f3(floor), format!("{mean:.1}")]);
        breadth_sweep.push((floor, mean));
    }
    let report = format!(
        "E1  semantic expansion of \"RDF\" (paper §2.1 example{})\n{}\n\
         expansion breadth vs. score floor (mean over {} sample keywords)\n{}",
        if paper_example_reproduced {
            ": reproduced"
        } else {
            ": NOT reproduced"
        },
        table.render(),
        sample.len(),
        sweep_table.render()
    );
    E1Result {
        rdf_expansion,
        breadth_sweep,
        paper_example_reproduced,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reproduces_the_paper_example() {
        let r = run_e1();
        assert!(r.paper_example_reproduced, "report:\n{}", r.report);
        for (_, score, _) in &r.rdf_expansion {
            assert!((0.0..=1.0).contains(score));
        }
    }

    #[test]
    fn e1_breadth_grows_as_floor_drops() {
        let r = run_e1();
        let first = r.breadth_sweep.first().unwrap().1;
        let last = r.breadth_sweep.last().unwrap().1;
        assert!(last >= first, "lower floor must not shrink expansion");
    }
}
