//! F4 — Figure 4: author identity verification, measured as a
//! disambiguation-accuracy sweep over the name-collision rate.

use minaret_disambig::{AuthorQuery, IdentityResolver, ResolutionPolicy};
use minaret_synth::WorldConfig;

use crate::harness::{EvalContext, ScenarioConfig};
use crate::table::{f3, TextTable};

/// One point of the collision sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionPoint {
    /// The forced name-collision rate of the generated world.
    pub collision_rate: f64,
    /// Fraction of scholars whose name is shared in that world.
    pub colliding_fraction: f64,
    /// Top-1 accuracy of automatic resolution.
    pub top1_accuracy: f64,
    /// Mean number of identity candidates returned per author.
    pub mean_candidates: f64,
    /// Fraction of authors resolved at all (profile found on ≥1 source).
    pub resolved_fraction: f64,
}

/// Result of experiment F4.
#[derive(Debug)]
pub struct F4Result {
    /// The sweep, one point per collision rate.
    pub points: Vec<CollisionPoint>,
    /// Rendered report.
    pub report: String,
}

/// Sweeps the name-collision rate and measures automatic disambiguation.
pub fn run_f4(scholars: usize, rates: &[f64], authors_per_rate: usize) -> F4Result {
    let mut points = Vec::new();
    let mut table = TextTable::new(&[
        "collision rate",
        "colliding scholars",
        "top-1 accuracy",
        "mean candidates",
        "resolved",
    ]);
    for &rate in rates {
        let ctx = EvalContext::build(ScenarioConfig {
            world: WorldConfig {
                name_collision_rate: rate,
                ..WorldConfig::sized(scholars)
            },
            ..Default::default()
        });
        let resolver = IdentityResolver::new(&ctx.registry);
        let mut correct = 0usize;
        let mut resolved = 0usize;
        let mut tried = 0usize;
        let mut total_candidates = 0usize;
        for s in ctx.world.scholars() {
            if ctx.world.papers_of(s.id).is_empty() {
                continue;
            }
            if tried >= authors_per_rate {
                break;
            }
            tried += 1;
            let inst = ctx.world.institution(s.current_affiliation());
            let query = AuthorQuery {
                name: s.full_name(),
                affiliation: Some(inst.name.clone()),
                country: Some(inst.country.clone()),
                context_keywords: s
                    .interests
                    .iter()
                    .map(|&t| ctx.world.ontology.label(t).to_string())
                    .collect(),
            };
            let v = resolver.resolve(query, &ResolutionPolicy::AutoTop1);
            total_candidates += v.alternatives.len();
            if let Some(chosen) = v.chosen {
                resolved += 1;
                if chosen.candidate.truths.contains(&s.id) {
                    correct += 1;
                }
            }
        }
        let stats = ctx.world.stats();
        let point = CollisionPoint {
            collision_rate: rate,
            colliding_fraction: stats.colliding_scholars as f64 / stats.scholars.max(1) as f64,
            top1_accuracy: if resolved == 0 {
                0.0
            } else {
                correct as f64 / resolved as f64
            },
            mean_candidates: if tried == 0 {
                0.0
            } else {
                total_candidates as f64 / tried as f64
            },
            resolved_fraction: if tried == 0 {
                0.0
            } else {
                resolved as f64 / tried as f64
            },
        };
        table.row(&[
            f3(point.collision_rate),
            f3(point.colliding_fraction),
            f3(point.top1_accuracy),
            f3(point.mean_candidates),
            f3(point.resolved_fraction),
        ]);
        points.push(point);
    }
    let report = format!(
        "F4  author identity verification vs. name-collision rate \
         ({scholars} scholars, {authors_per_rate} authors sampled per rate)\n{}",
        table.render()
    );
    F4Result { points, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f4_accuracy_degrades_with_collisions() {
        let r = run_f4(250, &[0.0, 0.5], 30);
        assert_eq!(r.points.len(), 2);
        let clean = &r.points[0];
        let noisy = &r.points[1];
        assert!(
            clean.top1_accuracy > 0.85,
            "clean accuracy {}",
            clean.top1_accuracy
        );
        assert!(
            noisy.colliding_fraction > clean.colliding_fraction,
            "collision knob has no effect"
        );
        // More collisions -> more (or equal) candidates per author.
        assert!(noisy.mean_candidates >= clean.mean_candidates);
    }
}
