//! E8 — §3's conference-mode integration: the same manuscript routed
//! through the open journal universe vs. a closed programme committee.

use minaret_core::{EditorConfig, Minaret};

use crate::harness::{EvalContext, ScenarioConfig};
use crate::table::TextTable;

/// Result of experiment E8.
#[derive(Debug)]
pub struct E8Result {
    /// Recommendations in open journal mode.
    pub journal_recommendations: usize,
    /// Recommendations in conference (PC-restricted) mode.
    pub conference_recommendations: usize,
    /// Candidates rejected purely for not being on the PC.
    pub rejected_not_on_pc: usize,
    /// Every conference-mode recommendation is on the PC.
    pub pc_respected: bool,
    /// Rendered report.
    pub report: String,
}

/// Runs the two-mode comparison. The PC is drawn from the journal-mode
/// top list (odd ranks), so the restriction is visible in the output.
pub fn run_e8(scholars: usize) -> E8Result {
    let ctx = EvalContext::build(ScenarioConfig::sized(scholars));
    let sub = ctx.submissions(1, 0xE8).pop().expect("submission");
    let m = ctx.manuscript_for(&sub);
    let open = ctx.minaret.recommend(&m).expect("journal mode succeeds");

    // Build a PC of half the open-mode recommendations (odd ranks).
    let pc: Vec<String> = open
        .recommendations
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, r)| r.name.clone())
        .collect();
    let conference = Minaret::new(
        ctx.registry.clone(),
        ctx.ontology.clone(),
        EditorConfig {
            pc_members: Some(pc.clone()),
            ..Default::default()
        },
    );
    let restricted = conference.recommend(&m).expect("conference mode succeeds");
    // Same name-compatibility rule the PC filter itself applies ("L. Zhou"
    // on the PC list admits candidate "Lei Zhou").
    let pc_parsed: Vec<_> = pc
        .iter()
        .filter_map(|p| minaret_disambig::name::parse_name(p))
        .collect();
    let pc_respected = restricted.recommendations.iter().all(|r| {
        minaret_disambig::name::parse_name(&r.name)
            .map(|n| pc_parsed.iter().any(|m| m.compatible(&n)))
            .unwrap_or(false)
    });
    let rejected_not_on_pc = restricted
        .filtered_out
        .iter()
        .filter(|(_, reason)| {
            matches!(
                reason,
                minaret_core::filter::FilterReason::NotOnProgrammeCommittee
            )
        })
        .count();

    let mut table = TextTable::new(&["mode", "recommendations", "filtered out"]);
    table.row(&[
        "journal (open universe)".into(),
        open.recommendations.len().to_string(),
        open.filtered_out.len().to_string(),
    ]);
    table.row(&[
        format!("conference (PC of {})", pc.len()),
        restricted.recommendations.len().to_string(),
        restricted.filtered_out.len().to_string(),
    ]);
    let report = format!(
        "E8  journal vs. conference mode ({scholars} scholars)\n{}\
         candidates rejected for not being on the PC: {rejected_not_on_pc}\n\
         conference recommendations all on the PC: {pc_respected}\n",
        table.render()
    );
    E8Result {
        journal_recommendations: open.recommendations.len(),
        conference_recommendations: restricted.recommendations.len(),
        rejected_not_on_pc,
        pc_respected,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_conference_mode_is_a_strict_restriction() {
        let r = run_e8(250);
        assert!(r.pc_respected, "report:\n{}", r.report);
        assert!(r.conference_recommendations <= r.journal_recommendations);
        assert!(r.rejected_not_on_pc > 0);
    }
}
