//! One runner per experiment in `DESIGN.md`'s experiment index.
//!
//! Every runner returns a result struct carrying both the structured
//! numbers and a rendered plain-text `report`. The `experiments` example
//! binary prints the reports; `EXPERIMENTS.md` records them against the
//! paper's claims.

mod e10_policies;
mod e1_expansion;
mod e2_coverage;
mod e3_coi;
mod e4_quality;
mod e5_weights;
mod e6_extraction;
mod e7_scalability;
mod e8_conference;
mod e9_sources;
mod fig1_growth;
mod fig2_phases;
mod fig3_form;
mod fig4_disambig;
mod fig5_ranking;

pub use e10_policies::{run_e10, E10Result, PolicyPoint};
pub use e1_expansion::{run_e1, E1Result};
pub use e2_coverage::{run_e2, E2Result};
pub use e3_coi::{run_e3, E3Result};
pub use e4_quality::{run_e4, E4Config, E4Result, MethodQuality};
pub use e5_weights::{run_e5, E5Result};
pub use e6_extraction::{run_e6, E6Result};
pub use e7_scalability::{
    run_e7, run_e7_addendum, E7AddendumResult, E7Result, LabelSweepPoint, ParallelismPoint,
    ScalePoint, E7_LABEL_SIZES, E7_PARALLELISM,
};
pub use e8_conference::{run_e8, E8Result};
pub use e9_sources::{run_e9, E9Result, SourceAblation};
pub use fig1_growth::{run_f1, F1Result};
pub use fig2_phases::{run_f2, F2Result};
pub use fig3_form::{run_f3, F3Result};
pub use fig4_disambig::{run_f4, CollisionPoint, F4Result};
pub use fig5_ranking::{run_f5, F5Result};

use minaret_synth::{ground_truth_relevance, SubmissionSpec, World};

use crate::harness::EvalContext;

/// Ground-truth relevance of a ranked candidate: the relevance of the
/// person the record (dominantly) belongs to; `0` when the record has no
/// truth label.
pub(crate) fn candidate_relevance(
    world: &World,
    sub: &SubmissionSpec,
    truths: &[minaret_synth::ScholarId],
) -> f64 {
    truths
        .first()
        .map(|&id| ground_truth_relevance(world, sub, id))
        .unwrap_or(0.0)
}

/// Relevance of every scholar in the world to `sub` — the ideal pool for
/// nDCG and the denominator pool for recall.
pub(crate) fn relevance_pool(ctx: &EvalContext, sub: &SubmissionSpec) -> Vec<f64> {
    ctx.world
        .scholars()
        .iter()
        .map(|s| ground_truth_relevance(&ctx.world, sub, s.id))
        .collect()
}
