//! F5 — Figure 5: the ranked reviewer list with per-component score
//! breakdown.

use crate::harness::{EvalContext, ScenarioConfig};

/// Result of experiment F5.
#[derive(Debug)]
pub struct F5Result {
    /// Number of recommendations produced.
    pub recommendations: usize,
    /// The top recommendation's total score.
    pub top_score: f64,
    /// Rendered report — the Figure 5 table plus the score drill-down of
    /// the top candidate.
    pub report: String,
}

/// Runs one full recommendation and renders the demo's final screen.
pub fn run_f5(scholars: usize) -> F5Result {
    let ctx = EvalContext::build(ScenarioConfig::sized(scholars));
    let sub = ctx
        .submissions(1, 0xF5)
        .pop()
        .expect("world always yields a submission");
    let m = ctx.manuscript_for(&sub);
    let report_data = ctx
        .minaret
        .recommend(&m)
        .expect("the generated manuscript has candidates");
    let mut out = String::new();
    out.push_str(&format!(
        "F5  recommended reviewers for {:?}\n     keywords: {}\n     target: {}\n\n",
        m.title,
        m.keywords.join(", "),
        m.target_venue
    ));
    out.push_str(&report_data.render_table());
    if let Some(top) = report_data.recommendations.first() {
        out.push_str(&format!(
            "\nscore details for #1 {} (click-through of Figure 5):\n\
             topic coverage {:.3} | impact {:.3} | recency {:.3} | \
             review experience {:.3} | outlet familiarity {:.3}\n\
             matched keywords: {}\n",
            top.name,
            top.breakdown.coverage,
            top.breakdown.impact,
            top.breakdown.recency,
            top.breakdown.experience,
            top.breakdown.familiarity,
            top.matched_keywords
                .iter()
                .map(|(k, s)| format!("{k} ({s:.2})"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    F5Result {
        recommendations: report_data.recommendations.len(),
        top_score: report_data
            .recommendations
            .first()
            .map(|r| r.total)
            .unwrap_or(0.0),
        report: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f5_renders_ranked_list_with_breakdown() {
        let r = run_f5(200);
        assert!(r.recommendations > 0);
        assert!(r.top_score > 0.0);
        assert!(r.report.contains("score details for #1"));
        assert!(r.report.contains("topic coverage"));
    }
}
