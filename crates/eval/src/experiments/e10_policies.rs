//! E10 — identity-resolution policy trade-off: automatic top-1 vs. the
//! confidence-gated policy that defers to a human (the Figure 4 dialog).
//!
//! F4 showed top-1 accuracy; this experiment shows the *coverage vs.
//! correctness* trade-off an editor actually tunes: a stricter
//! confidence threshold resolves fewer authors automatically but is
//! wrong less often on the ones it does resolve.

use minaret_disambig::{AuthorQuery, IdentityResolver, ResolutionOutcome, ResolutionPolicy};
use minaret_synth::WorldConfig;

use crate::harness::{EvalContext, ScenarioConfig};
use crate::table::{f3, TextTable};

/// One policy's measured behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyPoint {
    /// Policy label.
    pub policy: String,
    /// Fraction of authors resolved automatically (not deferred).
    pub auto_resolved: f64,
    /// Accuracy among the automatically resolved.
    pub accuracy_when_resolved: f64,
    /// Fraction deferred to the human (ambiguous).
    pub deferred: f64,
}

/// Result of experiment E10.
#[derive(Debug)]
pub struct E10Result {
    /// One row per policy.
    pub points: Vec<PolicyPoint>,
    /// Rendered report.
    pub report: String,
}

/// Runs the policy comparison in a high-collision world.
pub fn run_e10(scholars: usize, authors: usize) -> E10Result {
    let ctx = EvalContext::build(ScenarioConfig {
        world: WorldConfig {
            name_collision_rate: 0.4,
            ..WorldConfig::sized(scholars)
        },
        ..Default::default()
    });
    let resolver = IdentityResolver::new(&ctx.registry);
    let policies: Vec<(String, ResolutionPolicy)> = vec![
        ("auto top-1".into(), ResolutionPolicy::AutoTop1),
        (
            "confident (t=0.3, m=0.05)".into(),
            ResolutionPolicy::Confident {
                threshold: 0.3,
                margin: 0.05,
            },
        ),
        (
            "confident (t=0.5, m=0.15)".into(),
            ResolutionPolicy::Confident {
                threshold: 0.5,
                margin: 0.15,
            },
        ),
        (
            "confident (t=0.7, m=0.30)".into(),
            ResolutionPolicy::Confident {
                threshold: 0.7,
                margin: 0.30,
            },
        ),
    ];

    let sample: Vec<_> = ctx
        .world
        .scholars()
        .iter()
        .filter(|s| !ctx.world.papers_of(s.id).is_empty())
        .take(authors)
        .collect();

    let mut points = Vec::new();
    let mut table = TextTable::new(&["policy", "auto-resolved", "accuracy", "deferred"]);
    for (label, policy) in &policies {
        let mut resolved = 0usize;
        let mut correct = 0usize;
        let mut deferred = 0usize;
        for s in &sample {
            let inst = ctx.world.institution(s.current_affiliation());
            let v = resolver.resolve(
                AuthorQuery {
                    name: s.full_name(),
                    affiliation: Some(inst.name.clone()),
                    country: Some(inst.country.clone()),
                    context_keywords: s
                        .interests
                        .iter()
                        .map(|&t| ctx.world.ontology.label(t).to_string())
                        .collect(),
                },
                policy,
            );
            match v.outcome {
                ResolutionOutcome::Resolved => {
                    resolved += 1;
                    if v.chosen
                        .as_ref()
                        .is_some_and(|m| m.candidate.truths.contains(&s.id))
                    {
                        correct += 1;
                    }
                }
                ResolutionOutcome::Ambiguous => deferred += 1,
                ResolutionOutcome::NotFound => {}
            }
        }
        let n = sample.len().max(1) as f64;
        let point = PolicyPoint {
            policy: label.clone(),
            auto_resolved: resolved as f64 / n,
            accuracy_when_resolved: if resolved == 0 {
                1.0
            } else {
                correct as f64 / resolved as f64
            },
            deferred: deferred as f64 / n,
        };
        table.row(&[
            point.policy.clone(),
            f3(point.auto_resolved),
            f3(point.accuracy_when_resolved),
            f3(point.deferred),
        ]);
        points.push(point);
    }
    let report = format!(
        "E10  identity-resolution policies under 40% name collisions \
         ({scholars} scholars, {} authors)\n{}",
        sample.len(),
        table.render()
    );
    E10Result { points, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_stricter_policies_defer_more_and_stay_accurate() {
        let r = run_e10(250, 40);
        assert_eq!(r.points.len(), 4);
        let auto = &r.points[0];
        let strictest = &r.points[3];
        assert!(auto.auto_resolved >= strictest.auto_resolved);
        assert!(strictest.deferred >= auto.deferred);
        // Accuracy among auto-resolved never degrades with strictness.
        assert!(
            strictest.accuracy_when_resolved >= auto.accuracy_when_resolved - 1e-9,
            "strict policy less accurate: {:?} vs {:?}",
            strictest,
            auto
        );
        for p in &r.points {
            assert!((0.0..=1.0).contains(&p.auto_resolved));
            assert!((0.0..=1.0).contains(&p.accuracy_when_resolved));
            assert!((0.0..=1.0).contains(&p.deferred));
        }
    }
}
