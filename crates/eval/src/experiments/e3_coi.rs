//! E3 — COI filtering effectiveness against ground-truth conflict edges,
//! at university-level vs. country-level affiliation matching.

use minaret_core::filter::FilterReason;
use minaret_core::{AffiliationMatchLevel, CoiConfig, EditorConfig};
use minaret_synth::{ScholarId, SubmissionSpec};

use crate::harness::{EvalContext, ScenarioConfig};
use crate::table::{f3, TextTable};

/// COI detection quality at one affiliation-match level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoiQuality {
    /// Fraction of ground-truth-conflicted retrieved candidates that the
    /// filter removed (higher is better).
    pub recall: f64,
    /// Fraction of removed-for-COI candidates that were truly conflicted
    /// (higher is better; < 1 means over-blocking).
    pub precision: f64,
    /// Mean candidates removed for COI per manuscript.
    pub mean_removed: f64,
}

/// Result of experiment E3.
#[derive(Debug)]
pub struct E3Result {
    /// Quality with university-level matching (the default).
    pub university: CoiQuality,
    /// Quality with country-level matching (stricter).
    pub country: CoiQuality,
    /// Rendered report.
    pub report: String,
}

fn truly_conflicted(ctx: &EvalContext, sub: &SubmissionSpec, truth: ScholarId) -> bool {
    sub.authors.iter().any(|&a| {
        a == truth || ctx.world.ever_coauthored(a, truth) || ctx.world.shared_affiliation(a, truth)
    })
}

fn measure(level: AffiliationMatchLevel, scholars: usize, runs: usize) -> CoiQuality {
    let ctx = EvalContext::build(ScenarioConfig {
        world: minaret_synth::WorldConfig::sized(scholars),
        editor: EditorConfig {
            coi: CoiConfig {
                affiliation_level: level,
                ..Default::default()
            },
            // Keep everything else permissive so COI is the only filter
            // beyond the keyword threshold.
            keyword_score_threshold: 0.0,
            ..Default::default()
        },
        ..Default::default()
    });
    let subs = ctx.submissions(runs, 0xE3);
    let mut true_positive = 0usize;
    let mut false_positive = 0usize;
    let mut false_negative = 0usize;
    let mut removed_total = 0usize;
    let mut completed = 0usize;
    for sub in &subs {
        let m = ctx.manuscript_for(sub);
        let Ok(report) = ctx.minaret.recommend(&m) else {
            continue;
        };
        completed += 1;
        for (cand, reason) in &report.filtered_out {
            if !matches!(reason, FilterReason::ConflictOfInterest(_)) {
                continue;
            }
            removed_total += 1;
            let Some(&truth) = cand.merged.truths.first() else {
                continue;
            };
            if truly_conflicted(&ctx, sub, truth) {
                true_positive += 1;
            } else {
                false_positive += 1;
            }
        }
        for rec in &report.recommendations {
            let Some(&truth) = rec.candidate.truths.first() else {
                continue;
            };
            if truly_conflicted(&ctx, sub, truth) {
                false_negative += 1;
            }
        }
    }
    let recall = if true_positive + false_negative == 0 {
        1.0
    } else {
        true_positive as f64 / (true_positive + false_negative) as f64
    };
    let precision = if true_positive + false_positive == 0 {
        1.0
    } else {
        true_positive as f64 / (true_positive + false_positive) as f64
    };
    CoiQuality {
        recall,
        precision,
        mean_removed: removed_total as f64 / completed.max(1) as f64,
    }
}

/// Measures COI filtering at both affiliation granularities.
pub fn run_e3(scholars: usize, runs: usize) -> E3Result {
    let university = measure(AffiliationMatchLevel::University, scholars, runs);
    let country = measure(AffiliationMatchLevel::Country, scholars, runs);
    let mut table = TextTable::new(&["affiliation level", "recall", "precision", "removed/ms"]);
    for (name, q) in [("university", university), ("country", country)] {
        table.row(&[
            name.into(),
            f3(q.recall),
            f3(q.precision),
            format!("{:.1}", q.mean_removed),
        ]);
    }
    let report = format!(
        "E3  COI filter vs. ground-truth conflicts ({scholars} scholars, {runs} manuscripts)\n{}\
         country-level matching removes more candidates (recall ≥ university) at the cost of precision\n",
        table.render()
    );
    E3Result {
        university,
        country,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_coi_catches_most_true_conflicts() {
        let r = run_e3(250, 6);
        assert!(
            r.university.recall > 0.7,
            "university-level recall too low: {:?}",
            r.university
        );
        // Country level can only remove more (or the same).
        assert!(r.country.mean_removed >= r.university.mean_removed);
    }
}
