//! E4 — recommendation quality: MINARET vs. the baselines, plus the
//! semantic-expansion ablation.

use minaret_baselines::{
    crawl_pool, ExactKeywordRecommender, MinaretRecommender, RandomRecommender, Recommender,
    TpmsRecommender,
};
use minaret_core::{EditorConfig, Minaret};

use crate::experiments::{candidate_relevance, relevance_pool};
use crate::harness::{EvalContext, ScenarioConfig};
use crate::metrics::{mean, ndcg_at_k, precision_at_k, recall_at_k, reciprocal_rank};
use crate::table::{f3, TextTable};

/// Relevance grade above which a candidate counts as "relevant" for the
/// binary metrics.
const RELEVANT: f64 = 0.5;

/// Parameters of the quality experiment.
#[derive(Debug, Clone, Copy)]
pub struct E4Config {
    /// World size.
    pub scholars: usize,
    /// Number of manuscripts evaluated.
    pub manuscripts: usize,
    /// Cutoff for the @k metrics.
    pub k: usize,
}

impl Default for E4Config {
    fn default() -> Self {
        Self {
            scholars: 400,
            manuscripts: 12,
            k: 10,
        }
    }
}

/// Quality numbers for one method.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodQuality {
    /// Method name.
    pub method: String,
    /// Mean precision@5.
    pub p_at_5: f64,
    /// Mean precision@k.
    pub p_at_k: f64,
    /// Mean recall@k.
    pub recall_at_k: f64,
    /// Mean nDCG@k.
    pub ndcg_at_k: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
}

/// Result of experiment E4.
#[derive(Debug)]
pub struct E4Result {
    /// One row per method: minaret, minaret-no-expansion, tpms-style,
    /// exact-keyword, random.
    pub methods: Vec<MethodQuality>,
    /// Rendered report.
    pub report: String,
}

/// Runs the head-to-head comparison.
pub fn run_e4(config: E4Config) -> E4Result {
    let ctx = EvalContext::build(ScenarioConfig::sized(config.scholars));
    let subs = ctx.submissions(config.manuscripts, 0xE4);
    let pool = crawl_pool(&ctx.registry, &ctx.ontology);

    // MINARET with expansion disabled: max_hops = 0 keeps only the
    // original keywords — the ablation arm.
    let no_expansion = Minaret::new(
        ctx.registry.clone(),
        ctx.ontology.clone(),
        EditorConfig {
            expansion: minaret_ontology::ExpansionConfig {
                max_hops: 0,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let minaret_full = Minaret::new(
        ctx.registry.clone(),
        ctx.ontology.clone(),
        EditorConfig::default(),
    );
    let methods: Vec<(String, Box<dyn Recommender>)> = vec![
        (
            "minaret".into(),
            Box::new(MinaretRecommender::new(minaret_full)),
        ),
        (
            "minaret (no expansion)".into(),
            Box::new(MinaretRecommender::new(no_expansion)),
        ),
        ("tpms-style".into(), Box::new(TpmsRecommender::new(&pool))),
        (
            "exact-keyword".into(),
            Box::new(ExactKeywordRecommender::new(ctx.registry.clone())),
        ),
        (
            "random".into(),
            Box::new(RandomRecommender::new(&pool, 0xE4)),
        ),
    ];

    let k = config.k;
    let mut rows = Vec::new();
    for (name, method) in &methods {
        let mut p5 = Vec::new();
        let mut pk = Vec::new();
        let mut rk = Vec::new();
        let mut nk = Vec::new();
        let mut rr = Vec::new();
        for sub in &subs {
            let m = ctx.manuscript_for(sub);
            let ranked = method.recommend(&m, k);
            let rels: Vec<f64> = ranked
                .iter()
                .map(|c| candidate_relevance(&ctx.world, sub, &c.truths))
                .collect();
            let pool_rels = relevance_pool(&ctx, sub);
            let total_relevant = pool_rels.iter().filter(|&&r| r > RELEVANT).count();
            p5.push(precision_at_k(&rels, 5, RELEVANT));
            pk.push(precision_at_k(&rels, k, RELEVANT));
            rk.push(recall_at_k(&rels, k, total_relevant, RELEVANT));
            nk.push(ndcg_at_k(&rels, &pool_rels, k));
            rr.push(reciprocal_rank(&rels, RELEVANT));
        }
        rows.push(MethodQuality {
            method: name.clone(),
            p_at_5: mean(&p5),
            p_at_k: mean(&pk),
            recall_at_k: mean(&rk),
            ndcg_at_k: mean(&nk),
            mrr: mean(&rr),
        });
    }

    let mut table = TextTable::new(&[
        "method",
        "P@5",
        &format!("P@{k}"),
        &format!("R@{k}"),
        &format!("nDCG@{k}"),
        "MRR",
    ]);
    for r in &rows {
        table.row(&[
            r.method.clone(),
            f3(r.p_at_5),
            f3(r.p_at_k),
            f3(r.recall_at_k),
            f3(r.ndcg_at_k),
            f3(r.mrr),
        ]);
    }
    let report = format!(
        "E4  recommendation quality ({} scholars, {} manuscripts, relevance > {RELEVANT})\n{}",
        config.scholars,
        config.manuscripts,
        table.render()
    );
    E4Result {
        methods: rows,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_minaret_beats_random_and_expansion_helps() {
        let r = run_e4(E4Config {
            scholars: 250,
            manuscripts: 6,
            k: 10,
        });
        let get = |name: &str| {
            r.methods
                .iter()
                .find(|m| m.method == name)
                .unwrap_or_else(|| panic!("missing method {name}"))
                .clone()
        };
        let minaret = get("minaret");
        let random = get("random");
        assert!(
            minaret.ndcg_at_k > random.ndcg_at_k,
            "minaret {:?} vs random {:?}",
            minaret,
            random
        );
        assert!(minaret.p_at_5 > random.p_at_5);
        // All metrics bounded.
        for m in &r.methods {
            for v in [m.p_at_5, m.p_at_k, m.recall_at_k, m.ndcg_at_k, m.mrr] {
                assert!((0.0..=1.0 + 1e-9).contains(&v), "{m:?}");
            }
        }
    }
}
