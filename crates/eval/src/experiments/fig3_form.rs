//! F3 — Figure 3: the manuscript-details form, exercised field by field.

use minaret_core::{
    AffiliationMatchLevel, AuthorInput, EditorConfig, ExpertiseConstraints, ManuscriptDetails,
};

use crate::table::TextTable;

/// Result of experiment F3.
#[derive(Debug)]
pub struct F3Result {
    /// The manuscript assembled from every form field.
    pub manuscript: ManuscriptDetails,
    /// The editor configuration assembled from every filter field.
    pub editor: EditorConfig,
    /// Rendered report.
    pub report: String,
}

/// Builds a manuscript + editor configuration touching every field of
/// the paper's details form (authors, affiliations, keywords, target
/// journal, citation range, h-index range) and validates it. The REST
/// round-trip of the same payload is the `rest_api` integration test.
pub fn run_f3() -> F3Result {
    let manuscript = ManuscriptDetails {
        title: "Scalable SPARQL Query Processing over Distributed RDF Stores".into(),
        keywords: vec![
            "RDF".into(),
            "SPARQL".into(),
            "Distributed Databases".into(),
            "Big Data".into(),
        ],
        authors: vec![
            AuthorInput::named("Mohamed Moawad")
                .with_affiliation("University of Tartu")
                .with_country("Estonia"),
            AuthorInput::named("Sherif Sakr")
                .with_affiliation("University of Tartu")
                .with_country("Estonia"),
        ],
        target_venue: "Journal of Synthetic Computing 1".into(),
    };
    manuscript
        .validate()
        .expect("the demo manuscript is valid by construction");
    let editor = EditorConfig {
        keyword_score_threshold: 0.6,
        expertise: ExpertiseConstraints {
            min_citations: Some(100),
            max_citations: Some(50_000),
            min_h_index: Some(5),
            max_h_index: None,
            min_reviews: Some(1),
            max_reviews: None,
        },
        ..Default::default()
    };
    assert_eq!(
        editor.coi.affiliation_level,
        AffiliationMatchLevel::University
    );

    let mut table = TextTable::new(&["form field", "value"]);
    table.row(&["title".into(), manuscript.title.clone()]);
    table.row(&["keywords".into(), manuscript.keywords.join(", ")]);
    for (i, a) in manuscript.authors.iter().enumerate() {
        table.row(&[
            format!("author {}", i + 1),
            format!(
                "{} — {} ({})",
                a.name,
                a.affiliation.as_deref().unwrap_or("-"),
                a.country.as_deref().unwrap_or("-")
            ),
        ]);
    }
    table.row(&["target journal".into(), manuscript.target_venue.clone()]);
    table.row(&[
        "citation range".into(),
        format!(
            "{:?}..{:?}",
            editor.expertise.min_citations, editor.expertise.max_citations
        ),
    ]);
    table.row(&[
        "h-index range".into(),
        format!(
            "{:?}..{:?}",
            editor.expertise.min_h_index, editor.expertise.max_h_index
        ),
    ]);
    table.row(&[
        "keyword score threshold".into(),
        format!("{}", editor.keyword_score_threshold),
    ]);
    let report = format!(
        "F3  manuscript details form (validated)\n{}",
        table.render()
    );
    F3Result {
        manuscript,
        editor,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3_builds_a_valid_form() {
        let r = run_f3();
        assert!(r.manuscript.validate().is_ok());
        assert_eq!(r.manuscript.keywords.len(), 4);
        assert_eq!(r.manuscript.authors.len(), 2);
        assert!(r.report.contains("target journal"));
        assert_eq!(r.editor.expertise.min_citations, Some(100));
    }
}
