//! E7 — end-to-end latency vs. world size and keyword count.

use std::time::Duration;

use crate::harness::{EvalContext, ScenarioConfig};
use crate::table::TextTable;

/// One point of the scalability sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// World size (scholars).
    pub scholars: usize,
    /// Mean end-to-end pipeline latency.
    pub mean_latency: Duration,
    /// Mean candidates retrieved before filtering.
    pub mean_candidates: f64,
    /// Mean recommendations returned.
    pub mean_recommendations: f64,
}

/// Result of experiment E7.
#[derive(Debug)]
pub struct E7Result {
    /// The world-size sweep.
    pub points: Vec<ScalePoint>,
    /// `(keyword count, mean latency)` sweep at the largest world size.
    pub keyword_sweep: Vec<(usize, Duration)>,
    /// Rendered report.
    pub report: String,
}

/// Runs the scalability sweeps.
pub fn run_e7(sizes: &[usize], runs_per_size: usize) -> E7Result {
    let mut points = Vec::new();
    let mut table = TextTable::new(&["scholars", "mean latency", "candidates", "recommended"]);
    let mut last_ctx: Option<EvalContext> = None;
    for &scholars in sizes {
        let ctx = EvalContext::build(ScenarioConfig::sized(scholars));
        let subs = ctx.submissions(runs_per_size, 0xE7);
        let mut total = Duration::ZERO;
        let mut candidates = 0usize;
        let mut recs = 0usize;
        let mut completed = 0usize;
        for sub in &subs {
            let m = ctx.manuscript_for(sub);
            let t = std::time::Instant::now();
            if let Ok(report) = ctx.minaret.recommend(&m) {
                total += t.elapsed();
                candidates += report.candidates_retrieved;
                recs += report.recommendations.len();
                completed += 1;
            }
        }
        let n = completed.max(1);
        let point = ScalePoint {
            scholars,
            mean_latency: total / n as u32,
            mean_candidates: candidates as f64 / n as f64,
            mean_recommendations: recs as f64 / n as f64,
        };
        table.row(&[
            scholars.to_string(),
            format!("{:.1} ms", point.mean_latency.as_secs_f64() * 1e3),
            format!("{:.1}", point.mean_candidates),
            format!("{:.1}", point.mean_recommendations),
        ]);
        points.push(point);
        last_ctx = Some(ctx);
    }

    // Keyword-count sweep on the largest world.
    let mut keyword_sweep = Vec::new();
    let mut kw_table = TextTable::new(&["keywords", "mean latency"]);
    if let Some(ctx) = &last_ctx {
        let sub = ctx.submissions(1, 0xE7).pop().expect("submission");
        let base = ctx.manuscript_for(&sub);
        // Grow the keyword list by drawing more of the lead author's
        // world-level interests plus curated extras.
        let extras = [
            "Machine Learning",
            "Databases",
            "Cloud Computing",
            "Cryptography",
            "Information Retrieval",
            "Computer Vision",
            "Compilers",
        ];
        for n_kw in [1usize, 2, 4, 6, 8] {
            let mut m = base.clone();
            m.keywords = base.keywords.clone();
            let mut i = 0;
            while m.keywords.len() < n_kw && i < extras.len() {
                if !m.keywords.iter().any(|k| k == extras[i]) {
                    m.keywords.push(extras[i].to_string());
                }
                i += 1;
            }
            m.keywords.truncate(n_kw);
            let t = std::time::Instant::now();
            let _ = ctx.minaret.recommend(&m);
            let d = t.elapsed();
            kw_table.row(&[n_kw.to_string(), format!("{:.1} ms", d.as_secs_f64() * 1e3)]);
            keyword_sweep.push((n_kw, d));
        }
    }

    let report = format!(
        "E7  scalability: end-to-end latency vs. world size ({runs_per_size} manuscripts per size)\n{}\n\
         latency vs. keyword count (largest world)\n{}",
        table.render(),
        kw_table.render()
    );
    E7Result {
        points,
        keyword_sweep,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_sweeps_complete() {
        let r = run_e7(&[100, 300], 2);
        assert_eq!(r.points.len(), 2);
        assert!(r.points[1].mean_candidates >= r.points[0].mean_candidates);
        assert_eq!(r.keyword_sweep.len(), 5);
        assert!(r.report.contains("scalability"));
    }
}
