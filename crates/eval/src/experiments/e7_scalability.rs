//! E7 — end-to-end latency vs. world size and keyword count.

use std::time::Duration;

use crate::harness::{EvalContext, ScenarioConfig};
use crate::table::TextTable;

/// One point of the scalability sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// World size (scholars).
    pub scholars: usize,
    /// Mean end-to-end pipeline latency.
    pub mean_latency: Duration,
    /// Mean candidates retrieved before filtering.
    pub mean_candidates: f64,
    /// Mean recommendations returned.
    pub mean_recommendations: f64,
}

/// Result of experiment E7.
#[derive(Debug)]
pub struct E7Result {
    /// The world-size sweep.
    pub points: Vec<ScalePoint>,
    /// `(keyword count, mean latency)` sweep at the largest world size.
    pub keyword_sweep: Vec<(usize, Duration)>,
    /// Rendered report.
    pub report: String,
}

/// Runs the scalability sweeps.
pub fn run_e7(sizes: &[usize], runs_per_size: usize) -> E7Result {
    let mut points = Vec::new();
    let mut table = TextTable::new(&["scholars", "mean latency", "candidates", "recommended"]);
    let mut last_ctx: Option<EvalContext> = None;
    for &scholars in sizes {
        let ctx = EvalContext::build(ScenarioConfig::sized(scholars));
        let subs = ctx.submissions(runs_per_size, 0xE7);
        let mut total = Duration::ZERO;
        let mut candidates = 0usize;
        let mut recs = 0usize;
        let mut completed = 0usize;
        for sub in &subs {
            let m = ctx.manuscript_for(sub);
            let t = std::time::Instant::now();
            if let Ok(report) = ctx.minaret.recommend(&m) {
                total += t.elapsed();
                candidates += report.candidates_retrieved;
                recs += report.recommendations.len();
                completed += 1;
            }
        }
        let n = completed.max(1);
        let point = ScalePoint {
            scholars,
            mean_latency: total / n as u32,
            mean_candidates: candidates as f64 / n as f64,
            mean_recommendations: recs as f64 / n as f64,
        };
        table.row(&[
            scholars.to_string(),
            format!("{:.1} ms", point.mean_latency.as_secs_f64() * 1e3),
            format!("{:.1}", point.mean_candidates),
            format!("{:.1}", point.mean_recommendations),
        ]);
        points.push(point);
        last_ctx = Some(ctx);
    }

    // Keyword-count sweep on the largest world.
    let mut keyword_sweep = Vec::new();
    let mut kw_table = TextTable::new(&["keywords", "mean latency"]);
    if let Some(ctx) = &last_ctx {
        let sub = ctx.submissions(1, 0xE7).pop().expect("submission");
        let base = ctx.manuscript_for(&sub);
        // Grow the keyword list by drawing more of the lead author's
        // world-level interests plus curated extras.
        let extras = [
            "Machine Learning",
            "Databases",
            "Cloud Computing",
            "Cryptography",
            "Information Retrieval",
            "Computer Vision",
            "Compilers",
        ];
        for n_kw in [1usize, 2, 4, 6, 8] {
            let mut m = base.clone();
            m.keywords = base.keywords.clone();
            let mut i = 0;
            while m.keywords.len() < n_kw && i < extras.len() {
                if !m.keywords.iter().any(|k| k == extras[i]) {
                    m.keywords.push(extras[i].to_string());
                }
                i += 1;
            }
            m.keywords.truncate(n_kw);
            let t = std::time::Instant::now();
            let _ = ctx.minaret.recommend(&m);
            let d = t.elapsed();
            kw_table.row(&[n_kw.to_string(), format!("{:.1} ms", d.as_secs_f64() * 1e3)]);
            keyword_sweep.push((n_kw, d));
        }
    }

    let report = format!(
        "E7  scalability: end-to-end latency vs. world size ({runs_per_size} manuscripts per size)\n{}\n\
         latency vs. keyword count (largest world)\n{}",
        table.render(),
        kw_table.render()
    );
    E7Result {
        points,
        keyword_sweep,
        report,
    }
}

/// One row of the batched-vs-per-label extraction sweep (E7 addendum):
/// the same label set retrieved as N per-label fan-outs vs. one batched
/// fan-out, against latency-injected sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelSweepPoint {
    /// Number of labels in the set.
    pub labels: usize,
    /// Mean retrieval time with one fan-out per label (the pre-batching
    /// pipeline's behaviour).
    pub per_label: Duration,
    /// Mean retrieval time with the whole set in one batched fan-out.
    pub batched: Duration,
    /// `per_label / batched`.
    pub speedup: f64,
}

/// One row of the filter/rank parallelism sweep (E7 addendum): per-phase
/// mean timings at a fixed pipeline parallelism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelismPoint {
    /// The pipeline's filter/rank worker cap.
    pub parallelism: usize,
    /// Mean Phase-1 (extraction) time.
    pub extraction: Duration,
    /// Mean Phase-2 (filtering) time.
    pub filtering: Duration,
    /// Mean Phase-3 (ranking) time.
    pub ranking: Duration,
}

/// Result of the E7 addendum (batched retrieval + parallel phases).
#[derive(Debug)]
pub struct E7AddendumResult {
    /// Batched-vs-per-label retrieval at 5/20/80 labels.
    pub label_sweep: Vec<LabelSweepPoint>,
    /// Phase timings at 1/2/4/8 filter/rank workers.
    pub parallelism_sweep: Vec<ParallelismPoint>,
    /// Rendered report.
    pub report: String,
}

/// Label-set sizes the addendum sweeps.
pub const E7_LABEL_SIZES: [usize; 3] = [5, 20, 80];

/// Worker counts the addendum sweeps.
pub const E7_PARALLELISM: [usize; 4] = [1, 2, 4, 8];

/// Runs the E7 addendum: (a) batched vs. per-label retrieval cost over
/// growing label sets against latency-injected sources — the win the
/// batched `search_by_interests` fan-out exists for — and (b) per-phase
/// pipeline timings as the filter/rank worker cap grows.
pub fn run_e7_addendum(scholars: usize, runs: usize) -> E7AddendumResult {
    let runs = runs.max(1);

    // (a) Batched vs. per-label retrieval. Inject scraping-scale latency
    // so the cost model matches the paper's on-the-fly design: each
    // policed source call pays a round trip, and the per-label path pays
    // `labels` round trips where the batched path pays one.
    let mut scenario = ScenarioConfig::sized(scholars);
    scenario.source_latency_micros = 200;
    let ctx = EvalContext::build(scenario);
    let mut labels: Vec<String> = ctx
        .ontology
        .topics()
        .map(|t| t.label.clone())
        .take(*E7_LABEL_SIZES.last().expect("non-empty"))
        .collect();
    let mut filler = 0usize;
    while labels.len() < *E7_LABEL_SIZES.last().expect("non-empty") {
        // Unknown labels still pay the fan-out; cost is what's measured.
        labels.push(format!("synthetic topic {filler}"));
        filler += 1;
    }
    let mut label_sweep = Vec::new();
    let mut sweep_table = TextTable::new(&["labels", "per-label", "batched", "speedup"]);
    for &n in &E7_LABEL_SIZES {
        let set = &labels[..n];
        let mut per_label_total = Duration::ZERO;
        let mut batched_total = Duration::ZERO;
        for _ in 0..runs {
            let t = std::time::Instant::now();
            for label in set {
                let _ = ctx.registry.search_by_interest_report(label);
            }
            per_label_total += t.elapsed();
            let t = std::time::Instant::now();
            let _ = ctx.registry.search_by_interests_report(set);
            batched_total += t.elapsed();
        }
        let per_label = per_label_total / runs as u32;
        let batched = batched_total / runs as u32;
        let speedup = per_label.as_secs_f64() / batched.as_secs_f64().max(1e-9);
        sweep_table.row(&[
            n.to_string(),
            format!("{:.2} ms", per_label.as_secs_f64() * 1e3),
            format!("{:.2} ms", batched.as_secs_f64() * 1e3),
            format!("{speedup:.1}x"),
        ]);
        label_sweep.push(LabelSweepPoint {
            labels: n,
            per_label,
            batched,
            speedup,
        });
    }

    // (b) Filter/rank parallelism sweep over full pipeline runs.
    let mut parallelism_sweep = Vec::new();
    let mut par_table = TextTable::new(&["workers", "extraction", "filtering", "ranking"]);
    for &p in &E7_PARALLELISM {
        let mut scenario = ScenarioConfig::sized(scholars);
        scenario.pipeline_parallelism = p;
        let ctx = EvalContext::build(scenario);
        let subs = ctx.submissions(runs, 0xE7);
        let mut extraction = Duration::ZERO;
        let mut filtering = Duration::ZERO;
        let mut ranking = Duration::ZERO;
        let mut completed = 0usize;
        for sub in &subs {
            let m = ctx.manuscript_for(sub);
            if let Ok(report) = ctx.minaret.recommend(&m) {
                extraction += report.timings.extraction;
                filtering += report.timings.filtering;
                ranking += report.timings.ranking;
                completed += 1;
            }
        }
        let n = completed.max(1) as u32;
        let point = ParallelismPoint {
            parallelism: p,
            extraction: extraction / n,
            filtering: filtering / n,
            ranking: ranking / n,
        };
        par_table.row(&[
            p.to_string(),
            format!("{:.2} ms", point.extraction.as_secs_f64() * 1e3),
            format!("{:.3} ms", point.filtering.as_secs_f64() * 1e3),
            format!("{:.3} ms", point.ranking.as_secs_f64() * 1e3),
        ]);
        parallelism_sweep.push(point);
    }

    let report = format!(
        "E7a batched vs. per-label retrieval ({runs} runs, 200us source latency)\n{}\n\
         phase timings vs. filter/rank workers ({runs} manuscripts each)\n{}",
        sweep_table.render(),
        par_table.render()
    );
    E7AddendumResult {
        label_sweep,
        parallelism_sweep,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_sweeps_complete() {
        let r = run_e7(&[100, 300], 2);
        assert_eq!(r.points.len(), 2);
        assert!(r.points[1].mean_candidates >= r.points[0].mean_candidates);
        assert_eq!(r.keyword_sweep.len(), 5);
        assert!(r.report.contains("scalability"));
    }

    #[test]
    fn e7_addendum_shows_the_batching_win() {
        let r = run_e7_addendum(120, 2);
        assert_eq!(r.label_sweep.len(), E7_LABEL_SIZES.len());
        assert_eq!(r.parallelism_sweep.len(), E7_PARALLELISM.len());
        // One batched call replaces N per-label fan-outs, so batched
        // retrieval must win at every set size. The margin is profile-
        // dependent (debug builds are CPU-bound on profile assembly, so
        // the 200us round trips matter less than in release); the
        // release-mode e7 bench and the CI perf smoke assert the full
        // >=2x speedup.
        for point in &r.label_sweep {
            assert!(
                point.batched < point.per_label,
                "batched retrieval slower at {} labels: {:?} vs {:?}",
                point.labels,
                point.batched,
                point.per_label
            );
        }
        assert!(
            r.label_sweep.last().expect("non-empty").speedup >= 1.5,
            "no batching win at the largest label set: {:?}",
            r.label_sweep
        );
        assert!(r.report.contains("batched vs. per-label"));
    }
}
