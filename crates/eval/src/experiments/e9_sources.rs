//! E9 — source ablation: how much does each of the six scholarly sources
//! contribute? The paper integrates all six; this measures what dropping
//! any one of them costs.

use std::sync::Arc;

use minaret_core::{EditorConfig, Minaret};
use minaret_ontology::seed::curated_cs_ontology;
use minaret_scholarly::{
    RegistryConfig, ScholarSource, SimulatedSource, SourceKind, SourceRegistry, SourceSpec,
};
use minaret_synth::{WorldConfig, WorldGenerator};

use crate::experiments::candidate_relevance;
use crate::metrics::{mean, ndcg_at_k};
use crate::table::{f3, TextTable};

/// Quality with one source removed.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceAblation {
    /// The source that was removed (`None` = full six-source baseline).
    pub removed: Option<SourceKind>,
    /// Mean candidates retrieved per manuscript.
    pub mean_candidates: f64,
    /// Mean nDCG@10 against ground truth.
    pub ndcg_at_10: f64,
}

/// Result of experiment E9.
#[derive(Debug)]
pub struct E9Result {
    /// Baseline + one row per removed source.
    pub rows: Vec<SourceAblation>,
    /// Rendered report.
    pub report: String,
}

/// Runs the leave-one-source-out sweep.
pub fn run_e9(scholars: usize, manuscripts: usize) -> E9Result {
    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(scholars)).generate());
    let ontology = Arc::new(curated_cs_ontology());
    let subs = minaret_synth::SubmissionGenerator::new(&world, 0xE9).generate_many(manuscripts);

    let mut rows = Vec::new();
    let mut configurations: Vec<Option<SourceKind>> = vec![None];
    configurations.extend(SourceKind::ALL.iter().copied().map(Some));
    for removed in configurations {
        let mut registry = SourceRegistry::new(RegistryConfig::default());
        for spec in SourceSpec::all_defaults() {
            if Some(spec.kind) == removed {
                continue;
            }
            registry.register(
                Arc::new(SimulatedSource::new(spec, world.clone())) as Arc<dyn ScholarSource>
            );
        }
        let minaret = Minaret::new(
            Arc::new(registry),
            ontology.clone(),
            EditorConfig::default(),
        );
        let mut candidates = Vec::new();
        let mut ndcgs = Vec::new();
        for sub in &subs {
            let m = minaret_core::ManuscriptDetails {
                title: sub.title.clone(),
                keywords: sub.keywords.clone(),
                authors: sub
                    .authors
                    .iter()
                    .map(|&id| {
                        let s = world.scholar(id);
                        let inst = world.institution(s.current_affiliation());
                        minaret_core::AuthorInput {
                            name: s.full_name(),
                            affiliation: Some(inst.name.clone()),
                            country: Some(inst.country.clone()),
                        }
                    })
                    .collect(),
                target_venue: world.venue(sub.target_venue).name.clone(),
            };
            let Ok(report) = minaret.recommend(&m) else {
                candidates.push(0.0);
                ndcgs.push(0.0);
                continue;
            };
            candidates.push(report.candidates_retrieved as f64);
            let rels: Vec<f64> = report
                .recommendations
                .iter()
                .map(|r| candidate_relevance(&world, sub, &r.candidate.truths))
                .collect();
            let pool: Vec<f64> = world
                .scholars()
                .iter()
                .map(|s| minaret_synth::ground_truth_relevance(&world, sub, s.id))
                .collect();
            ndcgs.push(ndcg_at_k(&rels, &pool, 10));
        }
        rows.push(SourceAblation {
            removed,
            mean_candidates: mean(&candidates),
            ndcg_at_10: mean(&ndcgs),
        });
    }

    let mut table = TextTable::new(&["configuration", "candidates", "nDCG@10", "Δ nDCG"]);
    let baseline = rows[0].ndcg_at_10;
    for r in &rows {
        table.row(&[
            match r.removed {
                None => "all six sources".to_string(),
                Some(k) => format!("without {k}"),
            },
            format!("{:.1}", r.mean_candidates),
            f3(r.ndcg_at_10),
            format!("{:+.3}", r.ndcg_at_10 - baseline),
        ]);
    }
    let report = format!(
        "E9  leave-one-source-out ablation ({scholars} scholars, {manuscripts} manuscripts)\n{}",
        table.render()
    );
    E9Result { rows, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_runs_all_seven_configurations() {
        let r = run_e9(200, 4);
        assert_eq!(r.rows.len(), 7);
        assert!(r.rows[0].removed.is_none());
        // The baseline with all six sources retrieves at least as many
        // candidates as any ablated configuration.
        let base = r.rows[0].mean_candidates;
        for row in &r.rows[1..] {
            assert!(
                row.mean_candidates <= base + 1e-9,
                "removing {:?} increased candidates: {} > {}",
                row.removed,
                row.mean_candidates,
                base
            );
        }
        for row in &r.rows {
            assert!((0.0..=1.0 + 1e-9).contains(&row.ndcg_at_10));
        }
    }
}
