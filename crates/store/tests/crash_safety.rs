//! Kill-replay crash-safety suite for the storage engine.
//!
//! These tests simulate a crashed process by taking the on-disk bytes a
//! live store produced and damaging them the way real crashes do:
//! truncating the WAL at **every** byte offset (a torn append) and
//! flipping bits in the tail and the middle. Recovery must restore
//! exactly the committed prefix, or report a checksum error — it must
//! never silently serve corrupt state.
//!
//! Everything here is deterministic: damage offsets are enumerated or
//! drawn from the proptest shim's fixed per-test RNG stream, and
//! "crash" means operating on copied bytes — no sleeps, no signals, no
//! real process kills.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use minaret_store::{Store, StoreConfig, StoreError, SyncMode};
use proptest::prelude::*;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "minaret-crash-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn no_flush_config() -> StoreConfig {
    StoreConfig {
        memtable_bytes: usize::MAX, // keep everything in the WAL
        sparse_interval: 4,
        sync_mode: SyncMode::OnFlush,
        max_tables: 8,
    }
}

/// The single `wal-*.log` file in `dir`.
fn wal_file(dir: &Path) -> PathBuf {
    let mut wals: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().ends_with(".log"))
        .collect();
    assert_eq!(
        wals.len(),
        1,
        "expected exactly one WAL in {}",
        dir.display()
    );
    wals.pop().unwrap()
}

/// Writes `ops` through a store (no flushes, so all state lives in one
/// WAL), records the WAL length after each op, and returns
/// `(wal_bytes, boundaries, expected_state_after_each_op)`.
#[allow(clippy::type_complexity)]
fn build_wal(
    dir: &Path,
    ops: &[(Vec<u8>, Option<Vec<u8>>)],
) -> (Vec<u8>, Vec<usize>, Vec<BTreeMap<Vec<u8>, Option<Vec<u8>>>>) {
    let store = Store::open(dir, no_flush_config()).unwrap();
    let path = wal_file(dir);
    let mut boundaries = vec![0usize];
    let mut states = vec![BTreeMap::new()];
    let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
    for (key, value) in ops {
        match value {
            Some(v) => store.put(key, v).unwrap(),
            None => store.delete(key).unwrap(),
        }
        store.sync().unwrap();
        boundaries.push(std::fs::metadata(&path).unwrap().len() as usize);
        model.insert(key.clone(), value.clone());
        states.push(model.clone());
    }
    drop(store);
    (std::fs::read(&path).unwrap(), boundaries, states)
}

/// Asserts the reopened store's visible state equals `expected`
/// (including that tombstoned/absent keys read as absent).
fn assert_state(store: &Store, expected: &BTreeMap<Vec<u8>, Option<Vec<u8>>>) {
    for (key, value) in expected {
        assert_eq!(&store.get(key).unwrap(), value, "key {key:?}");
    }
}

/// A deterministic operation sequence with key reuse (so torn tails
/// drop *overwrites*, not just inserts) and tombstones.
fn scripted_ops() -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
    vec![
        (b"alpha".to_vec(), Some(b"1".to_vec())),
        (b"beta".to_vec(), Some(vec![0xAB; 120])),
        (b"alpha".to_vec(), Some(b"2-overwrite".to_vec())),
        (b"gamma".to_vec(), Some(b"3".to_vec())),
        (b"beta".to_vec(), None), // tombstone
        (b"delta".to_vec(), Some(vec![0x00; 64])),
    ]
}

/// Truncating the WAL at every single byte offset recovers exactly the
/// committed prefix of operations — the state after the last record
/// wholly contained in the surviving bytes.
#[test]
fn truncation_at_every_offset_recovers_committed_prefix() {
    let base = tmp_dir("trunc-every");
    let (wal, boundaries, states) = build_wal(&base, &scripted_ops());

    let crash_dir = tmp_dir("trunc-every-crash");
    for cut in 0..=wal.len() {
        let path = crash_dir.join("wal-0000000001.log");
        std::fs::write(&path, &wal[..cut]).unwrap();
        let store = Store::open(&crash_dir, no_flush_config()).unwrap();
        let committed = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_state(&store, &states[committed]);
        // Ops beyond the committed prefix must be invisible.
        if committed < states.len() - 1 {
            let stats = store.stats();
            assert_eq!(
                stats.recovered_records, committed as u64,
                "cut at {cut}: wrong record count"
            );
            assert_eq!(
                stats.torn_bytes_discarded as usize,
                cut - boundaries[committed]
            );
        }
        drop(store);
        // Reset the crash dir for the next cut (recovery resumes the
        // WAL and truncates its tail, so rebuild from scratch).
        std::fs::remove_dir_all(&crash_dir).unwrap();
        std::fs::create_dir_all(&crash_dir).unwrap();
    }
    std::fs::remove_dir_all(base).unwrap();
    std::fs::remove_dir_all(crash_dir).unwrap();
}

/// After recovering from any truncation, the store accepts new writes
/// and a further clean restart sees both the recovered prefix and the
/// post-recovery writes.
#[test]
fn recovery_then_write_then_restart_is_consistent() {
    let base = tmp_dir("trunc-resume");
    let (wal, boundaries, states) = build_wal(&base, &scripted_ops());

    let crash_dir = tmp_dir("trunc-resume-crash");
    // Sample a spread of cut points including every record boundary.
    let mut cuts: Vec<usize> = boundaries.clone();
    cuts.extend((0..wal.len()).step_by(17));
    for cut in cuts {
        let path = crash_dir.join("wal-0000000001.log");
        std::fs::write(&path, &wal[..cut]).unwrap();
        {
            let store = Store::open(&crash_dir, no_flush_config()).unwrap();
            store.put(b"post-crash", b"written-after-recovery").unwrap();
            store.sync().unwrap();
        }
        let store = Store::open(&crash_dir, no_flush_config()).unwrap();
        let committed = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_state(&store, &states[committed]);
        assert_eq!(
            store.get(b"post-crash").unwrap(),
            Some(b"written-after-recovery".to_vec())
        );
        drop(store);
        std::fs::remove_dir_all(&crash_dir).unwrap();
        std::fs::create_dir_all(&crash_dir).unwrap();
    }
    std::fs::remove_dir_all(base).unwrap();
    std::fs::remove_dir_all(crash_dir).unwrap();
}

/// Bit flips inside the last record are a torn tail: recovery keeps the
/// prefix before it. Bit flips in earlier records are mid-log
/// corruption: open must fail with a checksum error — never succeed
/// with silently altered data.
#[test]
fn bitflip_at_every_offset_recovers_prefix_or_errors() {
    let base = tmp_dir("flip-every");
    let (wal, boundaries, states) = build_wal(&base, &scripted_ops());
    let last_record_start = boundaries[boundaries.len() - 2];

    let crash_dir = tmp_dir("flip-every-crash");
    for pos in 0..wal.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut damaged = wal.clone();
            damaged[pos] ^= bit;
            let path = crash_dir.join("wal-0000000001.log");
            std::fs::write(&path, &damaged).unwrap();
            match Store::open(&crash_dir, no_flush_config()) {
                Ok(store) => {
                    // Only acceptable if the damage hit the final record
                    // (torn tail) — and then the state must be exactly
                    // the prefix before it...
                    if pos >= last_record_start {
                        assert_state(&store, &states[states.len() - 2]);
                    } else {
                        // ...or the flip landed in a length field and
                        // made an earlier record claim bytes past EOF,
                        // which truncates the log there. Whatever
                        // prefix survived must match a committed state.
                        let recovered = store.stats().recovered_records as usize;
                        assert!(
                            recovered < states.len(),
                            "flip at {pos} recovered impossible record count {recovered}"
                        );
                        // A corrupted-but-accepted record would make
                        // some key disagree with every committed state;
                        // the recovered count's state must match.
                        assert_state(&store, &states[recovered]);
                    }
                    drop(store);
                }
                Err(e) => {
                    assert!(
                        e.is_corruption(),
                        "flip at {pos} bit {bit:#04x}: expected corruption error, got {e}"
                    );
                }
            }
            std::fs::remove_dir_all(&crash_dir).unwrap();
            std::fs::create_dir_all(&crash_dir).unwrap();
        }
    }
    std::fs::remove_dir_all(base).unwrap();
    std::fs::remove_dir_all(crash_dir).unwrap();
}

/// A damaged sorted table (post-flush state) must be rejected at open —
/// immutable files admit no torn-tail excuse.
#[test]
fn flushed_table_bitflip_refuses_to_open() {
    let dir = tmp_dir("table-flip");
    {
        let store = Store::open(&dir, no_flush_config()).unwrap();
        for (k, v) in scripted_ops() {
            match v {
                Some(v) => store.put(&k, &v).unwrap(),
                None => store.delete(&k).unwrap(),
            }
        }
        store.flush().unwrap();
    }
    let sst: PathBuf = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.to_string_lossy().ends_with(".sst"))
        .expect("flush should have produced a table");
    let clean = std::fs::read(&sst).unwrap();
    for pos in (0..clean.len()).step_by(7) {
        let mut damaged = clean.clone();
        damaged[pos] ^= 0x20;
        std::fs::write(&sst, &damaged).unwrap();
        let err = Store::open(&dir, no_flush_config()).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Corrupt { .. }
                    | StoreError::Codec { .. }
                    | StoreError::VersionMismatch { .. }
            ),
            "table flip at {pos} not rejected: {err}"
        );
    }
    std::fs::remove_dir_all(dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random op sequences, random truncation point: the recovered
    /// store always equals the model state of the committed prefix.
    #[test]
    fn random_ops_random_truncation_recovers_a_committed_state(
        seed_ops in proptest::collection::vec(
            (
                proptest::collection::vec(0u8..=255, 1..12),
                proptest::option::of(proptest::collection::vec(0u8..=255, 0..200)),
            ),
            1..24,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        // Dedup trailing NUL ambiguity is irrelevant: keys are raw bytes.
        let dir = tmp_dir("prop-trunc");
        let (wal, boundaries, states) = build_wal(&dir, &seed_ops);
        let cut = ((wal.len() as f64) * cut_frac) as usize;

        let crash_dir = tmp_dir("prop-trunc-crash");
        let path = crash_dir.join("wal-0000000001.log");
        std::fs::write(&path, &wal[..cut]).unwrap();
        let store = Store::open(&crash_dir, no_flush_config()).unwrap();
        let committed = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        for (key, value) in &states[committed] {
            prop_assert_eq!(&store.get(key).unwrap(), value);
        }
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
        std::fs::remove_dir_all(crash_dir).unwrap();
    }

    /// Random bit flip anywhere in a WAL with a multi-record body:
    /// recovery yields a committed prefix state or a corruption error.
    #[test]
    fn random_bitflip_never_serves_uncommitted_state(
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = tmp_dir("prop-flip");
        let (wal, _boundaries, states) = build_wal(&dir, &scripted_ops());
        let pos = (((wal.len() - 1) as f64) * pos_frac) as usize;
        let mut damaged = wal.clone();
        damaged[pos] ^= 1u8 << bit;

        let crash_dir = tmp_dir("prop-flip-crash");
        let path = crash_dir.join("wal-0000000001.log");
        std::fs::write(&path, &damaged).unwrap();
        match Store::open(&crash_dir, no_flush_config()) {
            Ok(store) => {
                let recovered = store.stats().recovered_records as usize;
                prop_assert!(recovered < states.len() + 1);
                for (key, value) in &states[recovered.min(states.len() - 1)] {
                    prop_assert_eq!(&store.get(key).unwrap(), value);
                }
                drop(store);
            }
            Err(e) => prop_assert!(e.is_corruption(), "unexpected error kind: {e}"),
        }
        std::fs::remove_dir_all(dir).unwrap();
        std::fs::remove_dir_all(crash_dir).unwrap();
    }
}
