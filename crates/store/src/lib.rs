//! `minaret-store`: an embedded, crash-safe, log-structured key-value
//! store backing MINARET's persistent scholarly world.
//!
//! The engine follows the Badger/LevelDB family shape, scaled to this
//! system's needs:
//!
//! * **Write-ahead log** ([`wal`]) — every mutation is appended as a
//!   checksummed, length-prefixed record before it is applied, so
//!   acknowledged writes survive a crash.
//! * **Memtable** — an in-memory sorted map absorbing writes until it
//!   crosses a size threshold.
//! * **Sorted tables** ([`table`]) — immutable, checksummed files with
//!   sparse indexes, produced by memtable flushes and merged by
//!   compaction to bound file count and disk usage.
//! * **Recovery** — [`Store::open`] replays WALs in order, tolerating a
//!   torn tail (the interrupted final append) while refusing to open on
//!   mid-log corruption, and rebuilds exactly the pre-crash visible
//!   state.
//! * **Versioned codec** ([`codec`]) — every persisted payload carries
//!   a magic byte, a type tag, and a format version, so a future build
//!   reports a descriptive [`StoreError::VersionMismatch`] instead of
//!   misparsing old bytes.
//!
//! Higher layers store scholar profiles and synthetic-world snapshots
//! through this crate; the engine itself knows nothing about them —
//! it moves opaque keys and values, durably.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod error;
pub mod store;
pub mod table;
pub mod wal;

pub use codec::{Reader, Writer, ENVELOPE_MAGIC};
pub use error::StoreError;
pub use store::{Store, StoreConfig, StoreStats, SyncMode};
