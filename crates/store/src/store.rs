//! The storage engine: WAL + memtable + sorted tables.
//!
//! Write path: append to the WAL (fsync per batch or per write,
//! depending on [`SyncMode`]), then apply to the in-memory memtable.
//! When the memtable's byte footprint passes the configured threshold
//! it is flushed: frozen, written as an immutable sorted table (see
//! [`crate::table`]), and the WAL that covered it deleted.
//!
//! Read path: memtable first, then tables newest-to-oldest; the first
//! hit (value *or* tombstone) wins.
//!
//! Recovery ([`Store::open`]): delete leftover `.tmp` staging files,
//! load every published table, then replay every WAL in sequence
//! order into the memtable. Replay is idempotent — records are
//! upserts — so a crash between "table published" and "WAL deleted"
//! merely replays data the table already holds. A torn WAL tail is
//! truncated; mid-log corruption refuses to open.
//!
//! File naming: `wal-<seq>.log` and `table-<seq>.sst`, with `<seq>`
//! drawn from one monotone counter. Compaction merges every table into
//! a single new one at the *newest* seq, then deletes the inputs; a
//! crash mid-compaction leaves the inputs in place and the output
//! either absent (staging `.tmp`) or complete (renamed), and
//! newest-wins reads stay correct in both cases.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use minaret_telemetry::Telemetry;

use crate::error::StoreError;
use crate::table::{self, Table, TableEntry};
use crate::wal::{self, WalOp, WalWriter};

/// When WAL bytes are forced to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Fsync after every mutation — maximum durability, slowest.
    EveryWrite,
    /// Fsync only on [`Store::sync`], flush, and close. A crash can
    /// lose writes since the last sync, but never corrupt the store.
    OnFlush,
}

/// Tuning knobs for the engine.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Flush the memtable once its keys+values exceed this many bytes.
    pub memtable_bytes: usize,
    /// Index every Nth table entry in the sparse index.
    pub sparse_interval: usize,
    /// Durability mode for the WAL.
    pub sync_mode: SyncMode,
    /// Compact when the number of live tables reaches this count.
    pub max_tables: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            memtable_bytes: 4 << 20, // 4 MiB
            sparse_interval: 16,
            sync_mode: SyncMode::OnFlush,
            max_tables: 8,
        }
    }
}

/// Counters describing the engine's current shape.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live keys + tombstones in the memtable.
    pub memtable_entries: usize,
    /// Approximate memtable byte footprint.
    pub memtable_bytes: usize,
    /// Published sorted tables on disk.
    pub table_count: usize,
    /// Memtable flushes since open.
    pub flushes: u64,
    /// Compactions since open.
    pub compactions: u64,
    /// WAL records appended since open.
    pub wal_appends: u64,
    /// Milliseconds the last [`Store::open`] spent recovering.
    pub recovery_millis: u64,
    /// WAL records replayed by the last recovery.
    pub recovered_records: u64,
    /// Bytes dropped as a torn WAL tail by the last recovery.
    pub torn_bytes_discarded: u64,
}

struct Inner {
    /// `None` marks a tombstone awaiting flush.
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    memtable_bytes: usize,
    /// Open tables, oldest first (read newest-to-oldest).
    tables: Vec<Table>,
    wal: WalWriter,
    wal_path: PathBuf,
    next_seq: u64,
    stats: StoreStats,
}

/// An embedded, crash-safe, log-structured key-value store.
///
/// All operations take `&self`; the engine is internally synchronized
/// and safe to share behind an `Arc` across threads.
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    telemetry: Option<Telemetry>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:010}.log"))
}

fn table_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("table-{seq:010}.sst"))
}

fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

impl Store {
    /// Opens (or creates) a store in `dir`, recovering any state a
    /// previous process left behind.
    pub fn open(dir: &Path, config: StoreConfig) -> Result<Self, StoreError> {
        Self::open_inner(dir, config, None)
    }

    /// Like [`Store::open`], with engine internals exported through
    /// `telemetry` (WAL appends, flushes, table counts, recovery time).
    pub fn open_with_telemetry(
        dir: &Path,
        config: StoreConfig,
        telemetry: Telemetry,
    ) -> Result<Self, StoreError> {
        Self::open_inner(dir, config, Some(telemetry))
    }

    fn open_inner(
        dir: &Path,
        config: StoreConfig,
        telemetry: Option<Telemetry>,
    ) -> Result<Self, StoreError> {
        let started = Instant::now();
        std::fs::create_dir_all(dir)
            .map_err(|e| StoreError::io(dir, "creating data directory", e))?;

        // Catalogue what the previous process left: published tables,
        // WALs, and any half-staged .tmp files (which by construction
        // are incomplete and must be discarded).
        let mut table_seqs: Vec<u64> = Vec::new();
        let mut wal_seqs: Vec<u64> = Vec::new();
        let listing =
            std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, "listing data directory", e))?;
        for entry in listing {
            let entry = entry.map_err(|e| StoreError::io(dir, "listing data directory", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                std::fs::remove_file(entry.path())
                    .map_err(|e| StoreError::io(entry.path(), "removing stale staging file", e))?;
            } else if let Some(seq) = parse_seq(name, "table-", ".sst") {
                table_seqs.push(seq);
            } else if let Some(seq) = parse_seq(name, "wal-", ".log") {
                wal_seqs.push(seq);
            }
        }
        table_seqs.sort_unstable();
        wal_seqs.sort_unstable();

        let mut tables = Vec::with_capacity(table_seqs.len());
        for &seq in &table_seqs {
            tables.push(Table::open(&table_path(dir, seq))?);
        }

        // Replay WALs oldest-first. Records are upserts, so replaying a
        // WAL whose table was already published is harmless.
        let mut memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let mut memtable_bytes = 0usize;
        let mut recovered_records = 0u64;
        let mut torn_total = 0u64;
        let mut resume: Option<(PathBuf, u64)> = None;
        for (i, &seq) in wal_seqs.iter().enumerate() {
            let path = wal_path(dir, seq);
            let replay = wal::replay(&path)?;
            recovered_records += replay.ops.len() as u64;
            torn_total += replay.torn_bytes;
            for op in replay.ops {
                match op {
                    WalOp::Put { key, value } => {
                        memtable_bytes += key.len() + value.len();
                        memtable.insert(key, Some(value));
                    }
                    WalOp::Delete { key } => {
                        memtable_bytes += key.len();
                        memtable.insert(key, None);
                    }
                }
            }
            if i + 1 == wal_seqs.len() {
                resume = Some((path, replay.committed_bytes));
            }
        }

        let max_seq = table_seqs
            .iter()
            .chain(wal_seqs.iter())
            .copied()
            .max()
            .unwrap_or(0);
        let (wal, active_wal_path, next_seq) = match resume {
            Some((path, committed)) => (WalWriter::resume(&path, committed)?, path, max_seq + 1),
            None => {
                let seq = max_seq + 1;
                let path = wal_path(dir, seq);
                (WalWriter::create(&path)?, path, seq + 1)
            }
        };

        let recovery_millis = started.elapsed().as_millis() as u64;
        let stats = StoreStats {
            memtable_entries: memtable.len(),
            memtable_bytes,
            table_count: tables.len(),
            recovery_millis,
            recovered_records,
            torn_bytes_discarded: torn_total,
            ..StoreStats::default()
        };
        let store = Self {
            dir: dir.to_path_buf(),
            config,
            telemetry,
            inner: Mutex::new(Inner {
                memtable,
                memtable_bytes,
                tables,
                wal,
                wal_path: active_wal_path,
                next_seq,
                stats,
            }),
        };
        if let Some(t) = &store.telemetry {
            t.gauge("store_recovery_millis", &[])
                .set(recovery_millis as i64);
            t.counter("store_recovered_records", &[])
                .inc_by(recovered_records);
            t.gauge("store_table_count", &[])
                .set(table_seqs.len() as i64);
        }
        Ok(store)
    }

    /// Stores `value` under `key`, overwriting any prior value.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.apply(WalOp::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })
    }

    /// Removes `key`. Removing an absent key is not an error.
    pub fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.apply(WalOp::Delete { key: key.to_vec() })
    }

    fn apply(&self, op: WalOp) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        inner.wal.append(&op)?;
        if self.config.sync_mode == SyncMode::EveryWrite {
            inner.wal.sync()?;
        }
        inner.stats.wal_appends += 1;
        match op {
            WalOp::Put { key, value } => {
                inner.memtable_bytes += key.len() + value.len();
                inner.memtable.insert(key, Some(value));
            }
            WalOp::Delete { key } => {
                inner.memtable_bytes += key.len();
                inner.memtable.insert(key, None);
            }
        }
        if let Some(t) = &self.telemetry {
            t.counter("store_wal_appends", &[]).inc();
        }
        if inner.memtable_bytes >= self.config.memtable_bytes {
            self.flush_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Fetches the value stored under `key`, if any.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let inner = self.inner.lock().expect("store lock poisoned");
        if let Some(slot) = inner.memtable.get(key) {
            return Ok(slot.clone());
        }
        for t in inner.tables.iter().rev() {
            if let Some(hit) = t.get(key)? {
                return Ok(hit); // value or tombstone — newest wins
            }
        }
        Ok(None)
    }

    /// Forces buffered WAL bytes to disk.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.inner.lock().expect("store lock poisoned").wal.sync()
    }

    /// Flushes the memtable to a new sorted table and starts a fresh
    /// WAL. No-op when the memtable is empty.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut Inner) -> Result<(), StoreError> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        // Durability order: WAL synced → table published → old WAL
        // removed. A crash at any point leaves a replayable WAL or a
        // published table (or both, which replay tolerates).
        inner.wal.sync()?;
        let entries: Vec<TableEntry> = inner
            .memtable
            .iter()
            .map(|(k, v)| TableEntry {
                key: k.clone(),
                value: v.clone(),
            })
            .collect();
        let table_seq = inner.next_seq;
        inner.next_seq += 1;
        let tpath = table_path(&self.dir, table_seq);
        table::write_table(&tpath, &entries, self.config.sparse_interval)?;
        inner.tables.push(Table::open(&tpath)?);

        let wal_seq = inner.next_seq;
        inner.next_seq += 1;
        let new_wal_path = wal_path(&self.dir, wal_seq);
        inner.wal = WalWriter::create(&new_wal_path)?;
        let old_wal = std::mem::replace(&mut inner.wal_path, new_wal_path);
        std::fs::remove_file(&old_wal)
            .map_err(|e| StoreError::io(&old_wal, "removing flushed WAL", e))?;

        inner.memtable.clear();
        inner.memtable_bytes = 0;
        inner.stats.flushes += 1;
        if let Some(t) = &self.telemetry {
            t.counter("store_flushes", &[]).inc();
            t.gauge("store_table_count", &[])
                .set(inner.tables.len() as i64);
        }
        if inner.tables.len() >= self.config.max_tables {
            self.compact_locked(inner)?;
        }
        Ok(())
    }

    /// Merges every table (and the current memtable) into one table,
    /// dropping tombstones and shadowed versions, bounding file count
    /// and disk usage.
    pub fn compact(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        self.flush_locked(&mut inner)?;
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> Result<(), StoreError> {
        if inner.tables.len() <= 1 {
            return Ok(());
        }
        // Merge oldest→newest so later entries overwrite earlier ones.
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for t in &inner.tables {
            for e in t.iter_entries()? {
                merged.insert(e.key, e.value);
            }
        }
        // With every table merged, tombstones have nothing left to
        // shadow and can be dropped.
        let entries: Vec<TableEntry> = merged
            .into_iter()
            .filter_map(|(key, value)| {
                value.map(|v| TableEntry {
                    key,
                    value: Some(v),
                })
            })
            .collect();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let tpath = table_path(&self.dir, seq);
        table::write_table(&tpath, &entries, self.config.sparse_interval)?;
        let new_table = Table::open(&tpath)?;
        // Output is durable; now the inputs can go. A crash before
        // these deletes leaves shadowed duplicates, which newest-wins
        // reads and the next compaction both handle.
        let old = std::mem::replace(&mut inner.tables, vec![new_table]);
        for t in old {
            std::fs::remove_file(t.path())
                .map_err(|e| StoreError::io(t.path(), "removing compacted table", e))?;
        }
        inner.stats.compactions += 1;
        if let Some(t) = &self.telemetry {
            t.counter("store_compactions", &[]).inc();
            t.gauge("store_table_count", &[]).set(1);
        }
        Ok(())
    }

    /// A snapshot of the engine's counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store lock poisoned");
        let mut s = inner.stats.clone();
        s.memtable_entries = inner.memtable.len();
        s.memtable_bytes = inner.memtable_bytes;
        s.table_count = inner.tables.len();
        s
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        if let Ok(inner) = self.inner.get_mut() {
            let _ = inner.wal.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("minaret-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_config() -> StoreConfig {
        StoreConfig {
            memtable_bytes: 512,
            sparse_interval: 4,
            sync_mode: SyncMode::OnFlush,
            max_tables: 4,
        }
    }

    #[test]
    fn put_get_delete_round_trip() {
        let dir = tmp_dir("crud");
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.get(b"a").unwrap(), None);
        store.put(b"a", b"1").unwrap();
        store.put(b"b", b"2").unwrap();
        assert_eq!(store.get(b"a").unwrap(), Some(b"1".to_vec()));
        store.put(b"a", b"updated").unwrap();
        assert_eq!(store.get(b"a").unwrap(), Some(b"updated".to_vec()));
        store.delete(b"a").unwrap();
        assert_eq!(store.get(b"a").unwrap(), None);
        assert_eq!(store.get(b"b").unwrap(), Some(b"2".to_vec()));
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn restart_rebuilds_exact_state() {
        let dir = tmp_dir("restart");
        {
            let store = Store::open(&dir, small_config()).unwrap();
            for i in 0..200 {
                store
                    .put(format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            store.delete(b"k0007").unwrap();
            store.put(b"k0003", b"rewritten").unwrap();
            store.sync().unwrap();
        }
        let store = Store::open(&dir, small_config()).unwrap();
        assert!(store.stats().table_count > 0, "small memtable should flush");
        assert_eq!(
            store.get(b"k0007").unwrap(),
            None,
            "delete survives restart"
        );
        assert_eq!(store.get(b"k0003").unwrap(), Some(b"rewritten".to_vec()));
        for i in 0..200 {
            if i == 7 || i == 3 {
                continue;
            }
            assert_eq!(
                store.get(format!("k{i:04}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "k{i:04}"
            );
        }
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn tombstone_in_memtable_shadows_table_value() {
        let dir = tmp_dir("shadow");
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        store.put(b"k", b"old").unwrap();
        store.flush().unwrap();
        store.delete(b"k").unwrap();
        assert_eq!(store.get(b"k").unwrap(), None);
        // And across a flush of the tombstone itself:
        store.flush().unwrap();
        assert_eq!(store.get(b"k").unwrap(), None);
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn compaction_bounds_table_count_and_preserves_data() {
        let dir = tmp_dir("compact");
        let cfg = small_config();
        let store = Store::open(&dir, cfg.clone()).unwrap();
        for round in 0..6 {
            for i in 0..40 {
                store
                    .put(
                        format!("key-{i:03}").as_bytes(),
                        format!("round-{round}-value-{i}").as_bytes(),
                    )
                    .unwrap();
            }
            store.flush().unwrap();
        }
        let stats = store.stats();
        assert!(
            stats.table_count < cfg.max_tables,
            "compaction should bound tables, got {}",
            stats.table_count
        );
        assert!(stats.compactions > 0);
        for i in 0..40 {
            assert_eq!(
                store.get(format!("key-{i:03}").as_bytes()).unwrap(),
                Some(format!("round-5-value-{i}").into_bytes())
            );
        }
        // On-disk file count matches the in-memory view.
        let sst_files = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".sst")
            })
            .count();
        assert_eq!(sst_files, stats.table_count);
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn compaction_drops_tombstones_from_disk() {
        let dir = tmp_dir("tombstone-gc");
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        store.put(b"keep", b"x").unwrap();
        store.put(b"gone", b"y").unwrap();
        store.flush().unwrap();
        store.delete(b"gone").unwrap();
        store.flush().unwrap();
        store.compact().unwrap();
        let stats = store.stats();
        assert_eq!(stats.table_count, 1);
        assert_eq!(store.get(b"gone").unwrap(), None);
        assert_eq!(store.get(b"keep").unwrap(), Some(b"x".to_vec()));
        // After compaction the sole table holds exactly one entry.
        let inner = store.inner.lock().unwrap();
        assert_eq!(inner.tables[0].len(), 1);
        drop(inner);
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn stale_tmp_files_are_cleared_on_open() {
        let dir = tmp_dir("tmpclean");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("table-0000000005.sst.tmp"), b"half written").unwrap();
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        assert!(!dir.join("table-0000000005.sst.tmp").exists());
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn unsynced_writes_may_be_lost_but_synced_ones_never() {
        let dir = tmp_dir("durability");
        {
            let store = Store::open(&dir, StoreConfig::default()).unwrap();
            store.put(b"synced", b"yes").unwrap();
            store.sync().unwrap();
            // Simulate a crash: drop without an explicit close. (Drop
            // best-effort syncs, so "synced" is the floor, not the
            // ceiling.)
        }
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.get(b"synced").unwrap(), Some(b"yes".to_vec()));
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
