//! Versioned binary encoding primitives.
//!
//! Every payload the storage layer persists — scholar profiles, world
//! snapshots, table blocks — goes through this module so the on-disk
//! bytes always start with an explicit envelope:
//!
//! ```text
//! [0xM5][tag u8][version u8][payload …]
//! ```
//!
//! * `0xM5` — the one-byte codec magic (`0xA5`), so a file of zeros or a
//!   JSON document is rejected immediately instead of misparsed.
//! * `tag` — what the payload *is* (a profile, a world section, …), so a
//!   value read under the wrong key fails loudly.
//! * `version` — the format revision. Decoding a payload written by a
//!   newer build yields [`StoreError::VersionMismatch`] with both
//!   versions in the message, never an opaque parse failure.
//!
//! The primitives are deliberately boring: little-endian fixed-width
//! integers and length-prefixed byte strings. Boring is what you want in
//! a format that must be re-readable years later.

use crate::error::StoreError;

/// The envelope magic byte preceding every versioned payload.
pub const ENVELOPE_MAGIC: u8 = 0xA5;

/// An append-only binary writer.
///
/// Wraps a `Vec<u8>`; all integers are little-endian, all byte strings
/// are `u32`-length-prefixed.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer with a versioned envelope already emitted.
    #[must_use]
    pub fn versioned(tag: u8, version: u8) -> Self {
        let mut w = Self::new();
        w.buf.push(ENVELOPE_MAGIC);
        w.buf.push(tag);
        w.buf.push(version);
        w
    }

    /// Appends one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64` (bit pattern, so round trips are
    /// bitwise-exact).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends raw bytes with no length prefix (for pre-encoded
    /// sections).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    #[must_use]
    pub fn finish_len(&self) -> usize {
        self.buf.len()
    }

    /// Appends an `Option<u32>` as a presence byte plus the value.
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
            None => self.u8(0),
        }
    }

    /// Appends an `Option<u64>` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Appends an `Option<&str>` as a presence byte plus the string.
    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
            None => self.u8(0),
        }
    }

    /// The encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked binary reader over an encoded payload.
///
/// Every accessor returns a descriptive [`StoreError::Codec`] on
/// truncation instead of panicking, so corrupt values surface as errors
/// the caller can report.
#[derive(Debug)]
pub struct Reader<'a> {
    what: &'static str,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over raw (non-enveloped) bytes; `what` names the payload
    /// kind in error messages.
    #[must_use]
    pub fn new(what: &'static str, buf: &'a [u8]) -> Self {
        Self { what, buf, pos: 0 }
    }

    /// Opens a versioned envelope: checks the magic and `tag`, and that
    /// the version byte is at most `supported`. Returns the version
    /// actually found, positioned at the start of the payload.
    pub fn versioned(
        what: &'static str,
        buf: &'a [u8],
        tag: u8,
        supported: u8,
    ) -> Result<(Self, u8), StoreError> {
        let mut r = Self::new(what, buf);
        let magic = r.u8()?;
        if magic != ENVELOPE_MAGIC {
            return Err(StoreError::Codec {
                what,
                detail: format!(
                    "bad envelope magic 0x{magic:02x} (expected 0x{ENVELOPE_MAGIC:02x}) — \
                     not a minaret-store payload"
                ),
            });
        }
        let found_tag = r.u8()?;
        if found_tag != tag {
            return Err(StoreError::Codec {
                what,
                detail: format!("payload tag 0x{found_tag:02x} is not the expected 0x{tag:02x}"),
            });
        }
        let version = r.u8()?;
        if version > supported || version == 0 {
            return Err(StoreError::VersionMismatch {
                what,
                found: version,
                supported,
            });
        }
        Ok((r, version))
    }

    fn take(&mut self, n: usize, field: &str) -> Result<&'a [u8], StoreError> {
        if self.buf.len() - self.pos < n {
            return Err(StoreError::Codec {
                what: self.what,
                detail: format!(
                    "truncated while reading {field}: needed {n} bytes at offset {}, {} left",
                    self.pos,
                    self.buf.len() - self.pos
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let len = self.u32()? as usize;
        self.take(len, "byte string body")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, StoreError> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw).map_err(|e| StoreError::Codec {
            what: self.what,
            detail: format!("string field is not UTF-8: {e}"),
        })
    }

    /// Reads an `Option<u32>` written by [`Writer::opt_u32`].
    pub fn opt_u32(&mut self) -> Result<Option<u32>, StoreError> {
        self.presence()?.map(|()| self.u32()).transpose()
    }

    /// Reads an `Option<u64>` written by [`Writer::opt_u64`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, StoreError> {
        self.presence()?.map(|()| self.u64()).transpose()
    }

    /// Reads an `Option<String>` written by [`Writer::opt_str`].
    pub fn opt_string(&mut self) -> Result<Option<String>, StoreError> {
        self.presence()?
            .map(|()| self.str().map(str::to_string))
            .transpose()
    }

    fn presence(&mut self) -> Result<Option<()>, StoreError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(())),
            other => Err(StoreError::Codec {
                what: self.what,
                detail: format!("presence byte must be 0 or 1, got {other}"),
            }),
        }
    }

    /// How many bytes remain unread.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the payload was consumed exactly — trailing garbage
    /// means the encoder and decoder disagree about the format.
    pub fn expect_end(&self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Codec {
                what: self.what,
                detail: format!("{} trailing bytes after the last field", self.remaining()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.f64(std::f64::consts::PI);
        w.str("héllo");
        w.opt_u32(None);
        w.opt_u32(Some(9));
        w.opt_str(Some("x"));
        w.opt_str(None);
        let bytes = w.finish();
        let mut r = Reader::new("test payload", &bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap().to_bits(), std::f64::consts::PI.to_bits());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt_u32().unwrap(), None);
        assert_eq!(r.opt_u32().unwrap(), Some(9));
        assert_eq!(r.opt_string().unwrap().as_deref(), Some("x"));
        assert_eq!(r.opt_string().unwrap(), None);
        r.expect_end().unwrap();
    }

    #[test]
    fn envelope_round_trips_and_rejects_future_versions() {
        let mut w = Writer::versioned(0x11, 2);
        w.u32(5);
        let bytes = w.finish();

        let (mut r, version) = Reader::versioned("thing", &bytes, 0x11, 3).unwrap();
        assert_eq!(version, 2);
        assert_eq!(r.u32().unwrap(), 5);

        // A build that only speaks version 1 must refuse, descriptively.
        let err = Reader::versioned("thing", &bytes, 0x11, 1).unwrap_err();
        match &err {
            StoreError::VersionMismatch {
                found, supported, ..
            } => {
                assert_eq!((*found, *supported), (2, 1));
            }
            other => panic!("expected VersionMismatch, got {other}"),
        }
        assert!(err.to_string().contains("version 2"), "{err}");
    }

    #[test]
    fn envelope_rejects_wrong_magic_and_tag() {
        let bytes = Writer::versioned(0x11, 1).finish();
        assert!(matches!(
            Reader::versioned("thing", &[0u8, 0, 0], 0x11, 1),
            Err(StoreError::Codec { .. })
        ));
        assert!(matches!(
            Reader::versioned("thing", &bytes, 0x22, 1),
            Err(StoreError::Codec { .. })
        ));
        // Version zero is never valid.
        assert!(matches!(
            Reader::versioned("thing", &[ENVELOPE_MAGIC, 0x11, 0], 0x11, 1),
            Err(StoreError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn truncation_errors_are_descriptive() {
        let mut w = Writer::new();
        w.str("hello");
        let mut bytes = w.finish();
        bytes.truncate(6);
        let mut r = Reader::new("test payload", &bytes);
        let err = r.str().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("test payload"), "{msg}");
        assert!(msg.contains("truncated"), "{msg}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = Writer::new();
        w.u8(1);
        let mut bytes = w.finish();
        bytes.push(0xff);
        let mut r = Reader::new("test payload", &bytes);
        r.u8().unwrap();
        assert!(r.expect_end().is_err());
    }
}
