//! The write-ahead log: append-only, checksummed, length-prefixed.
//!
//! Every mutation is appended as one record before it touches the
//! memtable, so a crash can lose at most the unsynced tail — never
//! acknowledged state. Record layout:
//!
//! ```text
//! [len u32][crc32 u32][payload: op u8 | key_len u32 | key | value]
//! ```
//!
//! `len` counts the payload bytes; `crc32` (IEEE) covers the payload
//! only, so a bit flip anywhere in a record is caught. Replay applies
//! records in order and classifies damage by where it sits:
//!
//! * a record whose claimed bytes run past end-of-file, or whose
//!   checksum fails **at** end-of-file, is a *torn tail* — the crash
//!   interrupted the append. The committed prefix is returned and the
//!   tail is reported for truncation;
//! * a checksum failure with more bytes *after* the record is mid-log
//!   corruption: committed data was damaged at rest, and replay refuses
//!   with [`StoreError::Corrupt`] instead of silently dropping records.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::error::StoreError;

/// One replayed WAL operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Set `key` to `value`.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Remove `key`.
    Delete {
        /// The key.
        key: Vec<u8>,
    },
}

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the same polynomial
/// zlib and LevelDB-family stores use. Table-free bitwise form: the WAL
/// writes records far larger than the per-byte loop costs.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// An open WAL file accepting appends.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    bytes_written: u64,
}

impl WalWriter {
    /// Creates (or truncates) the WAL at `path`.
    pub fn create(path: &Path) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StoreError::io(path, "creating WAL", e))?;
        Ok(Self {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            bytes_written: 0,
        })
    }

    /// Opens the WAL at `path` for further appends after `committed`
    /// bytes of valid records (anything beyond is a torn tail from a
    /// crash and is truncated away first).
    pub fn resume(path: &Path, committed: u64) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(path, "reopening WAL", e))?;
        file.set_len(committed)
            .map_err(|e| StoreError::io(path, "truncating torn WAL tail", e))?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| StoreError::io(path, "seeking to WAL end", e))?;
        Ok(Self {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            bytes_written: committed,
        })
    }

    /// Appends one operation. Returns the record's encoded size in
    /// bytes. The bytes are buffered; call [`WalWriter::sync`] to make
    /// them durable.
    pub fn append(&mut self, op: &WalOp) -> Result<u64, StoreError> {
        let payload = encode_payload(op);
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.file
            .write_all(&record)
            .map_err(|e| StoreError::io(&self.path, "appending WAL record", e))?;
        self.bytes_written += record.len() as u64;
        Ok(record.len() as u64)
    }

    /// Flushes buffered records and fsyncs the file: everything appended
    /// so far survives a crash after this returns.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .flush()
            .map_err(|e| StoreError::io(&self.path, "flushing WAL buffer", e))?;
        self.file
            .get_ref()
            .sync_data()
            .map_err(|e| StoreError::io(&self.path, "fsyncing WAL", e))?;
        Ok(())
    }

    /// Total bytes of records written to this WAL.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

fn encode_payload(op: &WalOp) -> Vec<u8> {
    match op {
        WalOp::Put { key, value } => {
            let mut p = Vec::with_capacity(5 + key.len() + value.len());
            p.push(OP_PUT);
            p.extend_from_slice(&(key.len() as u32).to_le_bytes());
            p.extend_from_slice(key);
            p.extend_from_slice(value);
            p
        }
        WalOp::Delete { key } => {
            let mut p = Vec::with_capacity(5 + key.len());
            p.push(OP_DELETE);
            p.extend_from_slice(&(key.len() as u32).to_le_bytes());
            p.extend_from_slice(key);
            p
        }
    }
}

fn decode_payload(path: &Path, offset: u64, payload: &[u8]) -> Result<WalOp, StoreError> {
    let corrupt = |detail: String| StoreError::Corrupt {
        path: path.to_path_buf(),
        offset,
        detail,
    };
    if payload.len() < 5 {
        return Err(corrupt(format!(
            "payload of {} bytes is too short for an op header",
            payload.len()
        )));
    }
    let op = payload[0];
    let key_len = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
    let rest = &payload[5..];
    if key_len > rest.len() {
        return Err(corrupt(format!(
            "key length {key_len} exceeds remaining payload of {} bytes",
            rest.len()
        )));
    }
    let (key, value) = rest.split_at(key_len);
    match op {
        OP_PUT => Ok(WalOp::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        }),
        OP_DELETE if value.is_empty() => Ok(WalOp::Delete { key: key.to_vec() }),
        OP_DELETE => Err(corrupt(format!(
            "delete record carries {} value bytes",
            value.len()
        ))),
        other => Err(corrupt(format!("unknown op byte 0x{other:02x}"))),
    }
}

/// What a replay recovered.
#[derive(Debug)]
pub struct Replay {
    /// The committed operations, in append order.
    pub ops: Vec<WalOp>,
    /// Bytes of valid records; anything past this offset was a torn
    /// tail from an interrupted append.
    pub committed_bytes: u64,
    /// Bytes discarded as torn tail (0 for a cleanly-closed WAL).
    pub torn_bytes: u64,
}

/// Replays the WAL at `path`.
///
/// Returns the committed prefix, tolerating a torn tail. Mid-log
/// damage — a record that fails its checksum while valid bytes follow
/// it — is a hard [`StoreError::Corrupt`].
pub fn replay(path: &Path) -> Result<Replay, StoreError> {
    let mut raw = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut raw))
        .map_err(|e| StoreError::io(path, "reading WAL for replay", e))?;

    let mut ops = Vec::new();
    let mut pos: usize = 0;
    loop {
        let remaining = raw.len() - pos;
        if remaining == 0 {
            return Ok(Replay {
                ops,
                committed_bytes: pos as u64,
                torn_bytes: 0,
            });
        }
        if remaining < 8 {
            // Not even a header fits: torn mid-header.
            return Ok(Replay {
                ops,
                committed_bytes: pos as u64,
                torn_bytes: remaining as u64,
            });
        }
        let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().unwrap());
        if remaining - 8 < len {
            // The record claims more bytes than the file holds: the
            // append (or the length field itself) was torn.
            return Ok(Replay {
                ops,
                committed_bytes: pos as u64,
                torn_bytes: remaining as u64,
            });
        }
        let payload = &raw[pos + 8..pos + 8 + len];
        let record_end = pos + 8 + len;
        if crc32(payload) != stored_crc {
            if record_end == raw.len() {
                // Checksum failure on the very last record: a torn
                // write of that record. Drop it, keep the prefix.
                return Ok(Replay {
                    ops,
                    committed_bytes: pos as u64,
                    torn_bytes: remaining as u64,
                });
            }
            // Valid bytes follow a failing record: committed data was
            // damaged at rest. Refuse rather than drop silently.
            return Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: pos as u64,
                detail: format!(
                    "record checksum mismatch (stored 0x{stored_crc:08x}, computed \
                     0x{:08x}) with {} committed bytes after it",
                    crc32(payload),
                    raw.len() - record_end
                ),
            });
        }
        ops.push(decode_payload(path, pos as u64, payload)?);
        pos = record_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("minaret-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Put {
                key: b"alpha".to_vec(),
                value: b"1".to_vec(),
            },
            WalOp::Put {
                key: b"beta".to_vec(),
                value: vec![0u8; 300],
            },
            WalOp::Delete {
                key: b"alpha".to_vec(),
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path).unwrap();
        for op in &sample_ops() {
            w.append(op).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let replay = replay(&path).unwrap();
        assert_eq!(replay.ops, sample_ops());
        assert_eq!(replay.torn_bytes, 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn truncated_tail_recovers_prefix() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path).unwrap();
        for op in &sample_ops() {
            w.append(op).unwrap();
        }
        w.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        drop(w);
        // Chop the file at every offset: replay must return exactly the
        // records fully contained in the prefix.
        let mut boundaries = vec![0usize];
        {
            let mut pos = 0;
            for op in &sample_ops() {
                pos += 8 + encode_payload(op).len();
                boundaries.push(pos);
            }
        }
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let r = replay(&path).unwrap();
            let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(r.ops.len(), expect, "cut at {cut}");
            assert_eq!(r.ops, sample_ops()[..expect].to_vec(), "cut at {cut}");
            assert_eq!(r.committed_bytes, boundaries[expect] as u64);
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn midlog_bitflip_is_a_hard_error() {
        let dir = tmp_dir("midlog");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path).unwrap();
        for op in &sample_ops() {
            w.append(op).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let mut raw = std::fs::read(&path).unwrap();
        // Flip a payload byte inside the *first* record.
        raw[10] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        let err = replay(&path).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn tail_bitflip_recovers_committed_prefix() {
        let dir = tmp_dir("tailflip");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path).unwrap();
        for op in &sample_ops() {
            w.append(op).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01; // damage the last record's payload
        std::fs::write(&path, &raw).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.ops, sample_ops()[..2].to_vec());
        assert!(r.torn_bytes > 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn resume_truncates_torn_tail_and_appends() {
        let dir = tmp_dir("resume");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path).unwrap();
        for op in &sample_ops() {
            w.append(op).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Simulate a torn append.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[9, 9, 9]);
        std::fs::write(&path, &raw).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.torn_bytes, 3);
        let mut w = WalWriter::resume(&path, r.committed_bytes).unwrap();
        w.append(&WalOp::Put {
            key: b"gamma".to_vec(),
            value: b"3".to_vec(),
        })
        .unwrap();
        w.sync().unwrap();
        drop(w);
        let r2 = replay(&path).unwrap();
        assert_eq!(r2.ops.len(), 4);
        assert_eq!(r2.torn_bytes, 0);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
