//! Error types for the storage engine.

use std::fmt;
use std::path::PathBuf;

/// Why a store operation failed.
///
/// Corruption variants carry enough context (file, offset, expectation)
/// to diagnose a damaged data directory from the message alone — the
/// engine never silently serves bytes that failed a checksum.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file the operation touched, when known.
        path: PathBuf,
        /// What the engine was doing.
        context: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// A fully-written record failed its checksum with valid data
    /// following it — mid-log corruption, not a torn tail. The store
    /// refuses to open rather than silently drop committed records.
    Corrupt {
        /// The damaged file.
        path: PathBuf,
        /// Byte offset where the failing record begins.
        offset: u64,
        /// What failed to validate.
        detail: String,
    },
    /// A persisted file announced a format version this build does not
    /// speak (see [`crate::codec`]).
    VersionMismatch {
        /// What kind of payload was being decoded.
        what: &'static str,
        /// The version byte found on disk.
        found: u8,
        /// The newest version this build understands.
        supported: u8,
    },
    /// A persisted payload was structurally invalid for its announced
    /// version — truncated field, impossible length, bad magic.
    Codec {
        /// What kind of payload was being decoded.
        what: &'static str,
        /// Human-readable description of the malformation.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                path,
                context,
                source,
            } => {
                write!(f, "{context} ({}): {source}", path.display())
            }
            StoreError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt record in {} at byte {offset}: {detail}",
                path.display()
            ),
            StoreError::VersionMismatch {
                what,
                found,
                supported,
            } => write!(
                f,
                "{what} was written with format version {found}, but this build supports \
                 versions up to {supported}; migrate or regenerate the data directory"
            ),
            StoreError::Codec { what, detail } => {
                write!(f, "malformed {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    /// Wraps an I/O error with the file and operation that hit it.
    pub fn io(path: impl Into<PathBuf>, context: &'static str, source: std::io::Error) -> Self {
        StoreError::Io {
            path: path.into(),
            context,
            source,
        }
    }

    /// True when this is a checksum/corruption failure (as opposed to a
    /// plain I/O or versioning problem).
    pub fn is_corruption(&self) -> bool {
        matches!(self, StoreError::Corrupt { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = StoreError::io(
            "/tmp/x/wal-0.log",
            "appending WAL record",
            std::io::Error::other("disk full"),
        );
        let msg = e.to_string();
        assert!(msg.contains("appending WAL record"), "{msg}");
        assert!(msg.contains("wal-0.log"), "{msg}");

        let v = StoreError::VersionMismatch {
            what: "scholar profile",
            found: 9,
            supported: 1,
        };
        let msg = v.to_string();
        assert!(msg.contains("version 9"), "{msg}");
        assert!(msg.contains("up to 1"), "{msg}");
    }

    #[test]
    fn corruption_predicate() {
        assert!(StoreError::Corrupt {
            path: "x".into(),
            offset: 7,
            detail: "bad crc".into()
        }
        .is_corruption());
        assert!(!StoreError::VersionMismatch {
            what: "w",
            found: 2,
            supported: 1
        }
        .is_corruption());
    }
}
