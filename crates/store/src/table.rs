//! Immutable sorted table files.
//!
//! When the memtable grows past its threshold it is frozen and written
//! out as one sorted, checksummed, immutable file — the LSM's on-disk
//! level. Layout:
//!
//! ```text
//! [0xA5][TAG_TABLE][version]            envelope (see codec)
//! [entry_count u32]
//! entries: entry_count ×
//!   [flags u8][key bytes][value bytes]  (flags bit 0 = tombstone;
//!                                        tombstones carry no value)
//! sparse index: [index_count u32] ×
//!   [key bytes][offset u64]             every Nth entry's key + offset
//! footer: [index_offset u64][crc32 u32 over everything before footer]
//! ```
//!
//! The whole file is written to a `.tmp` sibling and atomically renamed
//! into place, so a table either exists completely or not at all — no
//! half-written tables can be observed after a crash.
//!
//! Readers memory-load the file once (tables here are MBs, not GBs),
//! verify the footer checksum, and binary-search the sparse index to
//! bound a short linear scan. Tombstones are first-class entries so a
//! delete in a newer table shadows a put in an older one.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::codec::{Reader, Writer};
use crate::error::StoreError;
use crate::wal::crc32;

/// Envelope tag for sorted table files.
pub const TAG_TABLE: u8 = 0x54; // 'T'
/// Current table format version.
pub const TABLE_VERSION: u8 = 1;

/// One entry handed to the table writer: a value or a tombstone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry {
    /// The key.
    pub key: Vec<u8>,
    /// `Some(value)` for a put, `None` for a tombstone.
    pub value: Option<Vec<u8>>,
}

const FLAG_TOMBSTONE: u8 = 0b0000_0001;

/// Writes `entries` (which must be sorted by key, strictly ascending)
/// as an immutable table at `path`, indexing every `sparse_interval`-th
/// entry. The file appears atomically via `.tmp` + rename.
pub fn write_table(
    path: &Path,
    entries: &[TableEntry],
    sparse_interval: usize,
) -> Result<(), StoreError> {
    debug_assert!(sparse_interval > 0);
    debug_assert!(
        entries.windows(2).all(|w| w[0].key < w[1].key),
        "table entries must be strictly sorted"
    );

    let mut w = Writer::versioned(TAG_TABLE, TABLE_VERSION);
    w.u32(entries.len() as u32);
    let mut index: Vec<(Vec<u8>, u64)> = Vec::new();
    let mut body = Writer::new();
    // Entry offsets are relative to the start of the entries section so
    // the index stays valid regardless of envelope size.
    for (i, entry) in entries.iter().enumerate() {
        if i % sparse_interval == 0 {
            index.push((entry.key.clone(), body.finish_len() as u64));
        }
        match &entry.value {
            Some(v) => {
                body.u8(0);
                body.bytes(&entry.key);
                body.bytes(v);
            }
            None => {
                body.u8(FLAG_TOMBSTONE);
                body.bytes(&entry.key);
            }
        }
    }
    let body = body.finish();
    let index_offset = body.len() as u64;
    w.raw(&body);
    w.u32(index.len() as u32);
    for (key, offset) in &index {
        w.bytes(key);
        w.u64(*offset);
    }
    let mut buf = w.finish();
    let crc = crc32(&buf);
    buf.extend_from_slice(&index_offset.to_le_bytes());
    buf.extend_from_slice(&crc.to_le_bytes());

    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp).map_err(|e| StoreError::io(&tmp, "creating table", e))?;
        f.write_all(&buf)
            .map_err(|e| StoreError::io(&tmp, "writing table", e))?;
        f.sync_data()
            .map_err(|e| StoreError::io(&tmp, "fsyncing table", e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| StoreError::io(path, "publishing table", e))?;
    // Make the rename itself durable.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The `.tmp` sibling a table is staged at before rename.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// An immutable sorted table loaded into memory.
#[derive(Debug)]
pub struct Table {
    path: PathBuf,
    /// Entries section bytes (between envelope and index).
    entries: Vec<u8>,
    entry_count: u32,
    /// Sparse index: (key, offset into `entries`).
    index: Vec<(Vec<u8>, u64)>,
}

impl Table {
    /// Opens and fully validates the table at `path`: footer checksum,
    /// envelope, and index structure. A table failing its checksum is a
    /// hard [`StoreError::Corrupt`] — immutable files have no torn
    /// tails to tolerate.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut raw = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut raw))
            .map_err(|e| StoreError::io(path, "reading table", e))?;
        if raw.len() < 12 {
            return Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: 0,
                detail: format!(
                    "table file of {} bytes is too short for a footer",
                    raw.len()
                ),
            });
        }
        let footer_at = raw.len() - 12;
        let index_offset = u64::from_le_bytes(raw[footer_at..footer_at + 8].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(raw[footer_at + 8..].try_into().unwrap());
        let computed = crc32(&raw[..footer_at]);
        if computed != stored_crc {
            return Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: footer_at as u64,
                detail: format!(
                    "table checksum mismatch (stored 0x{stored_crc:08x}, computed \
                     0x{computed:08x})"
                ),
            });
        }
        let (mut r, _version) =
            Reader::versioned("sorted table", &raw[..footer_at], TAG_TABLE, TABLE_VERSION)?;
        let entry_count = r.u32()?;
        // The entries section starts right after the header and spans
        // the next `index_offset` bytes.
        let header_len = footer_at - r.remaining();
        let entries_end = header_len + index_offset as usize;
        if entries_end > footer_at {
            return Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: footer_at as u64,
                detail: format!("index offset {index_offset} places the index past the footer"),
            });
        }
        let entries = raw[header_len..entries_end].to_vec();
        let mut ir = Reader::new("table sparse index", &raw[entries_end..footer_at]);
        let index_count = ir.u32()?;
        let mut index = Vec::with_capacity(index_count as usize);
        for _ in 0..index_count {
            let key = ir.bytes()?.to_vec();
            let offset = ir.u64()?;
            if offset as usize > entries.len() {
                return Err(StoreError::Corrupt {
                    path: path.to_path_buf(),
                    offset: entries_end as u64,
                    detail: format!(
                        "sparse index offset {offset} exceeds entry section of {} bytes",
                        entries.len()
                    ),
                });
            }
            index.push((key, offset));
        }
        ir.expect_end()?;
        Ok(Self {
            path: path.to_path_buf(),
            entries,
            entry_count,
            index,
        })
    }

    /// Looks up `key`. Returns `None` when the table has no entry,
    /// `Some(None)` for a tombstone, `Some(Some(value))` for a put.
    pub fn get(&self, key: &[u8]) -> Result<Option<Option<Vec<u8>>>, StoreError> {
        // Find the sparse-index interval that could hold the key.
        let slot = match self.index.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => i,
            Err(0) => return Ok(None), // key sorts before the first entry
            Err(i) => i - 1,
        };
        let start = self.index[slot].1 as usize;
        let end = self
            .index
            .get(slot + 1)
            .map_or(self.entries.len(), |(_, o)| *o as usize);
        let mut r = Reader::new("table entries", &self.entries[start..end]);
        while r.remaining() > 0 {
            let flags = r.u8()?;
            let k = r.bytes()?;
            let value = if flags & FLAG_TOMBSTONE == 0 {
                Some(r.bytes()?)
            } else {
                None
            };
            match k.cmp(key) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => return Ok(Some(value.map(<[u8]>::to_vec))),
                std::cmp::Ordering::Greater => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Iterates every entry in key order (tombstones included) — used
    /// by compaction.
    pub fn iter_entries(&self) -> Result<Vec<TableEntry>, StoreError> {
        let mut r = Reader::new("table entries", &self.entries);
        let mut out = Vec::with_capacity(self.entry_count as usize);
        while r.remaining() > 0 {
            let flags = r.u8()?;
            let key = r.bytes()?.to_vec();
            let value = if flags & FLAG_TOMBSTONE == 0 {
                Some(r.bytes()?.to_vec())
            } else {
                None
            };
            out.push(TableEntry { key, value });
        }
        Ok(out)
    }

    /// Number of entries (puts + tombstones) in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entry_count as usize
    }

    /// True when the table holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// The file backing this table.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("minaret-table-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_entries(n: usize) -> Vec<TableEntry> {
        (0..n)
            .map(|i| TableEntry {
                key: format!("key-{i:05}").into_bytes(),
                value: if i % 7 == 3 {
                    None // sprinkle tombstones
                } else {
                    Some(format!("value-{i}").repeat(1 + i % 4).into_bytes())
                },
            })
            .collect()
    }

    #[test]
    fn write_then_lookup_every_key() {
        let dir = tmp_dir("lookup");
        let path = dir.join("table-1.sst");
        let entries = sample_entries(100);
        write_table(&path, &entries, 8).unwrap();
        let t = Table::open(&path).unwrap();
        assert_eq!(t.len(), 100);
        for e in &entries {
            assert_eq!(t.get(&e.key).unwrap(), Some(e.value.clone()), "{:?}", e.key);
        }
        // Absent keys: before the first, between entries, after the last.
        assert_eq!(t.get(b"key-").unwrap(), None);
        assert_eq!(t.get(b"key-00042x").unwrap(), None);
        assert_eq!(t.get(b"zzz").unwrap(), None);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn iter_round_trips_in_order() {
        let dir = tmp_dir("iter");
        let path = dir.join("table-1.sst");
        let entries = sample_entries(33);
        write_table(&path, &entries, 4).unwrap();
        let t = Table::open(&path).unwrap();
        assert_eq!(t.iter_entries().unwrap(), entries);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bitflip_anywhere_is_detected() {
        let dir = tmp_dir("bitflip");
        let path = dir.join("table-1.sst");
        write_table(&path, &sample_entries(20), 4).unwrap();
        let raw = std::fs::read(&path).unwrap();
        // Flip one bit at a spread of positions across the file — the
        // footer checksum must catch all of them.
        for pos in (0..raw.len()).step_by(13) {
            let mut damaged = raw.clone();
            damaged[pos] ^= 0x10;
            std::fs::write(&path, &damaged).unwrap();
            let err = Table::open(&path).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Corrupt { .. }
                        | StoreError::Codec { .. }
                        | StoreError::VersionMismatch { .. }
                ),
                "flip at {pos} not caught: {err}"
            );
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_table_round_trips() {
        let dir = tmp_dir("empty");
        let path = dir.join("table-1.sst");
        write_table(&path, &[], 8).unwrap();
        let t = Table::open(&path).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.get(b"anything").unwrap(), None);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
