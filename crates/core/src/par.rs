//! Deterministic data-parallel helpers for the filter and rank phases.
//!
//! The pipeline's Phase-2/Phase-3 work is a pure per-candidate map:
//! every decision and score depends only on that candidate plus shared
//! read-only inputs. [`chunked_map`] exploits that by splitting the
//! slice into contiguous chunks, mapping each chunk on its own thread,
//! and concatenating the per-chunk outputs **in chunk order** — so the
//! result is element-for-element identical to `items.iter().map(f)`,
//! just computed on more cores. Callers then apply ordering-sensitive
//! steps (partition, sort, tie-breaks) sequentially on the combined
//! output, which is what keeps parallel runs byte-identical to
//! sequential ones.

/// Below this many items the spawn cost outweighs the win; map inline.
const MIN_PARALLEL_ITEMS: usize = 64;

/// Resolves a parallelism knob: `0` means "all available cores".
pub fn effective_parallelism(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `f` over `items`, using up to `parallelism` threads (`0` = all
/// cores), preserving order exactly. Falls back to an inline sequential
/// map for small inputs or `parallelism <= 1`. A panic inside `f`
/// propagates to the caller, as it would sequentially.
pub fn chunked_map<T, R, F>(items: &[T], parallelism: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = effective_parallelism(parallelism).min(items.len().max(1));
    if workers <= 1 || items.len() < MIN_PARALLEL_ITEMS {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let f = &f;
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_map_is_order_preserving_and_complete() {
        let items: Vec<u64> = (0..1000).collect();
        let sequential: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for parallelism in [0, 1, 2, 3, 7, 64] {
            let parallel = chunked_map(&items, parallelism, |x| x * 3 + 1);
            assert_eq!(parallel, sequential, "parallelism={parallelism}");
        }
    }

    #[test]
    fn small_inputs_stay_inline() {
        // Below the threshold the result must still be correct (the
        // inline path), including the empty slice.
        let empty: Vec<u32> = Vec::new();
        assert!(chunked_map(&empty, 4, |x| *x).is_empty());
        let items: Vec<u32> = (0..10).collect();
        assert_eq!(
            chunked_map(&items, 4, |x| x + 1),
            (1..11).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn effective_parallelism_resolves_zero_to_cores() {
        assert!(effective_parallelism(0) >= 1);
        assert_eq!(effective_parallelism(3), 3);
    }

    #[test]
    fn panics_propagate_like_sequential_maps() {
        let items: Vec<u32> = (0..200).collect();
        let result = std::panic::catch_unwind(|| {
            chunked_map(&items, 4, |x| {
                if *x == 150 {
                    panic!("scripted map panic");
                }
                *x
            })
        });
        assert!(result.is_err());
    }
}
