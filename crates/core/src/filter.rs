//! The filtering phase (§2.2): COI, keyword-score threshold, expertise
//! constraints, and the conference-mode PC filter (§3).

use minaret_disambig::name::parse_name;
use minaret_scholarly::MergedCandidate;

use crate::coi::{check_coi, AuthorRecord, CoiVerdict};
use crate::config::EditorConfig;

/// Why a candidate was removed in the filtering phase.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterReason {
    /// Conflict of interest with the author list.
    ConflictOfInterest(CoiVerdict),
    /// Best keyword-matching score fell below the editor's threshold.
    KeywordScoreBelowThreshold {
        /// The candidate's best matching score.
        score: f64,
        /// The configured threshold.
        threshold: f64,
    },
    /// An expertise range constraint (citations / h-index / reviews)
    /// was violated.
    ExpertiseConstraint,
    /// Conference mode: the candidate is not on the programme committee.
    NotOnProgrammeCommittee,
}

/// The decision for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterDecision {
    /// The candidate proceeds to ranking.
    Kept,
    /// The candidate is removed, with the (first) reason.
    Removed(FilterReason),
}

impl FilterDecision {
    /// True when the candidate survived.
    pub fn kept(&self) -> bool {
        matches!(self, FilterDecision::Kept)
    }
}

/// Applies the full §2.2 filter chain to one candidate.
///
/// `keyword_score` is the candidate's best similarity to any expanded
/// manuscript keyword (1.0 when they registered an original keyword
/// verbatim). Checks run cheapest-first; the first violation is returned.
pub fn filter_candidate(
    candidate: &MergedCandidate,
    keyword_score: f64,
    authors: &[AuthorRecord],
    config: &EditorConfig,
) -> FilterDecision {
    if keyword_score < config.keyword_score_threshold {
        return FilterDecision::Removed(FilterReason::KeywordScoreBelowThreshold {
            score: keyword_score,
            threshold: config.keyword_score_threshold,
        });
    }
    if !config.expertise.admits(
        candidate.metrics.citations,
        candidate.metrics.h_index,
        candidate.reviews.len() as u32,
    ) {
        return FilterDecision::Removed(FilterReason::ExpertiseConstraint);
    }
    if let Some(pc) = &config.pc_members {
        if !is_pc_member(candidate, pc) {
            return FilterDecision::Removed(FilterReason::NotOnProgrammeCommittee);
        }
    }
    let verdict = check_coi(candidate, authors, &config.coi);
    if verdict.conflicted() {
        return FilterDecision::Removed(FilterReason::ConflictOfInterest(verdict));
    }
    FilterDecision::Kept
}

/// Applies [`filter_candidate`] to every candidate, in parallel over
/// contiguous chunks (`parallelism` threads; `0` = all cores). Each
/// decision is a pure function of its candidate, so the output vector is
/// element-for-element identical to a sequential loop — callers
/// partition kept/removed afterwards, preserving order and tie-breaks.
pub fn filter_decisions(
    candidates: &[crate::pipeline::CandidateProfile],
    authors: &[AuthorRecord],
    config: &EditorConfig,
    parallelism: usize,
) -> Vec<FilterDecision> {
    crate::par::chunked_map(candidates, parallelism, |cand| {
        filter_candidate(&cand.merged, cand.keyword_score, authors, config)
    })
}

/// Conference mode (§3): "only candidate reviewers who belong to the
/// programme committee are retained". Matching is by name compatibility
/// so "L. Zhou" on the PC list matches candidate "Lei Zhou".
pub fn is_pc_member(candidate: &MergedCandidate, pc: &[String]) -> bool {
    let Some(cand) = parse_name(&candidate.display_name) else {
        return false;
    };
    pc.iter()
        .filter_map(|n| parse_name(n))
        .any(|member| member.compatible(&cand))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExpertiseConstraints;
    use minaret_scholarly::{SourceMetrics, SourceReview};
    use std::sync::Arc;

    fn candidate(name: &str) -> MergedCandidate {
        MergedCandidate {
            display_name: name.into(),
            affiliation: None,
            country: None,
            affiliation_history: vec![],
            interests: vec![],
            publications: vec![],
            metrics: SourceMetrics {
                citations: Some(500),
                h_index: Some(12),
                i10_index: None,
            },
            reviews: vec![Arc::new(SourceReview {
                venue_name: "J".into(),
                year: 2017,
                turnaround_days: 20,
                quality: Some(3),
            })],
            sources: vec![],
            keys: vec![],
            truths: vec![],
        }
    }

    #[test]
    fn clean_candidate_is_kept() {
        let d = filter_candidate(&candidate("A B"), 0.9, &[], &EditorConfig::default());
        assert!(d.kept());
    }

    #[test]
    fn low_keyword_score_removed_first() {
        let d = filter_candidate(&candidate("A B"), 0.3, &[], &EditorConfig::default());
        match d {
            FilterDecision::Removed(FilterReason::KeywordScoreBelowThreshold {
                score,
                threshold,
            }) => {
                assert_eq!(score, 0.3);
                assert_eq!(threshold, 0.5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expertise_constraints_enforced() {
        let cfg = EditorConfig {
            expertise: ExpertiseConstraints {
                min_citations: Some(1000),
                ..Default::default()
            },
            ..Default::default()
        };
        let d = filter_candidate(&candidate("A B"), 0.9, &[], &cfg);
        assert_eq!(
            d,
            FilterDecision::Removed(FilterReason::ExpertiseConstraint)
        );
    }

    #[test]
    fn coi_with_author_removes() {
        let authors = vec![AuthorRecord::from_parts("A B", None, None, None)];
        let d = filter_candidate(&candidate("A B"), 0.9, &authors, &EditorConfig::default());
        assert!(matches!(
            d,
            FilterDecision::Removed(FilterReason::ConflictOfInterest(_))
        ));
    }

    #[test]
    fn pc_filter_in_conference_mode() {
        let cfg = EditorConfig {
            pc_members: Some(vec!["Lei Zhou".into(), "Ada Lovelace".into()]),
            ..Default::default()
        };
        assert!(filter_candidate(&candidate("Lei Zhou"), 0.9, &[], &cfg).kept());
        // Abbreviated candidate matches full PC entry.
        assert!(filter_candidate(&candidate("L. Zhou"), 0.9, &[], &cfg).kept());
        assert_eq!(
            filter_candidate(&candidate("Grace Hopper"), 0.9, &[], &cfg),
            FilterDecision::Removed(FilterReason::NotOnProgrammeCommittee)
        );
    }

    #[test]
    fn journal_mode_has_no_pc_filter() {
        let d = filter_candidate(
            &candidate("Grace Hopper"),
            0.9,
            &[],
            &EditorConfig::default(),
        );
        assert!(d.kept());
    }

    #[test]
    fn pc_matching_handles_unparseable_names() {
        let pc = vec!["Lei Zhou".to_string()];
        assert!(!is_pc_member(&candidate("??"), &pc));
        assert!(!is_pc_member(&candidate("Cher"), &pc));
    }
}
