//! The ranking phase (§2.3 of the paper): a weighted sum of five
//! components, each in `[0, 1]`, with the weights configured by the
//! editor.

use std::collections::HashMap;

use minaret_scholarly::intern;
use minaret_scholarly::MergedCandidate;
use std::sync::Arc;

use crate::config::{EditorConfig, ImpactMetric, RankingWeights};

/// Scale caps for log-normalized components. A candidate at or above the
/// cap scores 1.0. The caps are editorial conventions, not statistics of
/// the candidate pool, so that scores are stable run-to-run.
const CITATION_CAP: f64 = 20_000.0;
const H_INDEX_CAP: f64 = 60.0;
const REVIEW_CAP: f64 = 200.0;
const FAMILIARITY_CAP: f64 = 20.0;

/// The expansion of one original manuscript keyword: every reachable
/// topic label (normalized) with its similarity score to the original.
/// The original keyword itself is present with score 1.0.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordExpansionSet {
    /// The keyword as the author typed it.
    pub original: String,
    /// normalized expanded label -> similarity score in [0, 1].
    pub scores: HashMap<String, f64>,
}

impl KeywordExpansionSet {
    /// Best similarity of any of `labels` (normalized) to this keyword.
    pub fn best_match(&self, labels: impl Iterator<Item = impl AsRef<str>>) -> f64 {
        labels
            .filter_map(|l| self.scores.get(l.as_ref()).copied())
            .fold(0.0, f64::max)
    }
}

/// Per-component scores for one candidate — the drill-down MINARET shows
/// when the editor clicks a total score (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScoreBreakdown {
    /// Topic coverage of the manuscript's keywords.
    pub coverage: f64,
    /// Scientific impact (citations or h-index, per config).
    pub impact: f64,
    /// Recency of the candidate's work on the manuscript's topics.
    pub recency: f64,
    /// Review experience (total prior reviews, Publons-style).
    pub experience: f64,
    /// Familiarity with the target outlet.
    pub familiarity: f64,
    /// Responsiveness: turnaround speed + recent review activity (the
    /// §1 extension; weighted `0` by default).
    pub responsiveness: f64,
}

impl ScoreBreakdown {
    /// The fused total under the given weights, in `[0, 1]`.
    pub fn total(&self, w: &RankingWeights) -> f64 {
        let sum = w.total();
        if sum <= 0.0 {
            return 0.0;
        }
        (self.coverage * w.coverage
            + self.impact * w.impact
            + self.recency * w.recency
            + self.experience * w.experience
            + self.familiarity * w.familiarity
            + self.responsiveness * w.responsiveness)
            / sum
    }
}

fn log_norm(value: f64, cap: f64) -> f64 {
    if value <= 0.0 {
        0.0
    } else {
        ((1.0 + value).ln() / (1.0 + cap).ln()).min(1.0)
    }
}

/// Topic coverage: how much of the manuscript's keyword set the
/// candidate's registered interests (and publication keywords) cover.
///
/// §2.3's example: with paper keywords {Semantic Web, Big Data}, a
/// reviewer interested in {Semantic Web, Big Data} must outrank one
/// interested in {Semantic Web, Ontologies, RDF} — coverage averages the
/// best match *per manuscript keyword*, so covering more keywords wins.
pub fn topic_coverage(candidate: &MergedCandidate, expansions: &[KeywordExpansionSet]) -> f64 {
    if expansions.is_empty() {
        return 0.0;
    }
    // Interned + memoized normalization: the same interests and keywords
    // recur across every candidate of every recommendation, so the warm
    // path clones `Arc<str>`s instead of re-allocating normalized strings.
    let mut labels: Vec<Arc<str>> = candidate
        .interests
        .iter()
        .map(|i| intern::normalized(i))
        .collect();
    for p in &candidate.publications {
        for k in &p.keywords {
            labels.push(intern::normalized(k));
        }
    }
    let total: f64 = expansions.iter().map(|e| e.best_match(labels.iter())).sum();
    total / expansions.len() as f64
}

/// Scientific impact from the candidate's best available metrics.
pub fn scientific_impact(candidate: &MergedCandidate, metric: ImpactMetric) -> f64 {
    match metric {
        ImpactMetric::Citations => log_norm(
            candidate.metrics.citations.unwrap_or(0) as f64,
            CITATION_CAP,
        ),
        ImpactMetric::HIndex => {
            (candidate.metrics.h_index.unwrap_or(0) as f64 / H_INDEX_CAP).min(1.0)
        }
    }
}

/// Recency: reviewers who *recently* published on the manuscript's topics
/// rank above those whose related work is old (§2.3, citing \[5\]).
/// For each manuscript keyword, the best `similarity × 2^(-age/half_life)`
/// over the candidate's publications; averaged over keywords.
pub fn recency(
    candidate: &MergedCandidate,
    expansions: &[KeywordExpansionSet],
    current_year: u32,
    half_life_years: f64,
) -> f64 {
    if expansions.is_empty() || half_life_years <= 0.0 {
        return 0.0;
    }
    let mut total = 0.0;
    for e in expansions {
        let mut best = 0.0f64;
        for p in &candidate.publications {
            let sim = e.best_match(p.keywords.iter().map(|k| intern::normalized(k)));
            if sim <= 0.0 {
                continue;
            }
            let age = (current_year as f64 - p.year as f64).max(0.0);
            best = best.max(sim * 0.5f64.powf(age / half_life_years));
        }
        total += best;
    }
    total / expansions.len() as f64
}

/// Review experience: log-scaled count of prior manuscript reviews
/// (obtained from the Publons-like profile data).
pub fn review_experience(candidate: &MergedCandidate) -> f64 {
    log_norm(candidate.reviews.len() as f64, REVIEW_CAP)
}

/// Familiarity with the target outlet: reviews previously conducted for
/// it plus papers published in it (§2.3's two sub-components),
/// log-scaled together.
pub fn outlet_familiarity(candidate: &MergedCandidate, target_venue: &str) -> f64 {
    let target = intern::normalized(target_venue);
    if target.is_empty() {
        return 0.0;
    }
    // Interned venue names make the match a pointer comparison on the
    // warm path (the interner maps equal content to one Arc).
    let reviews_for = candidate
        .reviews
        .iter()
        .filter(|r| Arc::ptr_eq(&intern::normalized(&r.venue_name), &target))
        .count() as f64;
    let pubs_in = candidate
        .publications
        .iter()
        .filter(|p| Arc::ptr_eq(&intern::normalized(&p.venue_name), &target))
        .count() as f64;
    log_norm(reviews_for + pubs_in, FAMILIARITY_CAP)
}

/// Turnaround faster than this many days scores full speed credit.
const TURNAROUND_FLOOR_DAYS: f64 = 7.0;
/// Turnaround slower than this many days scores zero speed credit.
const TURNAROUND_CEIL_DAYS: f64 = 90.0;

/// Responsiveness: §1 warns against "inviting a high-profile reviewer who
/// … might not reply to the invitation in a timely manner". With Publons
/// data we can estimate it from review behaviour: how fast past reviews
/// were returned, and how recently the candidate reviewed at all.
/// Candidates with no review history score `0` (unknown ≠ responsive).
pub fn responsiveness(candidate: &MergedCandidate, current_year: u32) -> f64 {
    if candidate.reviews.is_empty() {
        return 0.0;
    }
    let mean_days = candidate
        .reviews
        .iter()
        .map(|r| r.turnaround_days as f64)
        .sum::<f64>()
        / candidate.reviews.len() as f64;
    let speed = 1.0
        - ((mean_days - TURNAROUND_FLOOR_DAYS) / (TURNAROUND_CEIL_DAYS - TURNAROUND_FLOOR_DAYS))
            .clamp(0.0, 1.0);
    let last_year = candidate
        .reviews
        .iter()
        .map(|r| r.year)
        .max()
        .unwrap_or(current_year);
    let years_idle = (current_year as f64 - last_year as f64).max(0.0);
    let activity = 0.5f64.powf(years_idle / 3.0);
    0.6 * speed + 0.4 * activity
}

/// Computes the full breakdown for one candidate.
pub fn score_candidate(
    candidate: &MergedCandidate,
    expansions: &[KeywordExpansionSet],
    target_venue: &str,
    config: &EditorConfig,
) -> ScoreBreakdown {
    ScoreBreakdown {
        coverage: topic_coverage(candidate, expansions),
        impact: scientific_impact(candidate, config.impact_metric),
        recency: recency(
            candidate,
            expansions,
            config.current_year,
            config.recency_half_life_years,
        ),
        experience: review_experience(candidate),
        familiarity: outlet_familiarity(candidate, target_venue),
        responsiveness: responsiveness(candidate, config.current_year),
    }
}

/// Scores every candidate, in parallel over contiguous chunks
/// (`parallelism` threads; `0` = all cores). Scoring is a pure function
/// of the candidate plus shared read-only inputs, so the returned
/// `(breakdown, total)` vector is element-for-element identical to a
/// sequential map — the caller's sort and tie-breaks then run
/// sequentially on the combined output, keeping the ranking byte-
/// identical to the single-threaded path.
pub fn score_candidates(
    candidates: &[crate::pipeline::CandidateProfile],
    expansions: &[KeywordExpansionSet],
    target_venue: &str,
    config: &EditorConfig,
    parallelism: usize,
) -> Vec<(ScoreBreakdown, f64)> {
    crate::par::chunked_map(candidates, parallelism, |cand| {
        let breakdown = score_candidate(&cand.merged, expansions, target_venue, config);
        let total = breakdown.total(&config.weights);
        (breakdown, total)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_ontology::normalize_label;
    use minaret_scholarly::{SourceMetrics, SourcePublication, SourceReview};
    use proptest::prelude::*;

    fn expansion(original: &str, pairs: &[(&str, f64)]) -> KeywordExpansionSet {
        let mut scores: HashMap<String, f64> = pairs
            .iter()
            .map(|(l, s)| (normalize_label(l), *s))
            .collect();
        scores.insert(normalize_label(original), 1.0);
        KeywordExpansionSet {
            original: original.to_string(),
            scores,
        }
    }

    fn with_interests(interests: &[&str]) -> MergedCandidate {
        MergedCandidate {
            display_name: "X".into(),
            affiliation: None,
            country: None,
            affiliation_history: vec![],
            interests: interests.iter().map(|s| normalize_label(s)).collect(),
            publications: vec![],
            metrics: SourceMetrics::default(),
            reviews: vec![],
            sources: vec![],
            keys: vec![],
            truths: vec![],
        }
    }

    /// §2.3's worked example: keywords {Semantic Web, Big Data}; reviewer
    /// B covering both outranks reviewer A covering only one (plus
    /// related topics).
    #[test]
    fn paper_topic_coverage_example() {
        let expansions = vec![
            expansion("Semantic Web", &[("Ontologies", 0.8), ("RDF", 0.9)]),
            expansion("Big Data", &[]),
        ];
        let a = with_interests(&["Semantic Web", "Ontologies", "RDF"]);
        let b = with_interests(&["Semantic Web", "Big Data"]);
        let ca = topic_coverage(&a, &expansions);
        let cb = topic_coverage(&b, &expansions);
        assert!(cb > ca, "B ({cb}) must outrank A ({ca})");
        assert!((cb - 1.0).abs() < 1e-9, "B covers everything");
        assert!((ca - 0.5).abs() < 1e-9, "A covers one of two keywords");
    }

    #[test]
    fn coverage_uses_expansion_scores_for_partial_matches() {
        let expansions = vec![expansion("RDF", &[("SPARQL", 0.9)])];
        let c = with_interests(&["SPARQL"]);
        assert!((topic_coverage(&c, &expansions) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn coverage_counts_publication_keywords_too() {
        let expansions = vec![expansion("RDF", &[])];
        let mut c = with_interests(&[]);
        c.publications.push(Arc::new(SourcePublication {
            title: "t".into(),
            year: 2017,
            venue_name: "J".into(),
            coauthor_names: vec![],
            keywords: vec!["RDF".into()],
            citations: None,
        }));
        assert!((topic_coverage(&c, &expansions) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn impact_metric_switch() {
        let mut c = with_interests(&[]);
        c.metrics = SourceMetrics {
            citations: Some(1000),
            h_index: Some(30),
            i10_index: None,
        };
        let by_cites = scientific_impact(&c, ImpactMetric::Citations);
        let by_h = scientific_impact(&c, ImpactMetric::HIndex);
        assert!(by_cites > 0.0 && by_cites < 1.0);
        assert!((by_h - 0.5).abs() < 1e-9);
        // Missing metrics score zero.
        let empty = with_interests(&[]);
        assert_eq!(scientific_impact(&empty, ImpactMetric::Citations), 0.0);
        assert_eq!(scientific_impact(&empty, ImpactMetric::HIndex), 0.0);
    }

    #[test]
    fn impact_caps_at_one() {
        let mut c = with_interests(&[]);
        c.metrics.citations = Some(10_000_000);
        c.metrics.h_index = Some(500);
        assert_eq!(scientific_impact(&c, ImpactMetric::Citations), 1.0);
        assert_eq!(scientific_impact(&c, ImpactMetric::HIndex), 1.0);
    }

    #[test]
    fn recent_work_beats_old_work() {
        let expansions = vec![expansion("RDF", &[])];
        let mut fresh = with_interests(&[]);
        fresh.publications.push(Arc::new(SourcePublication {
            title: "new".into(),
            year: 2018,
            venue_name: "J".into(),
            coauthor_names: vec![],
            keywords: vec!["rdf".into()],
            citations: None,
        }));
        let mut stale = fresh.clone();
        Arc::make_mut(&mut stale.publications[0]).year = 2005;
        let rf = recency(&fresh, &expansions, 2018, 5.0);
        let rs = recency(&stale, &expansions, 2018, 5.0);
        assert!(rf > rs);
        assert!((rf - 1.0).abs() < 1e-9, "current-year exact match = 1");
        // 13 years at half-life 5 => 2^-2.6
        assert!((rs - 0.5f64.powf(13.0 / 5.0)).abs() < 1e-9);
    }

    #[test]
    fn recency_zero_without_matching_publications() {
        let expansions = vec![expansion("RDF", &[])];
        let c = with_interests(&["rdf"]); // interests alone don't count
        assert_eq!(recency(&c, &expansions, 2018, 5.0), 0.0);
    }

    #[test]
    fn experience_grows_with_reviews() {
        let mut a = with_interests(&[]);
        let mut b = with_interests(&[]);
        for i in 0..3 {
            a.reviews.push(Arc::new(SourceReview {
                venue_name: format!("V{i}"),
                year: 2016,
                turnaround_days: 20,
                quality: Some(3),
            }));
        }
        for i in 0..30 {
            b.reviews.push(Arc::new(SourceReview {
                venue_name: format!("V{i}"),
                year: 2016,
                turnaround_days: 20,
                quality: Some(3),
            }));
        }
        assert!(review_experience(&b) > review_experience(&a));
        assert!(review_experience(&a) > 0.0);
        assert_eq!(review_experience(&with_interests(&[])), 0.0);
    }

    #[test]
    fn familiarity_counts_reviews_and_pubs_for_target_only() {
        let mut c = with_interests(&[]);
        c.reviews.push(Arc::new(SourceReview {
            venue_name: "Journal of X".into(),
            year: 2017,
            turnaround_days: 15,
            quality: Some(3),
        }));
        c.reviews.push(Arc::new(SourceReview {
            venue_name: "Other Venue".into(),
            year: 2017,
            turnaround_days: 15,
            quality: Some(3),
        }));
        c.publications.push(Arc::new(SourcePublication {
            title: "t".into(),
            year: 2015,
            venue_name: "journal of x".into(),
            coauthor_names: vec![],
            keywords: vec![],
            citations: None,
        }));
        let f = outlet_familiarity(&c, "Journal of X");
        assert!((f - log_norm(2.0, FAMILIARITY_CAP)).abs() < 1e-9);
        assert_eq!(outlet_familiarity(&c, "Nowhere"), 0.0);
        assert_eq!(outlet_familiarity(&c, ""), 0.0);
    }

    #[test]
    fn total_respects_weights() {
        let b = ScoreBreakdown {
            coverage: 1.0,
            impact: 0.0,
            recency: 0.0,
            experience: 0.0,
            familiarity: 0.0,
            responsiveness: 0.0,
        };
        let only_coverage = RankingWeights {
            coverage: 1.0,
            impact: 0.0,
            recency: 0.0,
            experience: 0.0,
            familiarity: 0.0,
            responsiveness: 0.0,
        };
        assert_eq!(b.total(&only_coverage), 1.0);
        let only_impact = RankingWeights {
            coverage: 0.0,
            impact: 1.0,
            recency: 0.0,
            experience: 0.0,
            familiarity: 0.0,
            responsiveness: 0.0,
        };
        assert_eq!(b.total(&only_impact), 0.0);
        let zero = RankingWeights {
            coverage: 0.0,
            impact: 0.0,
            recency: 0.0,
            experience: 0.0,
            familiarity: 0.0,
            responsiveness: 0.0,
        };
        assert_eq!(b.total(&zero), 0.0);
    }

    #[test]
    fn responsiveness_rewards_fast_recent_reviewers() {
        let mut fast = with_interests(&[]);
        fast.reviews.push(Arc::new(SourceReview {
            venue_name: "J".into(),
            year: 2018,
            turnaround_days: 7,
            quality: Some(3),
        }));
        let mut slow = with_interests(&[]);
        slow.reviews.push(Arc::new(SourceReview {
            venue_name: "J".into(),
            year: 2018,
            turnaround_days: 90,
            quality: Some(3),
        }));
        let rf = responsiveness(&fast, 2018);
        let rs = responsiveness(&slow, 2018);
        assert!(rf > rs, "fast {rf} vs slow {rs}");
        assert!((rf - 1.0).abs() < 1e-9, "7-day turnaround this year = 1.0");
        assert!(
            (rs - 0.4).abs() < 1e-9,
            "90-day turnaround keeps only activity credit"
        );
    }

    #[test]
    fn responsiveness_decays_with_idle_years() {
        let mut recent = with_interests(&[]);
        recent.reviews.push(Arc::new(SourceReview {
            venue_name: "J".into(),
            year: 2018,
            turnaround_days: 7,
            quality: Some(3),
        }));
        let mut dormant = recent.clone();
        Arc::make_mut(&mut dormant.reviews[0]).year = 2009;
        assert!(responsiveness(&recent, 2018) > responsiveness(&dormant, 2018));
    }

    #[test]
    fn responsiveness_unknown_without_reviews() {
        assert_eq!(responsiveness(&with_interests(&[]), 2018), 0.0);
    }

    #[test]
    fn default_weights_ignore_responsiveness() {
        // The default ranking is exactly the paper's five components.
        let a = ScoreBreakdown {
            coverage: 0.5,
            impact: 0.5,
            recency: 0.5,
            experience: 0.5,
            familiarity: 0.5,
            responsiveness: 0.0,
        };
        let b = ScoreBreakdown {
            responsiveness: 1.0,
            ..a
        };
        let w = RankingWeights::default();
        assert_eq!(a.total(&w), b.total(&w));
        // Opting in makes it count.
        let w2 = RankingWeights {
            responsiveness: 0.5,
            ..w
        };
        assert!(b.total(&w2) > a.total(&w2));
    }

    proptest! {
        #[test]
        fn totals_are_bounded(
            cov in 0.0f64..=1.0, imp in 0.0f64..=1.0, rec in 0.0f64..=1.0,
            exp in 0.0f64..=1.0, fam in 0.0f64..=1.0,
            wc in 0.0f64..=2.0, wi in 0.0f64..=2.0, wr in 0.0f64..=2.0,
            we in 0.0f64..=2.0, wf in 0.0f64..=2.0,
        ) {
            let b = ScoreBreakdown {
                coverage: cov, impact: imp, recency: rec,
                experience: exp, familiarity: fam, responsiveness: 0.0,
            };
            let w = RankingWeights {
                coverage: wc, impact: wi, recency: wr, experience: we,
                familiarity: wf, responsiveness: 0.0,
            };
            let t = b.total(&w);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&t));
        }

        #[test]
        fn coverage_monotone_in_added_interest(score in 0.0f64..=1.0) {
            // Adding an interest that matches an expanded keyword never
            // lowers coverage.
            let expansions = vec![expansion("RDF", &[("SPARQL", score)])];
            let before = with_interests(&[]);
            let after = with_interests(&["SPARQL"]);
            prop_assert!(
                topic_coverage(&after, &expansions)
                    >= topic_coverage(&before, &expansions)
            );
        }
    }
}
