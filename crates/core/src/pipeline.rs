//! The three-phase recommendation pipeline (Figure 2 of the paper).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use minaret_disambig::{AuthorQuery, IdentityResolver, ResolutionPolicy, VerifiedAuthor};
use minaret_ontology::{normalize_label, KeywordExpander, Ontology};
use minaret_scholarly::{
    merge_profiles, MergedCandidate, SourceKind, SourceRegistry, SourceStatus,
};
use minaret_telemetry::Telemetry;

use crate::coi::AuthorRecord;
use crate::config::EditorConfig;
use crate::error::MinaretError;
use crate::filter::{filter_decisions, FilterDecision, FilterReason};
use crate::manuscript::ManuscriptDetails;
use crate::rank::{score_candidates, KeywordExpansionSet, ScoreBreakdown};

/// Wall-clock cost of each workflow phase — experiment F2 prints these as
/// the per-phase breakdown of Figure 2's workflow.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Phase 1: identity verification + track-record extraction +
    /// expansion + candidate retrieval.
    pub extraction: Duration,
    /// Phase 2: COI + threshold + expertise (+ PC) filtering.
    pub filtering: Duration,
    /// Phase 3: scoring and sorting.
    pub ranking: Duration,
}

impl PhaseTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.extraction + self.filtering + self.ranking
    }
}

/// A candidate reviewer after retrieval, before filtering.
#[derive(Debug, Clone)]
pub struct CandidateProfile {
    /// The merged multi-source record.
    pub merged: MergedCandidate,
    /// Expanded keywords this candidate matched, with their similarity
    /// scores (best score per label).
    pub matched_keywords: Vec<(String, f64)>,
    /// The candidate's best keyword-matching score — what §2.2's
    /// threshold filter reads.
    pub keyword_score: f64,
}

/// One ranked recommendation (a row of Figure 5).
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// 1-based rank.
    pub rank: usize,
    /// Candidate display name.
    pub name: String,
    /// Current affiliation, when known.
    pub affiliation: Option<String>,
    /// Sources that contributed to the record.
    pub sources: Vec<SourceKind>,
    /// Expanded keywords the candidate matched.
    pub matched_keywords: Vec<(String, f64)>,
    /// The per-component score drill-down.
    pub breakdown: ScoreBreakdown,
    /// The fused total score in `[0, 1]`.
    pub total: f64,
    /// The full merged record (for follow-up inspection).
    pub candidate: MergedCandidate,
}

impl Recommendation {
    /// A human-readable justification of this recommendation — the prose
    /// version of Figure 5's score drill-down, suitable for an invitation
    /// email draft or the demo UI's detail pane.
    pub fn explain(&self, weights: &crate::config::RankingWeights) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut push = |weight: f64, score: f64, text: String| {
            if weight > 0.0 && score > 0.0 {
                parts.push(text);
            }
        };
        if let Some((kw, sc)) = self.matched_keywords.first() {
            push(
                weights.coverage,
                self.breakdown.coverage,
                format!(
                    "covers {:.0}% of the manuscript's topics (best match: {kw}, similarity {sc:.2})",
                    self.breakdown.coverage * 100.0
                ),
            );
        }
        if let Some(citations) = self.candidate.metrics.citations {
            push(
                weights.impact,
                self.breakdown.impact,
                format!("has {citations} citations"),
            );
        } else if let Some(h) = self.candidate.metrics.h_index {
            push(
                weights.impact,
                self.breakdown.impact,
                format!("has an h-index of {h}"),
            );
        }
        if let Some(year) = self.candidate.publications.iter().map(|p| p.year).max() {
            push(
                weights.recency,
                self.breakdown.recency,
                format!("published on related topics as recently as {year}"),
            );
        }
        if !self.candidate.reviews.is_empty() {
            // §1 lists "the quality of the reviews" among the aspects the
            // editor considers; Publons-style ratings surface here.
            let rated: Vec<u8> = self
                .candidate
                .reviews
                .iter()
                .filter_map(|r| r.quality)
                .collect();
            let quality_note = if rated.is_empty() {
                String::new()
            } else {
                format!(
                    " (mean review quality {:.1}/5)",
                    rated.iter().map(|&q| q as f64).sum::<f64>() / rated.len() as f64
                )
            };
            push(
                weights.experience,
                self.breakdown.experience,
                format!(
                    "completed {} manuscript reviews{quality_note}",
                    self.candidate.reviews.len()
                ),
            );
        }
        push(
            weights.familiarity,
            self.breakdown.familiarity,
            "has prior history with the target outlet".to_string(),
        );
        push(
            weights.responsiveness,
            self.breakdown.responsiveness,
            "returns reviews promptly".to_string(),
        );
        let evidence = if parts.is_empty() {
            "matched the manuscript's expanded keywords".to_string()
        } else {
            parts.join("; ")
        };
        format!(
            "#{} {} (total score {:.3}, via {}): {}.",
            self.rank,
            self.name,
            self.total,
            self.sources
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            evidence
        )
    }
}

/// Summary of one keyword's semantic expansion, for the report.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionSummary {
    /// The keyword as typed.
    pub original: String,
    /// Expanded labels with scores, best first (excludes the original).
    pub expanded: Vec<(String, f64)>,
}

/// Everything a recommendation run produced — enough to drive the demo
/// scenario end to end (Figures 3–5).
#[derive(Debug)]
pub struct RecommendationReport {
    /// The manuscript the run was for.
    pub manuscript: ManuscriptDetails,
    /// Identity-verification results, one per author.
    pub verified_authors: Vec<VerifiedAuthor>,
    /// Keyword expansions.
    pub expansions: Vec<ExpansionSummary>,
    /// Keywords that resolved to no ontology topic (searched literally).
    pub unknown_keywords: Vec<String>,
    /// Number of merged candidates retrieved before filtering.
    pub candidates_retrieved: usize,
    /// Candidates removed by the filtering phase, with reasons.
    pub filtered_out: Vec<(CandidateProfile, FilterReason)>,
    /// The final ranked list.
    pub recommendations: Vec<Recommendation>,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// Source errors survived during extraction (failed sources are
    /// skipped, not fatal).
    pub source_errors: Vec<String>,
    /// True when candidate retrieval ran with partial source coverage:
    /// at least one source that should have answered failed (outage,
    /// deadline, open breaker). The ranked list is still valid but was
    /// built from fewer views than configured.
    pub degraded: bool,
    /// Names of the sources missing from a degraded run, sorted.
    pub degraded_sources: Vec<String>,
}

impl RecommendationReport {
    /// Renders the ranked list as a plain-text table, the way the demo's
    /// final screen (Figure 5) presents it.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<4} {:<28} {:<30} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}\n",
            "#", "Reviewer", "Affiliation", "cover", "impact", "recent", "exper", "famil", "TOTAL"
        ));
        for r in &self.recommendations {
            out.push_str(&format!(
                "{:<4} {:<28} {:<30} {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>7.4}\n",
                r.rank,
                truncate(&r.name, 28),
                truncate(r.affiliation.as_deref().unwrap_or("-"), 30),
                r.breakdown.coverage,
                r.breakdown.impact,
                r.breakdown.recency,
                r.breakdown.experience,
                r.breakdown.familiarity,
                r.total,
            ));
        }
        out
    }
}

/// One manuscript's slice of a [`Minaret::extract_batch`] run: the
/// phase-1 artifacts needed to filter and score that paper against the
/// shared candidate pool.
#[derive(Debug)]
pub struct PaperExtraction {
    /// COI records for the manuscript's authors (identity-verified).
    pub author_records: Vec<AuthorRecord>,
    /// The manuscript's expanded keyword sets (drive coverage scoring).
    pub expansion_sets: Vec<KeywordExpansionSet>,
    /// Keywords that resolved to no ontology topic (searched literally).
    pub unknown_keywords: Vec<String>,
    /// Pool candidates matched by at least one of this manuscript's
    /// expanded labels, ascending by pool index.
    pub matches: Vec<PaperCandidate>,
}

/// A shared-pool candidate's match against one manuscript of a batch.
#[derive(Debug, Clone)]
pub struct PaperCandidate {
    /// Index into [`BatchExtraction::pool`].
    pub pool_index: usize,
    /// This manuscript's expanded labels the candidate matched, with
    /// similarity scores (best score per label, best first).
    pub matched_keywords: Vec<(String, f64)>,
    /// The candidate's best matched-label score for this manuscript —
    /// what the threshold filter reads.
    pub keyword_score: f64,
}

/// The result of batched extraction over a whole submission batch: one
/// merged candidate pool retrieved by a **single** interest fan-out
/// over the union of every manuscript's expanded labels, plus
/// per-manuscript match slices into that pool.
#[derive(Debug)]
pub struct BatchExtraction {
    /// The shared candidate pool, merged and deterministically ordered.
    pub pool: Vec<MergedCandidate>,
    /// Per-manuscript slices, index-aligned with the input batch.
    pub papers: Vec<PaperExtraction>,
    /// Number of distinct normalized labels in the union fan-out.
    pub union_labels: usize,
    /// Aggregated per-source errors survived during the fan-out.
    pub source_errors: Vec<String>,
    /// Names of the sources missing from a degraded fan-out, sorted.
    pub degraded_sources: Vec<String>,
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

/// The MINARET framework: sources + ontology + editor configuration.
pub struct Minaret {
    registry: Arc<SourceRegistry>,
    ontology: Arc<Ontology>,
    config: EditorConfig,
    resolution: ResolutionPolicy,
    telemetry: Telemetry,
    parallelism: usize,
}

impl Minaret {
    /// Creates a framework instance with the given sources, ontology and
    /// editor configuration. Author ambiguity defaults to automatic
    /// top-candidate resolution; see
    /// [`with_resolution_policy`](Self::with_resolution_policy).
    pub fn new(
        registry: Arc<SourceRegistry>,
        ontology: Arc<Ontology>,
        config: EditorConfig,
    ) -> Self {
        Self {
            registry,
            ontology,
            config,
            resolution: ResolutionPolicy::AutoTop1,
            telemetry: Telemetry::disabled(),
            parallelism: 0,
        }
    }

    /// Caps the worker threads the filter and rank phases may use per
    /// `recommend` call (`0`, the default, means all available cores;
    /// `1` forces the sequential path). Parallel output is byte-identical
    /// to sequential — this knob only trades latency against CPU.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Overrides how ambiguous author identities are resolved (the
    /// Figure 4 decision point).
    pub fn with_resolution_policy(mut self, policy: ResolutionPolicy) -> Self {
        self.resolution = policy;
        self
    }

    /// Reports per-phase spans, durations, and candidate-flow gauges to
    /// `telemetry`; each [`recommend`](Self::recommend) call also lands
    /// one trace in the recent-traces ring.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The active editor configuration.
    pub fn config(&self) -> &EditorConfig {
        &self.config
    }

    /// Replaces the editor configuration (weights, thresholds, COI level
    /// are all re-configurable between runs, per the paper).
    pub fn set_config(&mut self, config: EditorConfig) {
        self.config = config;
    }

    /// Records one phase's duration histogram and candidate in/out
    /// gauges.
    fn note_phase(&self, phase: &str, took: std::time::Duration, cand_in: usize, cand_out: usize) {
        self.telemetry
            .histogram("minaret_phase_micros", &[("phase", phase)])
            .observe_duration(took);
        self.telemetry
            .gauge(
                "minaret_phase_candidates",
                &[("phase", phase), ("direction", "in")],
            )
            .set(cand_in as i64);
        self.telemetry
            .gauge(
                "minaret_phase_candidates",
                &[("phase", phase), ("direction", "out")],
            )
            .set(cand_out as i64);
    }

    /// Runs the full three-phase workflow for one manuscript.
    pub fn recommend(
        &self,
        manuscript: &ManuscriptDetails,
    ) -> Result<RecommendationReport, MinaretError> {
        let trace = self.telemetry.trace("recommend");
        if let Err(e) = manuscript.validate() {
            self.telemetry
                .counter("minaret_recommend_total", &[("result", "invalid")])
                .inc();
            return Err(e);
        }
        let mut source_errors = Vec::new();

        // ---- Phase 1: information extraction --------------------------
        let phase_span = trace.span("extraction");
        let t0 = Instant::now();
        let verified_authors = self.verify_authors(manuscript);
        let author_records: Vec<AuthorRecord> = manuscript
            .authors
            .iter()
            .zip(&verified_authors)
            .map(|(input, verified)| {
                AuthorRecord::from_parts(
                    &input.name,
                    input.affiliation.as_deref(),
                    input.country.as_deref(),
                    verified.chosen.as_ref().map(|m| &m.candidate),
                )
            })
            .collect();

        let (expansion_sets, expansions, unknown_keywords) =
            self.expand_keywords(&manuscript.keywords);

        let (candidates, coverage) = self.retrieve_candidates(&expansion_sets, &mut source_errors);
        let candidates_retrieved = candidates.len();
        let extraction = t0.elapsed();
        drop(phase_span);
        self.note_phase(
            "extraction",
            extraction,
            manuscript.keywords.len(),
            candidates_retrieved,
        );
        let degraded_sources: Vec<String> =
            coverage.degraded.iter().map(|k| k.to_string()).collect();
        let degraded = !degraded_sources.is_empty();
        if coverage.responded.len() < self.config.min_sources {
            self.telemetry
                .counter(
                    "minaret_recommend_total",
                    &[("result", "sources_unavailable")],
                )
                .inc();
            return Err(MinaretError::SourcesUnavailable {
                responded: coverage.responded.len(),
                required: self.config.min_sources,
                degraded: degraded_sources,
            });
        }
        if candidates_retrieved == 0 {
            self.telemetry
                .counter("minaret_recommend_total", &[("result", "no_candidates")])
                .inc();
            return Err(MinaretError::NoCandidates);
        }

        // ---- Phase 2: filtering ---------------------------------------
        let phase_span = trace.span("filtering");
        let t1 = Instant::now();
        // Decisions are computed as a parallel order-preserving map; the
        // partition below runs sequentially on the combined output, so
        // kept/filtered orders match the single-threaded path exactly.
        let decisions =
            filter_decisions(&candidates, &author_records, &self.config, self.parallelism);
        let mut kept = Vec::new();
        let mut filtered_out = Vec::new();
        for (cand, decision) in candidates.into_iter().zip(decisions) {
            match decision {
                FilterDecision::Kept => kept.push(cand),
                FilterDecision::Removed(reason) => filtered_out.push((cand, reason)),
            }
        }
        let filtering = t1.elapsed();
        drop(phase_span);
        self.note_phase("filtering", filtering, candidates_retrieved, kept.len());

        // ---- Phase 3: ranking -----------------------------------------
        let phase_span = trace.span("ranking");
        let ranking_in = kept.len();
        let t2 = Instant::now();
        // Scoring parallelizes the same way; sort + truncate stay
        // sequential so ties break identically to the sequential path.
        let scores = score_candidates(
            &kept,
            &expansion_sets,
            &manuscript.target_venue,
            &self.config,
            self.parallelism,
        );
        let mut scored: Vec<(CandidateProfile, ScoreBreakdown, f64)> = kept
            .into_iter()
            .zip(scores)
            .map(|(cand, (breakdown, total))| (cand, breakdown, total))
            .collect();
        scored.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.merged.display_name.cmp(&b.0.merged.display_name))
        });
        scored.truncate(self.config.max_recommendations);
        let recommendations: Vec<Recommendation> = scored
            .into_iter()
            .enumerate()
            .map(|(i, (cand, breakdown, total))| Recommendation {
                rank: i + 1,
                name: cand.merged.display_name.clone(),
                affiliation: cand.merged.affiliation.clone(),
                sources: cand.merged.sources.clone(),
                matched_keywords: cand.matched_keywords,
                breakdown,
                total,
                candidate: cand.merged,
            })
            .collect();
        let ranking = t2.elapsed();
        drop(phase_span);
        self.note_phase("ranking", ranking, ranking_in, recommendations.len());
        self.telemetry
            .counter("minaret_recommend_total", &[("result", "ok")])
            .inc();
        if degraded {
            self.telemetry
                .counter("minaret_recommend_degraded_total", &[])
                .inc();
        }

        Ok(RecommendationReport {
            manuscript: manuscript.clone(),
            verified_authors,
            expansions,
            unknown_keywords,
            candidates_retrieved,
            filtered_out,
            recommendations,
            timings: PhaseTimings {
                extraction,
                filtering,
                ranking,
            },
            source_errors,
            degraded,
            degraded_sources,
        })
    }

    /// Runs the pipeline for several manuscripts concurrently, using up
    /// to `parallelism` worker threads (an editor clearing a submission
    /// queue). Results are returned in input order. The sources are
    /// already `Sync`, so the workers share the registry directly.
    pub fn recommend_batch(
        &self,
        manuscripts: &[ManuscriptDetails],
        parallelism: usize,
    ) -> Vec<Result<RecommendationReport, MinaretError>> {
        let parallelism = parallelism.max(1);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<RecommendationReport, MinaretError>>> =
            (0..manuscripts.len()).map(|_| None).collect();
        let slot_cells: Vec<std::sync::Mutex<&mut Option<_>>> =
            slots.iter_mut().map(std::sync::Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..parallelism.min(manuscripts.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= manuscripts.len() {
                        break;
                    }
                    let result = self.recommend(&manuscripts[i]);
                    **slot_cells[i].lock().expect("slot lock never poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled by a worker"))
            .collect()
    }

    /// The worker-thread cap configured via
    /// [`with_parallelism`](Self::with_parallelism) (`0` = all cores).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Runs phase 1 (identity verification, keyword expansion, candidate
    /// retrieval) for a whole submission batch with **one** batched
    /// interest fan-out over the union of every manuscript's expanded
    /// labels — the entire batch costs roughly one policy-governed call
    /// per interest-capable source. Returns the shared merged candidate
    /// pool plus per-manuscript match slices into it; filtering and
    /// scoring remain per-paper concerns for the caller (the batch
    /// assignment solver scores each paper against its slice).
    ///
    /// Errors mirror [`recommend`](Self::recommend): an invalid
    /// manuscript (or empty batch) fails fast, too few responding
    /// sources is [`MinaretError::SourcesUnavailable`], and an empty
    /// pool is [`MinaretError::NoCandidates`].
    pub fn extract_batch(
        &self,
        manuscripts: &[ManuscriptDetails],
    ) -> Result<BatchExtraction, MinaretError> {
        if manuscripts.is_empty() {
            return Err(MinaretError::InvalidManuscript(
                "the submission batch is empty".into(),
            ));
        }
        for m in manuscripts {
            m.validate()?;
        }

        // Per-paper preparation: author verification + keyword expansion.
        // Each paper keeps its own label → best-score map, because the
        // same label can expand with different similarity from different
        // typed keywords.
        struct Prep {
            author_records: Vec<AuthorRecord>,
            expansion_sets: Vec<KeywordExpansionSet>,
            unknown_keywords: Vec<String>,
            labels: HashMap<String, f64>,
        }
        let mut preps: Vec<Prep> = Vec::with_capacity(manuscripts.len());
        for m in manuscripts {
            let verified = self.verify_authors(m);
            let author_records: Vec<AuthorRecord> = m
                .authors
                .iter()
                .zip(&verified)
                .map(|(input, verified)| {
                    AuthorRecord::from_parts(
                        &input.name,
                        input.affiliation.as_deref(),
                        input.country.as_deref(),
                        verified.chosen.as_ref().map(|c| &c.candidate),
                    )
                })
                .collect();
            let (expansion_sets, _summaries, unknown_keywords) = self.expand_keywords(&m.keywords);
            let mut labels: HashMap<String, f64> = HashMap::new();
            for set in &expansion_sets {
                for (label, &score) in &set.scores {
                    labels
                        .entry(label.clone())
                        .and_modify(|s| *s = s.max(score))
                        .or_insert(score);
                }
            }
            preps.push(Prep {
                author_records,
                expansion_sets,
                unknown_keywords,
                labels,
            });
        }

        // The union label set, sorted for a deterministic single fan-out.
        let union: std::collections::BTreeSet<&str> = preps
            .iter()
            .flat_map(|p| p.labels.keys().map(String::as_str))
            .collect();
        let sorted_labels: Vec<String> = union.into_iter().map(str::to_string).collect();

        let mut source_errors = Vec::new();
        let mut coverage = SourceCoverage::default();
        // label → hits from the one fan-out; each paper re-reads only the
        // labels it expanded.
        let mut by_label: HashMap<String, Vec<Arc<minaret_scholarly::SourceProfile>>> =
            HashMap::new();
        if !sorted_labels.is_empty() {
            let report = self.registry.search_by_interests_report(&sorted_labels);
            for outcome in &report.outcomes {
                match &outcome.status {
                    SourceStatus::Ok => {
                        coverage.responded.insert(outcome.source);
                    }
                    SourceStatus::Failed(e) => {
                        coverage.degraded.insert(outcome.source);
                        source_errors
                            .push(format!("{e} ({} labels affected)", sorted_labels.len()));
                    }
                    SourceStatus::Skipped => {}
                }
            }
            for (label, (_, hits)) in sorted_labels.iter().zip(report.by_label) {
                by_label.insert(label.clone(), hits);
            }
        }
        let degraded_sources: Vec<String> =
            coverage.degraded.iter().map(|k| k.to_string()).collect();
        if coverage.responded.len() < self.config.min_sources {
            return Err(MinaretError::SourcesUnavailable {
                responded: coverage.responded.len(),
                required: self.config.min_sources,
                degraded: degraded_sources,
            });
        }

        // One global pool: every profile any label returned, deduped and
        // merged exactly the way the single-manuscript path does it.
        let mut profiles: Vec<Arc<minaret_scholarly::SourceProfile>> = Vec::new();
        for label in &sorted_labels {
            if let Some(hits) = by_label.get(label) {
                profiles.extend(hits.iter().cloned());
            }
        }
        profiles.sort_by(|a, b| (a.source, &a.key).cmp(&(b.source, &b.key)));
        profiles.dedup_by(|a, b| a.source == b.source && a.key == b.key);
        if profiles.is_empty() {
            return Err(MinaretError::NoCandidates);
        }
        let pool = merge_profiles(profiles);
        // Profile keys are globally unique, so each key lands in exactly
        // one pool entry.
        let mut key_to_pool: HashMap<&str, usize> = HashMap::new();
        for (i, cand) in pool.iter().enumerate() {
            for key in &cand.keys {
                key_to_pool.insert(key.as_str(), i);
            }
        }

        // Per-paper slices: walk the paper's own labels over the shared
        // hits, scoring with the paper's own expansion scores.
        let papers: Vec<PaperExtraction> = preps
            .into_iter()
            .map(|prep| {
                let mut per_pool: HashMap<usize, HashMap<&str, f64>> = HashMap::new();
                for (label, &score) in &prep.labels {
                    let Some(hits) = by_label.get(label.as_str()) else {
                        continue;
                    };
                    for p in hits {
                        let idx = key_to_pool[p.key.as_str()];
                        per_pool
                            .entry(idx)
                            .or_default()
                            .entry(label.as_str())
                            .and_modify(|s| *s = s.max(score))
                            .or_insert(score);
                    }
                }
                let mut matches: Vec<PaperCandidate> = per_pool
                    .into_iter()
                    .map(|(pool_index, label_scores)| {
                        let mut matched_keywords: Vec<(String, f64)> = label_scores
                            .into_iter()
                            .map(|(l, s)| (l.to_string(), s))
                            .collect();
                        matched_keywords.sort_by(|a, b| {
                            b.1.partial_cmp(&a.1)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then_with(|| a.0.cmp(&b.0))
                        });
                        let keyword_score =
                            matched_keywords.first().map(|(_, s)| *s).unwrap_or(0.0);
                        PaperCandidate {
                            pool_index,
                            matched_keywords,
                            keyword_score,
                        }
                    })
                    .collect();
                matches.sort_by_key(|c| c.pool_index);
                PaperExtraction {
                    author_records: prep.author_records,
                    expansion_sets: prep.expansion_sets,
                    unknown_keywords: prep.unknown_keywords,
                    matches,
                }
            })
            .collect();

        Ok(BatchExtraction {
            pool,
            papers,
            union_labels: sorted_labels.len(),
            source_errors,
            degraded_sources,
        })
    }

    /// Phase-1 step: verify each author's identity and pull their track
    /// record (the chosen candidate carries publications, co-authors and
    /// affiliation history used by the COI check).
    fn verify_authors(&self, manuscript: &ManuscriptDetails) -> Vec<VerifiedAuthor> {
        let resolver = IdentityResolver::new(&self.registry).with_telemetry(self.telemetry.clone());
        manuscript
            .authors
            .iter()
            .map(|a| {
                resolver.resolve(
                    AuthorQuery {
                        name: a.name.clone(),
                        affiliation: a.affiliation.clone(),
                        country: a.country.clone(),
                        context_keywords: manuscript.keywords.clone(),
                    },
                    &self.resolution,
                )
            })
            .collect()
    }

    /// Phase-1 step: semantic keyword expansion. Keywords unknown to the
    /// ontology are kept literally (score 1.0) so they still drive a
    /// search, and reported in the third return value.
    fn expand_keywords(
        &self,
        keywords: &[String],
    ) -> (Vec<KeywordExpansionSet>, Vec<ExpansionSummary>, Vec<String>) {
        let expander = KeywordExpander::new(&self.ontology, self.config.expansion);
        let mut sets = Vec::new();
        let mut summaries = Vec::new();
        let mut unknown = Vec::new();
        for kw in keywords {
            if kw.trim().is_empty() {
                continue;
            }
            match expander.expand(kw) {
                Ok(exps) => {
                    let mut scores = HashMap::new();
                    let mut expanded = Vec::new();
                    for e in &exps {
                        let norm = normalize_label(&e.label);
                        scores
                            .entry(norm)
                            .and_modify(|s: &mut f64| *s = s.max(e.score))
                            .or_insert(e.score);
                        if e.hops > 0 {
                            expanded.push((e.label.clone(), e.score));
                        }
                    }
                    // The typed keyword always matches itself.
                    scores.insert(normalize_label(kw), 1.0);
                    sets.push(KeywordExpansionSet {
                        original: kw.clone(),
                        scores,
                    });
                    summaries.push(ExpansionSummary {
                        original: kw.clone(),
                        expanded,
                    });
                }
                Err(_) => {
                    let mut scores = HashMap::new();
                    scores.insert(normalize_label(kw), 1.0);
                    sets.push(KeywordExpansionSet {
                        original: kw.clone(),
                        scores,
                    });
                    summaries.push(ExpansionSummary {
                        original: kw.clone(),
                        expanded: Vec::new(),
                    });
                    unknown.push(kw.clone());
                }
            }
        }
        (sets, summaries, unknown)
    }

    /// Phase-1 step: retrieve candidate reviewers by issuing the whole
    /// expanded label set as **one batched fan-out** — every
    /// interest-capable source answers all labels in a single
    /// policy-governed call — then merging per-source profiles into
    /// candidates. The second return value is the per-source health
    /// ledger of that fan-out, which drives the degraded-mode decision.
    fn retrieve_candidates(
        &self,
        expansion_sets: &[KeywordExpansionSet],
        source_errors: &mut Vec<String>,
    ) -> (Vec<CandidateProfile>, SourceCoverage) {
        // Collect the distinct labels to search, with their best score.
        let mut labels: HashMap<String, f64> = HashMap::new();
        for set in expansion_sets {
            for (label, &score) in &set.scores {
                labels
                    .entry(label.clone())
                    .and_modify(|s| *s = s.max(score))
                    .or_insert(score);
            }
        }
        let mut sorted_labels: Vec<(String, f64)> = labels.into_iter().collect();
        sorted_labels.sort_by(|a, b| a.0.cmp(&b.0));

        let mut profiles = Vec::new();
        // profile key -> matched labels. Keys are globally unique (each
        // embeds its source's prefix), and keying by the key alone keeps
        // every merged profile's matches even when a name collision
        // conflates two same-source profiles into one candidate.
        let mut matched: HashMap<String, Vec<(String, f64)>> = HashMap::new();
        let mut coverage = SourceCoverage::default();
        if !sorted_labels.is_empty() {
            let label_names: Vec<String> = sorted_labels
                .iter()
                .map(|(label, _)| label.clone())
                .collect();
            let report = self.registry.search_by_interests_report(&label_names);
            for outcome in &report.outcomes {
                match &outcome.status {
                    SourceStatus::Ok => {
                        coverage.responded.insert(outcome.source);
                    }
                    SourceStatus::Failed(e) => {
                        coverage.degraded.insert(outcome.source);
                        // One aggregated entry per failed source — a dead
                        // source fails the whole batch once, not once per
                        // label.
                        source_errors.push(format!("{e} ({} labels affected)", label_names.len()));
                    }
                    // Skipped sources neither responded nor degrade the
                    // run — they were never expected to answer.
                    SourceStatus::Skipped => {}
                }
            }
            // Per-label hits come back in input order, and within one
            // label in source-registration order — the same profile
            // stream the per-label fan-out loop used to produce.
            for ((label, score), (_, hits)) in sorted_labels.iter().zip(report.by_label) {
                for p in hits {
                    matched
                        .entry(p.key.clone())
                        .or_default()
                        .push((label.clone(), *score));
                    profiles.push(p);
                }
            }
        }
        // Dedupe profiles found under several labels.
        profiles.sort_by(|a, b| (a.source, &a.key).cmp(&(b.source, &b.key)));
        profiles.dedup_by(|a, b| a.source == b.source && a.key == b.key);

        let merged = merge_profiles(profiles);
        let candidates = merged
            .into_iter()
            .map(|m| {
                let mut label_scores: HashMap<String, f64> = HashMap::new();
                for key in &m.keys {
                    if let Some(ls) = matched.get(key) {
                        for (l, s) in ls {
                            label_scores
                                .entry(l.clone())
                                .and_modify(|cur| *cur = cur.max(*s))
                                .or_insert(*s);
                        }
                    }
                }
                let mut matched_keywords: Vec<(String, f64)> = label_scores.into_iter().collect();
                matched_keywords.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.0.cmp(&b.0))
                });
                let keyword_score = matched_keywords.first().map(|(_, s)| *s).unwrap_or(0.0);
                CandidateProfile {
                    merged: m,
                    matched_keywords,
                    keyword_score,
                }
            })
            .collect();
        (candidates, coverage)
    }
}

/// Which sources answered (vs. failed) the run's batched retrieval
/// fan-out. With batching a source answers or fails the whole label set
/// in one call, so each source lands in exactly one bucket (or neither,
/// when it was skipped as interest-incapable).
#[derive(Debug, Default)]
struct SourceCoverage {
    responded: std::collections::BTreeSet<SourceKind>,
    degraded: std::collections::BTreeSet<SourceKind>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manuscript::AuthorInput;
    use minaret_scholarly::{FaultSchedule, RegistryConfig, SimulatedSource, SourceSpec};
    use minaret_synth::{World, WorldConfig, WorldGenerator};

    fn setup() -> (Arc<World>, Minaret) {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 300,
                ..Default::default()
            })
            .generate(),
        );
        let mut reg = SourceRegistry::new(RegistryConfig::default());
        for spec in SourceSpec::all_defaults() {
            reg.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        let minaret = Minaret::new(
            Arc::new(reg),
            Arc::new(minaret_ontology::seed::curated_cs_ontology()),
            EditorConfig::default(),
        );
        (world, minaret)
    }

    fn manuscript_from_world(world: &World) -> ManuscriptDetails {
        // Use a real scholar's interests as keywords so candidates exist.
        let lead = world
            .scholars()
            .iter()
            .find(|s| !world.papers_of(s.id).is_empty())
            .unwrap();
        let inst = world.institution(lead.current_affiliation());
        ManuscriptDetails {
            title: "A synthetic manuscript".into(),
            keywords: lead
                .interests
                .iter()
                .take(3)
                .map(|&t| world.ontology.label(t).to_string())
                .collect(),
            authors: vec![AuthorInput::named(lead.full_name())
                .with_affiliation(inst.name.clone())
                .with_country(inst.country.clone())],
            target_venue: world.venues()[0].name.clone(),
        }
    }

    #[test]
    fn end_to_end_recommendation_produces_ranked_list() {
        let (world, minaret) = setup();
        let m = manuscript_from_world(&world);
        let report = minaret.recommend(&m).expect("pipeline succeeds");
        assert!(!report.recommendations.is_empty());
        assert!(report.candidates_retrieved >= report.recommendations.len());
        // Ranked descending, ranks contiguous from 1.
        for (i, r) in report.recommendations.iter().enumerate() {
            assert_eq!(r.rank, i + 1);
            assert!((0.0..=1.0).contains(&r.total));
        }
        for w in report.recommendations.windows(2) {
            assert!(w[0].total >= w[1].total);
        }
    }

    #[test]
    fn authors_never_appear_in_recommendations() {
        let (world, minaret) = setup();
        let m = manuscript_from_world(&world);
        let report = minaret.recommend(&m).unwrap();
        let author_names: Vec<String> =
            m.authors.iter().map(|a| normalize_label(&a.name)).collect();
        for r in &report.recommendations {
            assert!(
                !author_names.contains(&normalize_label(&r.name)),
                "author {} leaked into recommendations",
                r.name
            );
        }
    }

    #[test]
    fn coi_filtering_removes_coauthors_of_the_author() {
        let (world, minaret) = setup();
        let m = manuscript_from_world(&world);
        let report = minaret.recommend(&m).unwrap();
        // Ground truth: no recommended candidate ever co-authored with
        // the (single) author. We check via the truth labels.
        let author = world
            .scholars()
            .iter()
            .find(|s| s.full_name() == m.authors[0].name)
            .unwrap();
        for r in &report.recommendations {
            for truth in &r.candidate.truths {
                assert!(
                    !world.ever_coauthored(author.id, *truth),
                    "recommended {} co-authored with the author",
                    r.name
                );
            }
        }
    }

    #[test]
    fn invalid_manuscript_is_rejected() {
        let (_, minaret) = setup();
        let m = ManuscriptDetails {
            title: "".into(),
            keywords: vec!["RDF".into()],
            authors: vec![AuthorInput::named("A B")],
            target_venue: "J".into(),
        };
        assert!(matches!(
            minaret.recommend(&m),
            Err(MinaretError::InvalidManuscript(_))
        ));
    }

    #[test]
    fn unknown_keywords_reported_and_nocandidates_error() {
        let (_, minaret) = setup();
        let m = ManuscriptDetails {
            title: "T".into(),
            keywords: vec!["transcendental numerology".into()],
            authors: vec![AuthorInput::named("A B")],
            target_venue: "J".into(),
        };
        match minaret.recommend(&m) {
            Err(MinaretError::NoCandidates) => {}
            other => panic!("expected NoCandidates, got {other:?}"),
        }
    }

    /// Builds a Minaret over all six default sources, with `dead` sources
    /// scripted as permanently down.
    fn minaret_with_outages(world: &Arc<World>, dead: &[SourceKind]) -> Minaret {
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 1,
            ..Default::default()
        });
        for spec in SourceSpec::all_defaults() {
            let kind = spec.kind;
            let mut source = SimulatedSource::new(spec, world.clone());
            if dead.contains(&kind) {
                source = source.with_fault(FaultSchedule::PermanentOutage);
            }
            reg.register(Arc::new(source));
        }
        Minaret::new(
            Arc::new(reg),
            Arc::new(minaret_ontology::seed::curated_cs_ontology()),
            EditorConfig::default(),
        )
    }

    #[test]
    fn dead_source_degrades_but_still_recommends() {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 300,
                ..Default::default()
            })
            .generate(),
        );
        let minaret = minaret_with_outages(&world, &[SourceKind::Publons]);
        let m = manuscript_from_world(&world);
        let report = minaret.recommend(&m).expect("degraded run still succeeds");
        assert!(!report.recommendations.is_empty());
        assert!(report.degraded, "a dead source must flag the report");
        assert_eq!(report.degraded_sources, vec!["Publons".to_string()]);
        assert!(!report.source_errors.is_empty());
        // The surviving sources never include the dead one.
        for r in &report.recommendations {
            assert!(!r.sources.contains(&SourceKind::Publons));
        }
    }

    #[test]
    fn dead_source_reports_one_aggregated_error_not_one_per_label() {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 300,
                ..Default::default()
            })
            .generate(),
        );
        let minaret = minaret_with_outages(&world, &[SourceKind::Publons]);
        let m = manuscript_from_world(&world);
        let report = minaret.recommend(&m).unwrap();
        // The expanded label set is much larger than one, yet the dead
        // source contributes exactly one aggregated error entry carrying
        // the affected-label count.
        assert_eq!(
            report.source_errors.len(),
            1,
            "one entry per failed source: {:?}",
            report.source_errors
        );
        assert!(
            report.source_errors[0].contains("labels affected"),
            "{:?}",
            report.source_errors
        );
    }

    #[test]
    fn forced_sequential_parallelism_matches_default() {
        let (world, minaret) = setup();
        let m = manuscript_from_world(&world);
        let parallel = minaret.recommend(&m).unwrap();
        let (world2, _) = setup();
        drop(world2);
        let sequential_minaret = {
            let mut reg = SourceRegistry::new(RegistryConfig::default());
            for spec in SourceSpec::all_defaults() {
                reg.register(Arc::new(SimulatedSource::new(spec, world.clone())));
            }
            Minaret::new(
                Arc::new(reg),
                Arc::new(minaret_ontology::seed::curated_cs_ontology()),
                EditorConfig::default(),
            )
            .with_parallelism(1)
        };
        let sequential = sequential_minaret.recommend(&m).unwrap();
        assert_eq!(
            parallel.recommendations.len(),
            sequential.recommendations.len()
        );
        for (p, s) in parallel
            .recommendations
            .iter()
            .zip(&sequential.recommendations)
        {
            assert_eq!(p.name, s.name);
            assert_eq!(
                p.total.to_bits(),
                s.total.to_bits(),
                "scores must be bitwise equal"
            );
        }
    }

    #[test]
    fn too_few_sources_fails_with_sources_unavailable() {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 300,
                ..Default::default()
            })
            .generate(),
        );
        // Both interest-capable sources down: 0 responders < min_sources.
        let minaret =
            minaret_with_outages(&world, &[SourceKind::GoogleScholar, SourceKind::Publons]);
        let m = manuscript_from_world(&world);
        match minaret.recommend(&m) {
            Err(MinaretError::SourcesUnavailable {
                responded,
                required,
                degraded,
            }) => {
                assert_eq!(responded, 0);
                assert_eq!(required, 1);
                assert!(
                    degraded.contains(&"Google Scholar".to_string()),
                    "{degraded:?}"
                );
                assert!(degraded.contains(&"Publons".to_string()), "{degraded:?}");
            }
            other => panic!("expected SourcesUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn healthy_run_is_not_degraded() {
        let (world, minaret) = setup();
        let m = manuscript_from_world(&world);
        let report = minaret.recommend(&m).unwrap();
        assert!(!report.degraded);
        assert!(report.degraded_sources.is_empty());
    }

    #[test]
    fn expansion_summaries_cover_all_keywords() {
        let (world, minaret) = setup();
        let m = manuscript_from_world(&world);
        let report = minaret.recommend(&m).unwrap();
        assert_eq!(report.expansions.len(), m.keywords.len());
        for (summary, kw) in report.expansions.iter().zip(&m.keywords) {
            assert_eq!(&summary.original, kw);
        }
        assert!(report.unknown_keywords.is_empty());
    }

    #[test]
    fn max_recommendations_is_respected() {
        let (world, _) = setup();
        let mut reg = SourceRegistry::new(RegistryConfig::default());
        for spec in SourceSpec::all_defaults() {
            reg.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        let minaret = Minaret::new(
            Arc::new(reg),
            Arc::new(minaret_ontology::seed::curated_cs_ontology()),
            EditorConfig {
                max_recommendations: 3,
                ..Default::default()
            },
        );
        let m = manuscript_from_world(&world);
        let report = minaret.recommend(&m).unwrap();
        assert!(report.recommendations.len() <= 3);
    }

    #[test]
    fn phase_timings_are_recorded() {
        let (world, minaret) = setup();
        let m = manuscript_from_world(&world);
        let report = minaret.recommend(&m).unwrap();
        assert!(report.timings.extraction > Duration::ZERO);
        assert_eq!(
            report.timings.total(),
            report.timings.extraction + report.timings.filtering + report.timings.ranking
        );
    }

    #[test]
    fn telemetry_records_phase_metrics_and_a_trace() {
        let (world, minaret) = setup();
        let telemetry = minaret_telemetry::Telemetry::new();
        let minaret = minaret.with_telemetry(telemetry.clone());
        let m = manuscript_from_world(&world);
        minaret.recommend(&m).unwrap();

        let text = telemetry.encode_prometheus();
        for phase in ["extraction", "filtering", "ranking"] {
            assert!(
                text.contains(&format!(
                    "minaret_phase_micros_count{{phase=\"{phase}\"}} 1"
                )),
                "missing phase histogram for {phase}:\n{text}"
            );
            for direction in ["in", "out"] {
                assert!(
                    text.contains(&format!(
                        "minaret_phase_candidates{{direction=\"{direction}\",phase=\"{phase}\"}}"
                    )),
                    "missing {phase}/{direction} gauge:\n{text}"
                );
            }
        }
        assert!(
            text.contains("minaret_recommend_total{result=\"ok\"} 1"),
            "{text}"
        );

        let traces = telemetry.recent_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].name, "recommend");
        let span_names: Vec<&str> = traces[0].spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(span_names, ["extraction", "filtering", "ranking"]);
        assert!(traces[0].spans.iter().all(|s| s.depth == 0));
    }

    #[test]
    fn telemetry_counts_rejected_manuscripts() {
        let (_, minaret) = setup();
        let telemetry = minaret_telemetry::Telemetry::new();
        let minaret = minaret.with_telemetry(telemetry.clone());
        let m = ManuscriptDetails {
            title: "".into(),
            keywords: vec!["RDF".into()],
            authors: vec![AuthorInput::named("A B")],
            target_venue: "J".into(),
        };
        assert!(minaret.recommend(&m).is_err());
        let text = telemetry.encode_prometheus();
        assert!(
            text.contains("minaret_recommend_total{result=\"invalid\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn render_table_lists_every_recommendation() {
        let (world, minaret) = setup();
        let m = manuscript_from_world(&world);
        let report = minaret.recommend(&m).unwrap();
        let table = report.render_table();
        assert!(table.contains("TOTAL"));
        assert_eq!(
            table.lines().count(),
            report.recommendations.len() + 1 // header
        );
    }

    #[test]
    fn explanations_name_the_candidate_and_evidence() {
        let (world, minaret) = setup();
        let m = manuscript_from_world(&world);
        let report = minaret.recommend(&m).unwrap();
        let top = &report.recommendations[0];
        let text = top.explain(&minaret.config().weights);
        assert!(text.contains(&top.name));
        assert!(text.starts_with("#1 "));
        assert!(text.contains("total score"));
        // Evidence sentences only mention weighted, non-zero components.
        if top.breakdown.coverage > 0.0 {
            assert!(text.contains("covers"));
        }
    }

    #[test]
    fn batch_recommendation_matches_sequential_and_keeps_order() {
        let (world, minaret) = setup();
        let mut manuscripts = Vec::new();
        for s in world
            .scholars()
            .iter()
            .filter(|s| !world.papers_of(s.id).is_empty())
            .take(4)
        {
            let inst = world.institution(s.current_affiliation());
            manuscripts.push(ManuscriptDetails {
                title: format!("Batch manuscript by {}", s.full_name()),
                keywords: s
                    .interests
                    .iter()
                    .take(2)
                    .map(|&t| world.ontology.label(t).to_string())
                    .collect(),
                authors: vec![AuthorInput::named(s.full_name())
                    .with_affiliation(inst.name.clone())],
                target_venue: world.venues()[0].name.clone(),
            });
        }
        let batch = minaret.recommend_batch(&manuscripts, 3);
        assert_eq!(batch.len(), manuscripts.len());
        for (m, result) in manuscripts.iter().zip(&batch) {
            let sequential = minaret.recommend(m);
            match (result, sequential) {
                (Ok(b), Ok(s)) => {
                    let names = |r: &RecommendationReport| {
                        r.recommendations
                            .iter()
                            .map(|x| x.name.clone())
                            .collect::<Vec<_>>()
                    };
                    assert_eq!(names(b), names(&s), "batch diverged for {}", m.title);
                }
                (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}")),
                (a, b) => panic!("batch {a:?} vs sequential {b:?}"),
            }
        }
    }

    #[test]
    fn batch_with_zero_parallelism_still_works() {
        let (world, minaret) = setup();
        let m = manuscript_from_world(&world);
        let results = minaret.recommend_batch(std::slice::from_ref(&m), 0);
        assert_eq!(results.len(), 1);
        assert!(results[0].is_ok());
        assert!(minaret.recommend_batch(&[], 4).is_empty());
    }

    #[test]
    fn conference_mode_restricts_to_pc() {
        let (world, _) = setup();
        let mut reg = SourceRegistry::new(RegistryConfig::default());
        for spec in SourceSpec::all_defaults() {
            reg.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        // First run journal mode to learn who the top candidates are.
        let journal = Minaret::new(
            Arc::new(SourceRegistry::new(RegistryConfig::default())),
            Arc::new(minaret_ontology::seed::curated_cs_ontology()),
            EditorConfig::default(),
        );
        drop(journal);
        let m = manuscript_from_world(&world);
        let base = Minaret::new(
            Arc::new({
                let mut r = SourceRegistry::new(RegistryConfig::default());
                for spec in SourceSpec::all_defaults() {
                    r.register(Arc::new(SimulatedSource::new(spec, world.clone())));
                }
                r
            }),
            Arc::new(minaret_ontology::seed::curated_cs_ontology()),
            EditorConfig::default(),
        );
        let open = base.recommend(&m).unwrap();
        assert!(open.recommendations.len() >= 2);
        let pc: Vec<String> = open
            .recommendations
            .iter()
            .take(2)
            .map(|r| r.name.clone())
            .collect();
        let conf = Minaret::new(
            Arc::new(reg),
            Arc::new(minaret_ontology::seed::curated_cs_ontology()),
            EditorConfig {
                pc_members: Some(pc.clone()),
                ..Default::default()
            },
        );
        let restricted = conf.recommend(&m).unwrap();
        assert!(!restricted.recommendations.is_empty());
        for r in &restricted.recommendations {
            assert!(
                pc.iter()
                    .any(|p| normalize_label(p) == normalize_label(&r.name)),
                "{} is not on the PC",
                r.name
            );
        }
        assert!(restricted
            .filtered_out
            .iter()
            .any(|(_, reason)| matches!(reason, FilterReason::NotOnProgrammeCommittee)));
    }
}
