//! The MINARET reviewer-recommendation framework.
//!
//! This crate implements the paper's primary contribution: given a
//! manuscript's details (keywords, author list with affiliations, target
//! journal) and an editor's configuration, it runs the three-phase
//! workflow of Figure 2 —
//!
//! 1. **Information extraction** (`pipeline`): author identity
//!    verification (via `minaret-disambig`), author track-record
//!    extraction, semantic keyword expansion (via `minaret-ontology`),
//!    and candidate retrieval across all scholarly sources (via
//!    `minaret-scholarly`).
//! 2. **Filtering** ([`coi`], [`filter`]): conflict-of-interest removal
//!    (co-authorship and shared affiliations at university or country
//!    level), keyword-matching-score thresholding, and editor-defined
//!    expertise constraints (citations, h-index, review count, PC
//!    membership in conference mode).
//! 3. **Ranking** ([`rank`]): a weighted sum of five components — topic
//!    coverage, scientific impact, recency, review experience, and
//!    familiarity with the target outlet — with editor-configurable
//!    weights and a per-candidate score breakdown (the Figure 5 drill-
//!    down).
//!
//! Entry point: [`Minaret`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use minaret_concurrent as concurrent;

pub mod coi;
mod config;
mod error;
pub mod filter;
mod manuscript;
pub mod par;
mod pipeline;
pub mod rank;

pub use config::{
    AffiliationMatchLevel, CoiConfig, EditorConfig, ExpertiseConstraints, ImpactMetric,
    RankingWeights,
};
pub use error::MinaretError;
pub use manuscript::{AuthorInput, ManuscriptDetails};
pub use pipeline::{
    BatchExtraction, CandidateProfile, ExpansionSummary, Minaret, PaperCandidate, PaperExtraction,
    PhaseTimings, Recommendation, RecommendationReport,
};
pub use rank::{KeywordExpansionSet, ScoreBreakdown};
