//! Editor-facing configuration (§2.2–2.3 of the paper).

use minaret_ontology::ExpansionConfig;

/// At what granularity shared affiliations constitute a conflict of
/// interest. §2.2: "the existence of any shared affiliations on the level
/// of the university or country, as configured by the editor".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AffiliationMatchLevel {
    /// Only a shared university/institute is a conflict.
    University,
    /// Any shared country is a conflict (strictest).
    Country,
    /// Affiliations are ignored for COI.
    Off,
}

/// Conflict-of-interest configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoiConfig {
    /// Whether previous co-authorship with any manuscript author is a
    /// conflict.
    pub coauthorship: bool,
    /// Affiliation matching granularity.
    pub affiliation_level: AffiliationMatchLevel,
    /// Minimum token-overlap similarity for two institution name strings
    /// to count as "the same university" (scraped text never matches
    /// exactly).
    pub institution_similarity: f64,
}

impl Default for CoiConfig {
    fn default() -> Self {
        Self {
            coauthorship: true,
            affiliation_level: AffiliationMatchLevel::University,
            institution_similarity: 0.8,
        }
    }
}

/// Editor-defined expertise constraints (§2.2: "the range of number of
/// citations / H-index, the number of previous review activities").
/// `None` bounds are unconstrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExpertiseConstraints {
    /// Minimum total citations.
    pub min_citations: Option<u64>,
    /// Maximum total citations (editors avoid overloaded stars — §1's
    /// "inviting a high-profile reviewer who happens to be quite busy").
    pub max_citations: Option<u64>,
    /// Minimum h-index.
    pub min_h_index: Option<u32>,
    /// Maximum h-index.
    pub max_h_index: Option<u32>,
    /// Minimum number of previous review activities.
    pub min_reviews: Option<u32>,
    /// Maximum number of previous review activities.
    pub max_reviews: Option<u32>,
}

impl ExpertiseConstraints {
    /// True when a candidate's numbers satisfy every configured bound.
    /// Missing candidate data fails only `min_*` bounds (a site that
    /// shows no citation count cannot prove the minimum is met).
    pub fn admits(&self, citations: Option<u64>, h_index: Option<u32>, reviews: u32) -> bool {
        let ge = |v: Option<u64>, min: u64| v.map(|x| x >= min).unwrap_or(false);
        let le = |v: Option<u64>, max: u64| v.map(|x| x <= max).unwrap_or(true);
        if let Some(m) = self.min_citations {
            if !ge(citations, m) {
                return false;
            }
        }
        if let Some(m) = self.max_citations {
            if !le(citations, m) {
                return false;
            }
        }
        if let Some(m) = self.min_h_index {
            if !ge(h_index.map(u64::from), u64::from(m)) {
                return false;
            }
        }
        if let Some(m) = self.max_h_index {
            if !le(h_index.map(u64::from), u64::from(m)) {
                return false;
            }
        }
        if let Some(m) = self.min_reviews {
            if reviews < m {
                return false;
            }
        }
        if let Some(m) = self.max_reviews {
            if reviews > m {
                return false;
            }
        }
        true
    }
}

/// Which metric the scientific-impact component reads (§2.3: "the number
/// of citations/H-index of the reviewer, as configured by the user").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImpactMetric {
    /// Total citation count, log-scaled.
    Citations,
    /// h-index, log-scaled.
    HIndex,
}

/// Weights of the ranking components. They need not sum to 1; scores are
/// normalized by the weight total.
///
/// The first five are §2.3's components. `responsiveness` is the
/// "likelihood to accept and timely return his review" aspect §1 calls
/// out; it defaults to `0` so the default ranking is exactly the paper's
/// five-component sum, and editors opt in by raising the weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingWeights {
    /// Topic coverage of the manuscript's keywords.
    pub coverage: f64,
    /// Scientific impact (citations or h-index).
    pub impact: f64,
    /// Recency of publications on the manuscript's topics.
    pub recency: f64,
    /// Review experience (total prior reviews).
    pub experience: f64,
    /// Familiarity with the target outlet (reviews for / papers in it).
    pub familiarity: f64,
    /// Responsiveness: review turnaround speed and recent review
    /// activity (§1's timeliness concern). Default `0.0`.
    pub responsiveness: f64,
}

impl Default for RankingWeights {
    fn default() -> Self {
        Self {
            coverage: 0.35,
            impact: 0.20,
            recency: 0.20,
            experience: 0.15,
            familiarity: 0.10,
            responsiveness: 0.0,
        }
    }
}

impl RankingWeights {
    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.coverage
            + self.impact
            + self.recency
            + self.experience
            + self.familiarity
            + self.responsiveness
    }
}

/// Everything the editor configures for one recommendation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EditorConfig {
    /// Semantic keyword-expansion parameters.
    pub expansion: ExpansionConfig,
    /// Conflict-of-interest rules.
    pub coi: CoiConfig,
    /// Minimum keyword-matching score for a candidate to survive
    /// filtering (§2.2's threshold on expanded-keyword similarity).
    pub keyword_score_threshold: f64,
    /// Expertise range constraints.
    pub expertise: ExpertiseConstraints,
    /// Which impact metric the ranking reads.
    pub impact_metric: ImpactMetric,
    /// Ranking component weights.
    pub weights: RankingWeights,
    /// Recency half-life in years (a paper this old contributes half the
    /// recency credit of a current one).
    pub recency_half_life_years: f64,
    /// Maximum number of recommendations returned.
    pub max_recommendations: usize,
    /// Conference mode (§3): when set, only candidates whose name matches
    /// a programme-committee member are retained.
    pub pc_members: Option<Vec<String>>,
    /// The current year, for recency computations.
    pub current_year: u32,
    /// Degradation floor: the minimum number of scholarly sources that
    /// must answer candidate retrieval for a run to proceed. With fewer
    /// (sources down, breakers open), the run fails with
    /// [`SourcesUnavailable`](crate::MinaretError::SourcesUnavailable)
    /// instead of silently recommending from too thin a view. Partial
    /// coverage above the floor succeeds but flags the report degraded.
    pub min_sources: usize,
}

impl Default for EditorConfig {
    fn default() -> Self {
        Self {
            expansion: ExpansionConfig::default(),
            coi: CoiConfig::default(),
            keyword_score_threshold: 0.5,
            expertise: ExpertiseConstraints::default(),
            impact_metric: ImpactMetric::Citations,
            weights: RankingWeights::default(),
            recency_half_life_years: 5.0,
            max_recommendations: 20,
            pc_members: None,
            current_year: 2018,
            min_sources: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_sum_to_one() {
        assert!((RankingWeights::default().total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constraints_admit_when_unconstrained() {
        let c = ExpertiseConstraints::default();
        assert!(c.admits(None, None, 0));
        assert!(c.admits(Some(10_000), Some(60), 300));
    }

    #[test]
    fn min_bounds_require_evidence() {
        let c = ExpertiseConstraints {
            min_citations: Some(100),
            ..Default::default()
        };
        assert!(
            !c.admits(None, None, 0),
            "unknown citations can't prove a minimum"
        );
        assert!(!c.admits(Some(50), None, 0));
        assert!(c.admits(Some(150), None, 0));
    }

    #[test]
    fn max_bounds_tolerate_missing_data() {
        let c = ExpertiseConstraints {
            max_citations: Some(100),
            max_h_index: Some(10),
            ..Default::default()
        };
        assert!(c.admits(None, None, 0));
        assert!(!c.admits(Some(500), None, 0));
        assert!(!c.admits(Some(50), Some(20), 0));
    }

    #[test]
    fn review_bounds_enforced() {
        let c = ExpertiseConstraints {
            min_reviews: Some(5),
            max_reviews: Some(50),
            ..Default::default()
        };
        assert!(!c.admits(None, None, 2));
        assert!(c.admits(None, None, 10));
        assert!(!c.admits(None, None, 100));
    }

    #[test]
    fn default_config_is_journal_mode() {
        let c = EditorConfig::default();
        assert!(c.pc_members.is_none());
        assert_eq!(c.impact_metric, ImpactMetric::Citations);
        assert!(c.keyword_score_threshold > 0.0);
    }
}
