//! The manuscript details the editor enters (Figure 3 of the paper).

/// One author of the submitted manuscript, as typed into the form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthorInput {
    /// Author name, e.g. `"Lei Zhou"` or `"Zhou, Lei"`.
    pub name: String,
    /// Current affiliation, e.g. `"University of Tartu"`.
    pub affiliation: Option<String>,
    /// Country of the affiliation.
    pub country: Option<String>,
}

impl AuthorInput {
    /// Convenience constructor with only a name.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            affiliation: None,
            country: None,
        }
    }

    /// Sets the affiliation.
    pub fn with_affiliation(mut self, affiliation: impl Into<String>) -> Self {
        self.affiliation = Some(affiliation.into());
        self
    }

    /// Sets the country.
    pub fn with_country(mut self, country: impl Into<String>) -> Self {
        self.country = Some(country.into());
        self
    }
}

/// The manuscript submission the editor needs reviewers for.
///
/// Matches the fields of the paper's "adding paper details" form:
/// title, author list with current affiliations, topics/keywords
/// (usually 3–5, per §2.1), and the target journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManuscriptDetails {
    /// Manuscript title.
    pub title: String,
    /// Author-supplied keywords describing the topic.
    pub keywords: Vec<String>,
    /// The author list.
    pub authors: Vec<AuthorInput>,
    /// Name of the journal (or conference) the manuscript targets.
    pub target_venue: String,
}

impl ManuscriptDetails {
    /// Validates the details the way the form would: a title, at least
    /// one keyword, at least one author with a non-empty name.
    pub fn validate(&self) -> Result<(), crate::error::MinaretError> {
        use crate::error::MinaretError;
        if self.title.trim().is_empty() {
            return Err(MinaretError::InvalidManuscript("title is empty".into()));
        }
        if self.keywords.iter().all(|k| k.trim().is_empty()) {
            return Err(MinaretError::InvalidManuscript(
                "at least one non-empty keyword is required".into(),
            ));
        }
        if self.authors.is_empty() || self.authors.iter().any(|a| a.name.trim().is_empty()) {
            return Err(MinaretError::InvalidManuscript(
                "every author needs a non-empty name".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> ManuscriptDetails {
        ManuscriptDetails {
            title: "Scalable RDF stores".into(),
            keywords: vec!["RDF".into(), "Big Data".into()],
            authors: vec![AuthorInput::named("Lei Zhou")
                .with_affiliation("University of Tartu")
                .with_country("Estonia")],
            target_venue: "Journal of Synthetic Computing 1".into(),
        }
    }

    #[test]
    fn valid_manuscript_passes() {
        assert!(valid().validate().is_ok());
    }

    #[test]
    fn empty_title_rejected() {
        let mut m = valid();
        m.title = "  ".into();
        assert!(m.validate().is_err());
    }

    #[test]
    fn blank_keywords_rejected() {
        let mut m = valid();
        m.keywords = vec!["".into(), "  ".into()];
        assert!(m.validate().is_err());
    }

    #[test]
    fn authorless_manuscript_rejected() {
        let mut m = valid();
        m.authors.clear();
        assert!(m.validate().is_err());
        let mut m2 = valid();
        m2.authors.push(AuthorInput::named(""));
        assert!(m2.validate().is_err());
    }

    #[test]
    fn builder_helpers_set_fields() {
        let a = AuthorInput::named("A B")
            .with_affiliation("U")
            .with_country("C");
        assert_eq!(a.affiliation.as_deref(), Some("U"));
        assert_eq!(a.country.as_deref(), Some("C"));
    }
}
