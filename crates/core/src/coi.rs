//! Conflict-of-interest detection (§2.2 of the paper).
//!
//! "COI is determined by checking the extracted profile information for
//! both of the author list and candidate reviewers and based on the
//! existence of a previous co-authorship between the candidate reviewer
//! and one of \[the\] author list or the existence of any shared
//! affiliations on the level of the university or country, as configured
//! by the editor."

use minaret_disambig::evidence::token_jaccard;
use minaret_disambig::name::parse_name;
use minaret_ontology::normalize_label;
use minaret_scholarly::intern;
use minaret_scholarly::MergedCandidate;
use std::sync::Arc;

use crate::config::{AffiliationMatchLevel, CoiConfig};

/// Everything the COI check knows about one manuscript author: what the
/// editor typed plus whatever was extracted from the author's verified
/// profile.
#[derive(Debug, Clone, Default)]
pub struct AuthorRecord {
    /// Author name as typed.
    pub name: String,
    /// Institution name strings the author is/was affiliated with.
    pub institutions: Vec<String>,
    /// Countries the author is/was affiliated in.
    pub countries: Vec<String>,
    /// Normalized titles of the author's publications.
    pub publication_titles: Vec<String>,
    /// Display names of the author's co-authors.
    pub coauthor_names: Vec<String>,
}

impl AuthorRecord {
    /// Builds a record from the typed form fields plus an optional
    /// verified profile.
    pub fn from_parts(
        name: &str,
        typed_affiliation: Option<&str>,
        typed_country: Option<&str>,
        profile: Option<&MergedCandidate>,
    ) -> Self {
        let mut rec = AuthorRecord {
            name: name.to_string(),
            ..Default::default()
        };
        if let Some(a) = typed_affiliation {
            rec.institutions.push(a.to_string());
        }
        if let Some(c) = typed_country {
            rec.countries.push(normalize_label(c));
        }
        if let Some(p) = profile {
            if let Some(a) = &p.affiliation {
                rec.institutions.push(a.clone());
            }
            if let Some(c) = &p.country {
                rec.countries.push(normalize_label(c));
            }
            for h in &p.affiliation_history {
                rec.institutions.push(h.institution.clone());
                rec.countries.push(normalize_label(&h.country));
            }
            for publ in &p.publications {
                rec.publication_titles.push(normalize_label(&publ.title));
                for co in &publ.coauthor_names {
                    rec.coauthor_names.push(co.clone());
                }
            }
        }
        rec.countries.sort();
        rec.countries.dedup();
        rec
    }
}

/// Why a candidate was flagged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoiReason {
    /// The candidate co-authored with this manuscript author.
    CoAuthorship {
        /// The conflicting author's name (as typed).
        author: String,
    },
    /// The candidate shares a university-level affiliation with this
    /// author.
    SharedInstitution {
        /// The conflicting author's name.
        author: String,
        /// The institution both are associated with.
        institution: String,
    },
    /// The candidate shares a country with this author (only when the
    /// editor configured country-level matching).
    SharedCountry {
        /// The conflicting author's name.
        author: String,
        /// The shared country.
        country: String,
    },
}

/// Outcome of the COI check for one candidate.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoiVerdict {
    /// All detected conflicts; empty means no conflict.
    pub reasons: Vec<CoiReason>,
}

impl CoiVerdict {
    /// True when any conflict was found.
    pub fn conflicted(&self) -> bool {
        !self.reasons.is_empty()
    }
}

/// Checks one candidate reviewer against all manuscript authors.
pub fn check_coi(
    candidate: &MergedCandidate,
    authors: &[AuthorRecord],
    config: &CoiConfig,
) -> CoiVerdict {
    let mut reasons = Vec::new();
    let cand_name = parse_name(&candidate.display_name);
    // Interned + memoized: the same candidate profiles recur across
    // recommendations, so warm COI checks clone Arcs instead of
    // re-normalizing every publication title.
    let cand_titles: Vec<Arc<str>> = candidate
        .publications
        .iter()
        .map(|p| intern::normalized(&p.title))
        .collect();
    let cand_coauthors: Vec<_> = candidate
        .publications
        .iter()
        .flat_map(|p| p.coauthor_names.iter())
        .filter_map(|n| parse_name(n))
        .collect();
    let mut cand_institutions: Vec<String> = Vec::new();
    if let Some(a) = &candidate.affiliation {
        cand_institutions.push(a.clone());
    }
    for h in &candidate.affiliation_history {
        cand_institutions.push(h.institution.clone());
    }
    let mut cand_countries: Vec<Arc<str>> = Vec::new();
    if let Some(c) = &candidate.country {
        cand_countries.push(intern::normalized(c));
    }
    for h in &candidate.affiliation_history {
        cand_countries.push(intern::normalized(&h.country));
    }
    cand_countries.sort();
    cand_countries.dedup();

    for author in authors {
        // The candidate *is* the author: trivially conflicted, reported
        // as co-authorship (an author may appear in search results).
        let author_name = parse_name(&author.name);
        let same_person = match (&cand_name, &author_name) {
            (Some(a), Some(b)) => a.compatible(b),
            _ => false,
        };

        if config.coauthorship {
            // Signal 1: the author appears among the candidate's listed
            // co-authors (or vice versa).
            let name_link = same_person
                || author_name
                    .as_ref()
                    .is_some_and(|an| cand_coauthors.iter().any(|cn| cn.compatible(an)))
                || cand_name.as_ref().is_some_and(|cn| {
                    author
                        .coauthor_names
                        .iter()
                        .filter_map(|n| parse_name(n))
                        .any(|an| an.compatible(cn))
                });
            // Signal 2: they share a publication title — distinct sources
            // may list the same paper under each of them.
            let title_link = !author.publication_titles.is_empty()
                && cand_titles.iter().any(|t| {
                    author
                        .publication_titles
                        .iter()
                        .any(|at| at.as_str() == t.as_ref())
                });
            if name_link || title_link {
                reasons.push(CoiReason::CoAuthorship {
                    author: author.name.clone(),
                });
                continue; // one reason per author is enough
            }
        }
        match config.affiliation_level {
            AffiliationMatchLevel::Off => {}
            AffiliationMatchLevel::University => {
                if let Some(inst) = shared_institution(
                    &cand_institutions,
                    &author.institutions,
                    config.institution_similarity,
                ) {
                    reasons.push(CoiReason::SharedInstitution {
                        author: author.name.clone(),
                        institution: inst,
                    });
                }
            }
            AffiliationMatchLevel::Country => {
                if let Some(inst) = shared_institution(
                    &cand_institutions,
                    &author.institutions,
                    config.institution_similarity,
                ) {
                    reasons.push(CoiReason::SharedInstitution {
                        author: author.name.clone(),
                        institution: inst,
                    });
                } else if let Some(country) = author
                    .countries
                    .iter()
                    .find(|c| cand_countries.iter().any(|cc| cc.as_ref() == c.as_str()))
                {
                    reasons.push(CoiReason::SharedCountry {
                        author: author.name.clone(),
                        country: country.clone(),
                    });
                }
            }
        }
    }
    CoiVerdict { reasons }
}

fn shared_institution(a: &[String], b: &[String], min_similarity: f64) -> Option<String> {
    for x in a {
        for y in b {
            if token_jaccard(x, y) >= min_similarity {
                return Some(x.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_scholarly::{SourceMetrics, SourcePublication};

    fn candidate(name: &str, aff: Option<&str>, country: Option<&str>) -> MergedCandidate {
        MergedCandidate {
            display_name: name.into(),
            affiliation: aff.map(String::from),
            country: country.map(String::from),
            affiliation_history: vec![],
            interests: vec![],
            publications: vec![],
            metrics: SourceMetrics::default(),
            reviews: vec![],
            sources: vec![],
            keys: vec![],
            truths: vec![],
        }
    }

    fn pub_with(title: &str, coauthors: &[&str]) -> Arc<SourcePublication> {
        Arc::new(SourcePublication {
            title: title.into(),
            year: 2016,
            venue_name: "J".into(),
            coauthor_names: coauthors.iter().map(|s| s.to_string()).collect(),
            keywords: vec![],
            citations: None,
        })
    }

    #[test]
    fn candidate_who_is_an_author_is_conflicted() {
        let cand = candidate("Lei Zhou", Some("U Tartu"), Some("Estonia"));
        let authors = vec![AuthorRecord::from_parts("Lei Zhou", None, None, None)];
        let v = check_coi(&cand, &authors, &CoiConfig::default());
        assert!(v.conflicted());
        assert!(matches!(v.reasons[0], CoiReason::CoAuthorship { .. }));
    }

    #[test]
    fn coauthorship_via_candidate_publication_list() {
        let mut cand = candidate("Ada Lovelace", None, None);
        cand.publications
            .push(pub_with("On engines", &["Charles Babbage"]));
        let authors = vec![AuthorRecord::from_parts(
            "Charles Babbage",
            None,
            None,
            None,
        )];
        let v = check_coi(&cand, &authors, &CoiConfig::default());
        assert!(v.conflicted());
    }

    #[test]
    fn coauthorship_via_shared_title() {
        let mut cand = candidate("Ada Lovelace", None, None);
        cand.publications
            .push(pub_with("Notes on the Analytical Engine", &[]));
        let mut author = AuthorRecord::from_parts("Luigi Menabrea", None, None, None);
        author
            .publication_titles
            .push(normalize_label("Notes on the Analytical Engine"));
        let v = check_coi(&cand, &[author], &CoiConfig::default());
        assert!(v.conflicted());
    }

    #[test]
    fn shared_university_detected_with_fuzzy_names() {
        let cand = candidate("A B", Some("University of Tartu"), Some("Estonia"));
        let authors = vec![AuthorRecord::from_parts(
            "C D",
            Some("university of tartu"), // case/format noise
            None,
            None,
        )];
        let v = check_coi(&cand, &authors, &CoiConfig::default());
        assert!(v.conflicted());
        assert!(matches!(v.reasons[0], CoiReason::SharedInstitution { .. }));
    }

    #[test]
    fn different_universities_pass_at_university_level() {
        let cand = candidate("A B", Some("University of Tartu"), Some("Estonia"));
        let authors = vec![AuthorRecord::from_parts(
            "C D",
            Some("University of Lisbon"),
            Some("Portugal"),
            None,
        )];
        let v = check_coi(&cand, &authors, &CoiConfig::default());
        assert!(!v.conflicted());
    }

    #[test]
    fn country_level_catches_same_country_different_university() {
        let cand = candidate("A B", Some("University of Tartu"), Some("Estonia"));
        let authors = vec![AuthorRecord::from_parts(
            "C D",
            Some("Tallinn University of Technology"),
            Some("Estonia"),
            None,
        )];
        let strict = CoiConfig {
            affiliation_level: AffiliationMatchLevel::Country,
            ..Default::default()
        };
        let v = check_coi(&cand, &authors, &strict);
        assert!(v.conflicted());
        assert!(matches!(v.reasons[0], CoiReason::SharedCountry { .. }));
        // University level does not flag it.
        let v2 = check_coi(&cand, &authors, &CoiConfig::default());
        assert!(!v2.conflicted());
    }

    #[test]
    fn off_level_ignores_affiliations() {
        let cand = candidate("A B", Some("University of Tartu"), Some("Estonia"));
        let authors = vec![AuthorRecord::from_parts(
            "C D",
            Some("University of Tartu"),
            Some("Estonia"),
            None,
        )];
        let off = CoiConfig {
            affiliation_level: AffiliationMatchLevel::Off,
            ..Default::default()
        };
        assert!(!check_coi(&cand, &authors, &off).conflicted());
    }

    #[test]
    fn coauthorship_toggle_respected() {
        let cand = candidate("Lei Zhou", None, None);
        let authors = vec![AuthorRecord::from_parts("Lei Zhou", None, None, None)];
        let cfg = CoiConfig {
            coauthorship: false,
            affiliation_level: AffiliationMatchLevel::Off,
            ..Default::default()
        };
        assert!(!check_coi(&cand, &authors, &cfg).conflicted());
    }

    #[test]
    fn one_reason_per_author_for_coauthorship() {
        // An author who both co-authored and shares the institution yields
        // a single CoAuthorship reason (the `continue` path).
        let mut cand = candidate("Ada Lovelace", Some("U X"), None);
        cand.publications.push(pub_with("P", &["Grace Hopper"]));
        let authors = vec![AuthorRecord::from_parts(
            "Grace Hopper",
            Some("U X"),
            None,
            None,
        )];
        let v = check_coi(&cand, &authors, &CoiConfig::default());
        assert_eq!(v.reasons.len(), 1);
    }

    #[test]
    fn orcid_history_catches_past_colleagues() {
        // Candidate moved away years ago, so the *current* affiliations
        // differ — only the ORCID-style history exposes the old overlap.
        let mut cand = candidate("Past Colleague", Some("University of Oslo"), Some("Norway"));
        cand.affiliation_history
            .push(minaret_scholarly::AffiliationRecord {
                institution: "University of Tartu".into(),
                country: "Estonia".into(),
                from_year: 2005,
                to_year: 2010,
            });
        let mut author = AuthorRecord::from_parts(
            "Author Y",
            Some("University of Tartu"),
            Some("Estonia"),
            None,
        );
        author.institutions.push("University of Tartu".into());
        let v = check_coi(&cand, std::slice::from_ref(&author), &CoiConfig::default());
        assert!(v.conflicted(), "history-based overlap missed");
        assert!(matches!(v.reasons[0], CoiReason::SharedInstitution { .. }));
        // Without the history entry the same candidate is clean.
        let clean = candidate("Past Colleague", Some("University of Oslo"), Some("Norway"));
        assert!(
            !check_coi(&clean, std::slice::from_ref(&author), &CoiConfig::default()).conflicted()
        );
    }

    #[test]
    fn multiple_authors_accumulate_reasons() {
        let cand = candidate("A B", Some("U Shared"), None);
        let authors = vec![
            AuthorRecord::from_parts("C D", Some("U Shared"), None, None),
            AuthorRecord::from_parts("E F", Some("U Shared"), None, None),
        ];
        let v = check_coi(&cand, &authors, &CoiConfig::default());
        assert_eq!(v.reasons.len(), 2);
    }
}
