//! Framework error type.

use std::fmt;

/// Errors surfaced by the recommendation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MinaretError {
    /// The manuscript details failed validation.
    InvalidManuscript(String),
    /// No keyword (original or expanded) resolved to any topic and no
    /// candidates could be retrieved.
    NoCandidates,
    /// Every scholarly source failed during extraction.
    AllSourcesFailed(Vec<String>),
    /// Too few sources answered candidate retrieval to trust a result:
    /// fewer than the editor's `min_sources` floor responded (outages,
    /// timeouts, open circuit breakers). The degraded sources are named.
    SourcesUnavailable {
        /// How many sources answered successfully.
        responded: usize,
        /// The editor's `min_sources` floor.
        required: usize,
        /// Names of the sources that failed or were short-circuited.
        degraded: Vec<String>,
    },
}

impl fmt::Display for MinaretError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinaretError::InvalidManuscript(msg) => {
                write!(f, "invalid manuscript details: {msg}")
            }
            MinaretError::NoCandidates => {
                write!(
                    f,
                    "no candidate reviewers could be retrieved for the keywords"
                )
            }
            MinaretError::AllSourcesFailed(errs) => {
                write!(f, "all scholarly sources failed: {}", errs.join("; "))
            }
            MinaretError::SourcesUnavailable {
                responded,
                required,
                degraded,
            } => {
                write!(
                    f,
                    "only {responded} of the required {required} sources answered"
                )?;
                if !degraded.is_empty() {
                    write!(f, " (degraded: {})", degraded.join(", "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for MinaretError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MinaretError::InvalidManuscript("x".into())
            .to_string()
            .contains("x"));
        assert!(MinaretError::NoCandidates.to_string().contains("candidate"));
        assert!(MinaretError::AllSourcesFailed(vec!["a".into(), "b".into()])
            .to_string()
            .contains("a; b"));
        let e = MinaretError::SourcesUnavailable {
            responded: 1,
            required: 2,
            degraded: vec!["Google Scholar".into(), "Publons".into()],
        };
        let text = e.to_string();
        assert!(text.contains("1 of the required 2"));
        assert!(text.contains("Google Scholar, Publons"));
    }
}
