//! Framework error type.

use std::fmt;

/// Errors surfaced by the recommendation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MinaretError {
    /// The manuscript details failed validation.
    InvalidManuscript(String),
    /// No keyword (original or expanded) resolved to any topic and no
    /// candidates could be retrieved.
    NoCandidates,
    /// Every scholarly source failed during extraction.
    AllSourcesFailed(Vec<String>),
}

impl fmt::Display for MinaretError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinaretError::InvalidManuscript(msg) => {
                write!(f, "invalid manuscript details: {msg}")
            }
            MinaretError::NoCandidates => {
                write!(
                    f,
                    "no candidate reviewers could be retrieved for the keywords"
                )
            }
            MinaretError::AllSourcesFailed(errs) => {
                write!(f, "all scholarly sources failed: {}", errs.join("; "))
            }
        }
    }
}

impl std::error::Error for MinaretError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MinaretError::InvalidManuscript("x".into())
            .to_string()
            .contains("x"));
        assert!(MinaretError::NoCandidates.to_string().contains("candidate"));
        assert!(MinaretError::AllSourcesFailed(vec!["a".into(), "b".into()])
            .to_string()
            .contains("a; b"));
    }
}
