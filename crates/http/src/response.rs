//! HTTP response construction and writing.

use std::io::Write;
use std::net::TcpStream;

use minaret_json::Value;

/// An HTTP response about to be written.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers (Content-Length and Connection are added at write time).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &Value) -> Response {
        Response {
            status,
            headers: vec![(
                "Content-Type".into(),
                "application/json; charset=utf-8".into(),
            )],
            body: value.to_string().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// The standard JSON error envelope `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &Value::object().set("error", message))
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Reason phrase for the status codes this server emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            _ => "Unknown",
        }
    }

    /// Serializes the response head + body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason());
        for (k, v) in &self.headers {
            out.push_str(k);
            out.push_str(": ");
            out.push_str(v);
            out.push_str("\r\n");
        }
        out.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        out.push_str("Connection: close\r\n\r\n");
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }

    /// Writes the response to a stream; errors are swallowed (the client
    /// hung up — nothing useful to do).
    pub fn write_to(&self, stream: &mut TcpStream) {
        let _ = stream.write_all(&self.to_bytes());
        let _ = stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_response_has_content_type_and_length() {
        let r = Response::json(200, &Value::object().set("ok", true));
        let bytes = r.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json"));
        assert!(text.contains("Content-Length: 11"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn error_envelope_is_json() {
        let r = Response::error(404, "no such route");
        assert_eq!(r.status, 404);
        assert_eq!(r.reason(), "Not Found");
        assert!(String::from_utf8(r.body).unwrap().contains("no such route"));
    }

    #[test]
    fn custom_headers_are_emitted() {
        let r = Response::text(200, "hi").with_header("X-Custom", "1");
        let text = String::from_utf8(r.to_bytes()).unwrap();
        assert!(text.contains("X-Custom: 1\r\n"));
        assert!(text.contains("Connection: close"));
    }

    #[test]
    fn unknown_status_reason() {
        let r = Response::text(299, "");
        assert_eq!(r.reason(), "Unknown");
    }
}
