//! HTTP response construction and writing.

use std::io::Write;
use std::net::TcpStream;

use minaret_json::Value;

/// An HTTP response about to be written.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers (Content-Length and Connection are added at write time).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &Value) -> Response {
        Response::json_bytes(status, value.to_string().into_bytes())
    }

    /// A JSON response from pre-serialized bytes. This is the cache
    /// hit path: serving stored bytes directly guarantees the response
    /// is byte-identical to the one that populated the cache.
    pub fn json_bytes(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            headers: vec![(
                "Content-Type".into(),
                "application/json; charset=utf-8".into(),
            )],
            body,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// The standard JSON error envelope `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &Value::object().set("error", message))
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Reason phrase for the status codes this server emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response head + body with the given connection
    /// disposition.
    fn serialize(&self, close: bool) -> Vec<u8> {
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason());
        for (k, v) in &self.headers {
            out.push_str(k);
            out.push_str(": ");
            out.push_str(v);
            out.push_str("\r\n");
        }
        out.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        out.push_str(if close {
            "Connection: close\r\n\r\n"
        } else {
            "Connection: keep-alive\r\n\r\n"
        });
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }

    /// Serializes the response head + body (close-per-request form).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.serialize(true)
    }

    /// Serializes the response head + body with an explicit connection
    /// disposition. The reactor uses this to build its non-blocking
    /// write buffer instead of writing to the socket directly.
    pub fn to_bytes_with(&self, close: bool) -> Vec<u8> {
        self.serialize(close)
    }

    /// Writes the response to a stream; errors are swallowed (the client
    /// hung up — nothing useful to do).
    pub fn write_to(&self, stream: &mut TcpStream) {
        self.write_to_with(stream, true);
    }

    /// Writes the response, announcing whether the server will keep the
    /// connection open afterwards. Returns false if the write failed
    /// (client gone or write deadline expired).
    pub fn write_to_with(&self, stream: &mut TcpStream, close: bool) -> bool {
        stream.write_all(&self.serialize(close)).is_ok() && stream.flush().is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_response_has_content_type_and_length() {
        let r = Response::json(200, &Value::object().set("ok", true));
        let bytes = r.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json"));
        assert!(text.contains("Content-Length: 11"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn error_envelope_is_json() {
        let r = Response::error(404, "no such route");
        assert_eq!(r.status, 404);
        assert_eq!(r.reason(), "Not Found");
        assert!(String::from_utf8(r.body).unwrap().contains("no such route"));
    }

    #[test]
    fn custom_headers_are_emitted() {
        let r = Response::text(200, "hi").with_header("X-Custom", "1");
        let text = String::from_utf8(r.to_bytes()).unwrap();
        assert!(text.contains("X-Custom: 1\r\n"));
        assert!(text.contains("Connection: close"));
    }

    #[test]
    fn keep_alive_serialization_differs_only_in_connection_header() {
        let r = Response::text(200, "hi");
        let close = String::from_utf8(r.serialize(true)).unwrap();
        let keep = String::from_utf8(r.serialize(false)).unwrap();
        assert!(close.contains("Connection: close\r\n"));
        assert!(keep.contains("Connection: keep-alive\r\n"));
        assert_eq!(
            close.replace("Connection: close", "Connection: keep-alive"),
            keep
        );
    }

    #[test]
    fn json_bytes_serves_stored_payload_verbatim() {
        let stored = br#"{"cached":true}"#.to_vec();
        let r = Response::json_bytes(200, stored.clone());
        assert_eq!(r.body, stored);
        assert_eq!(
            r.to_bytes(),
            Response::json(200, &minaret_json::parse(r#"{"cached":true}"#).unwrap()).to_bytes()
        );
    }

    #[test]
    fn overload_status_reasons() {
        assert_eq!(Response::text(408, "").reason(), "Request Timeout");
        assert_eq!(Response::text(429, "").reason(), "Too Many Requests");
        assert_eq!(Response::text(503, "").reason(), "Service Unavailable");
        assert_eq!(Response::text(299, "").reason(), "Unknown");
    }
}
