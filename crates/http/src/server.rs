//! The event-driven serving front end.
//!
//! A fixed set of reactor threads (see [`crate::reactor`]) multiplexes
//! every connection over epoll: reactor 0 owns the listener and admits
//! (or sheds) connections, handing them round-robin across reactors
//! when `io_threads > 1`. Parsed requests flow through a
//! [`BoundedQueue`] to a fixed pool of worker threads that run the
//! router; responses flow back to the owning reactor over its mailbox.
//! Total thread count is `io_threads + workers`, independent of how
//! many connections are open — ten thousand idle keep-alive sockets
//! cost table entries, not stacks.
//!
//! Overload policy is unchanged from the threaded design: when the
//! dispatch backlog is at capacity the connection is answered `503` +
//! `Retry-After` immediately instead of waiting, so overload degrades
//! into fast, explicit refusals rather than unbounded latency.
//! Per-client concurrent-connection bursts can additionally be capped
//! with `429`. Shutdown is a graceful drain: stop accepting, serve
//! (with `Connection: close`) everything already admitted, join every
//! thread.

use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr, TcpListener};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use minaret_telemetry::Telemetry;

use crate::queue::BoundedQueue;
use crate::reactor::{Job, Reactor, ReactorMsg, ReactorShared};
use crate::router::Router;

/// Keep-alive limits for a single connection.
#[derive(Debug, Clone)]
pub struct KeepAliveConfig {
    /// Maximum requests served on one connection before the server
    /// forces `Connection: close`. `1` disables keep-alive.
    pub max_requests: usize,
    /// How long a connection may sit idle between requests before the
    /// server closes it. `None` waits forever.
    pub idle_timeout: Option<Duration>,
}

impl Default for KeepAliveConfig {
    fn default() -> Self {
        KeepAliveConfig {
            max_requests: 100,
            idle_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Serving-layer configuration for [`Server::bind_with`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads running request handlers.
    pub workers: usize,
    /// Reactor (event-loop) threads multiplexing sockets. Serving
    /// threads total `io_threads + workers` regardless of how many
    /// connections are open.
    pub io_threads: usize,
    /// Dispatch-backlog capacity; when this many requests are waiting
    /// for a worker, new connections are shed with `503` +
    /// `Retry-After`.
    pub queue_depth: usize,
    /// Budget for reading, handling, and writing one request. Enforced
    /// by the reactor's timer wheel and passed to handlers via
    /// [`Request::deadline`](crate::Request::deadline). `None` disables
    /// the budget.
    pub request_timeout: Option<Duration>,
    /// Keep-alive limits.
    pub keep_alive: KeepAliveConfig,
    /// Value of the `Retry-After` header on shed responses, in seconds.
    pub retry_after_secs: u64,
    /// Maximum concurrent connections admitted per client IP before
    /// further ones are shed with `429`. `0` disables the cap.
    pub per_client_burst: usize,
    /// Telemetry sink for queue/shed/latency metrics.
    pub telemetry: Telemetry,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            io_threads: 1,
            queue_depth: 128,
            request_timeout: Some(Duration::from_secs(10)),
            keep_alive: KeepAliveConfig::default(),
            retry_after_secs: 1,
            per_client_burst: 0,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// A running HTTP server.
///
/// Reactor threads own the sockets; worker threads own the handlers;
/// a bounded queue in between is where overload is measured and shed.
/// Shutdown drains every admitted connection before joining all
/// threads.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<Job>>,
    shareds: Vec<Arc<ReactorShared>>,
    reactors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Server({})", self.addr)
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `router` on `workers` threads with the legacy close-per-request
    /// behavior: no keep-alive, no timeouts, telemetry disabled.
    pub fn bind(addr: &str, router: Router, workers: usize) -> std::io::Result<Server> {
        Server::bind_with(
            addr,
            router,
            ServerConfig {
                workers,
                request_timeout: None,
                keep_alive: KeepAliveConfig {
                    max_requests: 1,
                    idle_timeout: None,
                },
                ..ServerConfig::default()
            },
        )
    }

    /// Binds `addr` and starts serving `router` under `config`.
    pub fn bind_with(addr: &str, router: Router, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let router = Arc::new(router);
        let config = Arc::new(config);
        let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(config.queue_depth));
        let per_ip: Arc<Mutex<HashMap<IpAddr, usize>>> = Arc::new(Mutex::new(HashMap::new()));

        // One mailbox + wake pipe per reactor, built up front so
        // reactor 0 can hand accepted connections to its peers.
        let io_threads = config.io_threads.max(1);
        let mut shareds = Vec::with_capacity(io_threads);
        let mut wake_rxs = Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            let (wake_tx, wake_rx) = UnixStream::pair()?;
            wake_tx.set_nonblocking(true)?;
            shareds.push(Arc::new(ReactorShared::new(wake_tx)));
            wake_rxs.push(wake_rx);
        }

        // Build every reactor before spawning so setup errors (epoll,
        // fd limits) surface to the caller instead of a dead thread.
        let mut reactors = Vec::with_capacity(io_threads);
        let mut listener = Some(listener);
        for (i, wake_rx) in wake_rxs.into_iter().enumerate() {
            let peers = if i == 0 { shareds.clone() } else { Vec::new() };
            reactors.push(Reactor::new(
                if i == 0 { listener.take() } else { None },
                shareds[i].clone(),
                wake_rx,
                peers,
                config.clone(),
                queue.clone(),
                per_ip.clone(),
                stop.clone(),
            )?);
        }
        let reactor_handles = reactors
            .into_iter()
            .map(|mut r| std::thread::spawn(move || r.run()))
            .collect();

        let mut worker_handles = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            let queue = queue.clone();
            let router = router.clone();
            let config = config.clone();
            worker_handles.push(std::thread::spawn(move || {
                while let Some(job) = queue.pop() {
                    let t = &config.telemetry;
                    t.gauge("minaret_http_queue_depth", &[])
                        .set(queue.len() as i64);
                    t.histogram("minaret_http_time_in_queue_micros", &[])
                        .observe_duration(job.enqueued.elapsed());
                    let response = router.dispatch(&job.request);
                    let reactor = job.reactor.clone();
                    reactor.send(ReactorMsg::Complete {
                        token: job.token,
                        epoch: job.epoch,
                        response,
                        close: job.close,
                    });
                }
            }));
        }

        Ok(Server {
            addr: local,
            stop,
            queue,
            shareds,
            reactors: reactor_handles,
            workers: worker_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests currently admitted but not yet picked up by a worker.
    /// Test harnesses use this to synchronize on queue state instead of
    /// sleeping.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Graceful drain: stop accepting, serve everything already
    /// admitted (forced `Connection: close`), and join all threads.
    /// Reactor or worker panics propagate to the caller.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Kick every reactor out of `epoll_wait` so it observes the
        // stop flag and starts draining. Workers stay alive until the
        // reactors finish: in-flight requests must still complete.
        for shared in &self.shareds {
            shared.wake();
        }
        for r in self.reactors.drain(..) {
            r.join().expect("reactor thread panicked");
        }
        // Every connection is finished; close the queue so workers see
        // the end of work and exit.
        self.queue.close();
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::Response;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn test_router() -> Router {
        let mut r = Router::new();
        r.get("/ping", |_, _| Response::text(200, "pong"));
        r.post("/echo", |req, _| match req.json_body() {
            Ok(v) => Response::json(200, &v),
            Err(e) => Response::error(400, &e.to_string()),
        });
        r
    }

    fn raw_request(addr: SocketAddr, payload: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(payload.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_get_and_post() {
        let server = Server::bind("127.0.0.1:0", test_router(), 2).unwrap();
        let addr = server.local_addr();
        let resp = raw_request(addr, "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK"));
        assert!(resp.ends_with("pong"));

        let body = r#"{"hello":"world"}"#;
        let req = format!(
            "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let resp = raw_request(addr, &req);
        assert!(resp.contains(r#"{"hello":"world"}"#));
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_family() {
        let server = Server::bind("127.0.0.1:0", test_router(), 1).unwrap();
        let addr = server.local_addr();
        let resp = raw_request(addr, "PATCH /ping HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 501"), "{resp}");
        let resp = raw_request(addr, "GET /ping BANANA/9\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        let resp = raw_request(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = Server::bind("127.0.0.1:0", test_router(), 4).unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(move || raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n")))
            .collect();
        for h in handles {
            let resp = h.join().unwrap();
            assert!(resp.ends_with("pong"));
        }
        server.shutdown();
    }

    #[test]
    fn oversized_bodies_get_413() {
        let server = Server::bind("127.0.0.1:0", test_router(), 1).unwrap();
        let addr = server.local_addr();
        // Declare a 2 MiB body (over the 1 MiB cap) without sending it.
        let resp = raw_request(
            addr,
            "POST /echo HTTP/1.1\r\nContent-Length: 2097152\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = Server::bind("127.0.0.1:0", test_router(), 2).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // Subsequent connections are refused or reset — either way no
        // response arrives.
        let outcome = TcpStream::connect(addr).and_then(|mut s| {
            s.write_all(b"GET /ping HTTP/1.1\r\n\r\n")?;
            let mut out = String::new();
            s.read_to_string(&mut out)?;
            Ok(out)
        });
        match outcome {
            Err(_) => {}
            Ok(out) => assert!(out.is_empty(), "server answered after shutdown: {out}"),
        }
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = Server::bind_with(
            "127.0.0.1:0",
            test_router(),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        for _ in 0..3 {
            s.write_all(b"GET /ping HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut resp = String::new();
            let mut buf = [0u8; 1024];
            while !resp.ends_with("pong") {
                let n = s.read(&mut buf).unwrap();
                assert!(n > 0, "connection closed mid-response: {resp}");
                resp.push_str(&String::from_utf8_lossy(&buf[..n]));
            }
            assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
            assert!(resp.contains("Connection: keep-alive"), "{resp}");
        }
        drop(s);
        server.shutdown();
    }

    #[test]
    fn queue_depth_starts_empty() {
        let server = Server::bind("127.0.0.1:0", test_router(), 1).unwrap();
        assert_eq!(server.queue_depth(), 0);
        server.shutdown();
    }

    #[test]
    fn multiple_io_threads_serve_across_reactors() {
        let server = Server::bind_with(
            "127.0.0.1:0",
            test_router(),
            ServerConfig {
                workers: 2,
                io_threads: 3,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        // More connections than reactors: round-robin must land some on
        // every reactor, and all must serve correctly.
        let handles: Vec<_> = (0..9)
            .map(|_| {
                std::thread::spawn(move || {
                    raw_request(addr, "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n")
                })
            })
            .collect();
        for h in handles {
            let resp = h.join().unwrap();
            assert!(resp.ends_with("pong"), "{resp}");
        }
        server.shutdown();
    }
}
