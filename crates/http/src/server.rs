//! The threaded accept loop.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel;

use crate::request::{HttpError, Request};
use crate::response::Response;
use crate::router::Router;

/// A running HTTP server.
///
/// One acceptor thread feeds a fixed pool of worker threads over a
/// channel; shutdown is cooperative (flag + wake-up connection) and
/// joins every thread.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Server({})", self.addr)
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `router` on `workers` threads.
    pub fn bind(addr: &str, router: Router, workers: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let router = Arc::new(router);
        let (tx, rx) = channel::unbounded::<TcpStream>();

        let mut worker_handles = Vec::with_capacity(workers.max(1));
        for _ in 0..workers.max(1) {
            let rx = rx.clone();
            let router = router.clone();
            worker_handles.push(std::thread::spawn(move || {
                while let Ok(mut stream) = rx.recv() {
                    handle_connection(&mut stream, &router);
                }
            }));
        }

        let stop_flag = stop.clone();
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // Dropping tx closes the channel; workers drain and exit.
        });

        Ok(Server {
            addr: local,
            stop,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains workers, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor's blocking accept with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn handle_connection(stream: &mut TcpStream, router: &Router) {
    let response = match Request::read_from(stream) {
        Ok(request) => router.dispatch(&request),
        Err(HttpError::TooLarge) => Response::error(413, "request too large"),
        Err(HttpError::UnsupportedMethod(m)) => {
            Response::error(501, &format!("method {m} not implemented"))
        }
        Err(HttpError::BadRequest(m)) => Response::error(400, &m),
        Err(HttpError::Io(_)) => return, // client went away mid-request
    };
    response.write_to(stream);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn test_router() -> Router {
        let mut r = Router::new();
        r.get("/ping", |_, _| Response::text(200, "pong"));
        r.post("/echo", |req, _| match req.json_body() {
            Ok(v) => Response::json(200, &v),
            Err(e) => Response::error(400, &e.to_string()),
        });
        r
    }

    fn raw_request(addr: SocketAddr, payload: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(payload.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_get_and_post() {
        let server = Server::bind("127.0.0.1:0", test_router(), 2).unwrap();
        let addr = server.local_addr();
        let resp = raw_request(addr, "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK"));
        assert!(resp.ends_with("pong"));

        let body = r#"{"hello":"world"}"#;
        let req = format!(
            "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let resp = raw_request(addr, &req);
        assert!(resp.contains(r#"{"hello":"world"}"#));
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_family() {
        let server = Server::bind("127.0.0.1:0", test_router(), 1).unwrap();
        let addr = server.local_addr();
        let resp = raw_request(addr, "PATCH /ping HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 501"), "{resp}");
        let resp = raw_request(addr, "GET /ping BANANA/9\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        let resp = raw_request(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = Server::bind("127.0.0.1:0", test_router(), 4).unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(move || raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n")))
            .collect();
        for h in handles {
            let resp = h.join().unwrap();
            assert!(resp.ends_with("pong"));
        }
        server.shutdown();
    }

    #[test]
    fn oversized_bodies_get_413() {
        let server = Server::bind("127.0.0.1:0", test_router(), 1).unwrap();
        let addr = server.local_addr();
        // Declare a 2 MiB body (over the 1 MiB cap) without sending it.
        let resp = raw_request(
            addr,
            "POST /echo HTTP/1.1\r\nContent-Length: 2097152\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = Server::bind("127.0.0.1:0", test_router(), 2).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // Subsequent connections are refused or reset — either way no
        // response arrives.
        let outcome = TcpStream::connect(addr).and_then(|mut s| {
            s.write_all(b"GET /ping HTTP/1.1\r\n\r\n")?;
            let mut out = String::new();
            s.read_to_string(&mut out)?;
            Ok(out)
        });
        match outcome {
            Err(_) => {}
            Ok(out) => assert!(out.is_empty(), "server answered after shutdown: {out}"),
        }
    }
}
