//! The admission-controlled accept loop.
//!
//! One acceptor thread admits connections into a [`BoundedQueue`]; a
//! fixed pool of worker threads serves them with HTTP/1.1 keep-alive.
//! When the queue is full the acceptor **sheds**: the connection is
//! answered `503` + `Retry-After` immediately instead of waiting, so
//! overload degrades into fast, explicit refusals rather than unbounded
//! latency. Per-client concurrent-connection bursts can additionally be
//! capped with `429`. Shutdown is a graceful drain: stop accepting,
//! serve (with `Connection: close`) everything already admitted, join
//! every thread.

use std::collections::HashMap;
use std::io::BufRead;
use std::io::BufReader;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use minaret_telemetry::Telemetry;

use crate::queue::{BoundedQueue, PushError};
use crate::request::{HttpError, Request};
use crate::response::Response;
use crate::router::Router;

/// Keep-alive limits for a single connection.
#[derive(Debug, Clone)]
pub struct KeepAliveConfig {
    /// Maximum requests served on one connection before the server
    /// forces `Connection: close`. `1` disables keep-alive.
    pub max_requests: usize,
    /// How long a connection may sit idle between requests before the
    /// server closes it. `None` waits forever.
    pub idle_timeout: Option<Duration>,
}

impl Default for KeepAliveConfig {
    fn default() -> Self {
        KeepAliveConfig {
            max_requests: 100,
            idle_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Serving-layer configuration for [`Server::bind_with`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed with
    /// `503` + `Retry-After`.
    pub queue_depth: usize,
    /// Budget for reading, handling, and writing one request. Applied
    /// as socket read/write timeouts and passed to handlers via
    /// [`Request::deadline`]. `None` disables the budget.
    pub request_timeout: Option<Duration>,
    /// Keep-alive limits.
    pub keep_alive: KeepAliveConfig,
    /// Value of the `Retry-After` header on shed responses, in seconds.
    pub retry_after_secs: u64,
    /// Maximum concurrent connections admitted per client IP before
    /// further ones are shed with `429`. `0` disables the cap.
    pub per_client_burst: usize,
    /// Telemetry sink for queue/shed/latency metrics.
    pub telemetry: Telemetry,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            queue_depth: 128,
            request_timeout: Some(Duration::from_secs(10)),
            keep_alive: KeepAliveConfig::default(),
            retry_after_secs: 1,
            per_client_burst: 0,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// A connection admitted to the queue, stamped for time-in-queue.
struct QueuedConn {
    stream: TcpStream,
    ip: Option<IpAddr>,
    enqueued: Instant,
}

/// A running HTTP server.
///
/// One acceptor thread feeds a bounded queue drained by a fixed pool of
/// worker threads; overload is shed at admission, and shutdown drains
/// the queue before joining every thread.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<QueuedConn>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Server({})", self.addr)
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `router` on `workers` threads with the legacy close-per-request
    /// behavior: no keep-alive, no timeouts, telemetry disabled.
    pub fn bind(addr: &str, router: Router, workers: usize) -> std::io::Result<Server> {
        Server::bind_with(
            addr,
            router,
            ServerConfig {
                workers,
                request_timeout: None,
                keep_alive: KeepAliveConfig {
                    max_requests: 1,
                    idle_timeout: None,
                },
                ..ServerConfig::default()
            },
        )
    }

    /// Binds `addr` and starts serving `router` under `config`.
    pub fn bind_with(addr: &str, router: Router, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let router = Arc::new(router);
        let config = Arc::new(config);
        let queue: Arc<BoundedQueue<QueuedConn>> = Arc::new(BoundedQueue::new(config.queue_depth));
        let per_ip: Arc<Mutex<HashMap<IpAddr, usize>>> = Arc::new(Mutex::new(HashMap::new()));

        let mut worker_handles = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            let queue = queue.clone();
            let router = router.clone();
            let config = config.clone();
            let stop = stop.clone();
            let per_ip = per_ip.clone();
            worker_handles.push(std::thread::spawn(move || {
                while let Some(conn) = queue.pop() {
                    let t = &config.telemetry;
                    t.gauge("minaret_http_queue_depth", &[])
                        .set(queue.len() as i64);
                    t.histogram("minaret_http_time_in_queue_micros", &[])
                        .observe_duration(conn.enqueued.elapsed());
                    let ip = conn.ip;
                    handle_connection(conn.stream, &router, &config, &stop);
                    release_ip(&per_ip, ip);
                }
            }));
        }

        let stop_flag = stop.clone();
        let accept_queue = queue.clone();
        let accept_config = config.clone();
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let ip = stream.peer_addr().ok().map(|a| a.ip());
                if accept_config.per_client_burst > 0 {
                    if let Some(ip) = ip {
                        let mut map = per_ip.lock().expect("per-ip lock poisoned");
                        let count = map.entry(ip).or_insert(0);
                        if *count >= accept_config.per_client_burst {
                            drop(map);
                            shed(stream, 429, "client burst limit", &accept_config);
                            continue;
                        }
                        *count += 1;
                    }
                }
                let conn = QueuedConn {
                    stream,
                    ip,
                    enqueued: Instant::now(),
                };
                match accept_queue.try_push(conn) {
                    Ok(depth) => {
                        accept_config
                            .telemetry
                            .gauge("minaret_http_queue_depth", &[])
                            .set(depth as i64);
                    }
                    Err(PushError::Full(conn)) => {
                        release_ip(&per_ip, conn.ip);
                        shed(conn.stream, 503, "queue full", &accept_config);
                    }
                    Err(PushError::Closed(conn)) => {
                        release_ip(&per_ip, conn.ip);
                        shed(conn.stream, 503, "shutting down", &accept_config);
                        break;
                    }
                }
            }
        });

        Ok(Server {
            addr: local,
            stop,
            queue,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently admitted but not yet picked up by a worker.
    /// Test harnesses use this to synchronize on queue state instead of
    /// sleeping.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Graceful drain: stop accepting, serve everything already queued
    /// (forced `Connection: close`), and join all threads. Worker or
    /// acceptor panics propagate to the caller.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor's blocking accept with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            a.join().expect("acceptor thread panicked");
        }
        // No more pushes are possible; close so workers exit once the
        // already-admitted connections drain.
        self.queue.close();
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
    }
}

/// Refuses a connection at admission with `status` + `Retry-After`.
///
/// The write and the lingering close run on a detached thread (capped at
/// ~1s by socket timeouts) so a dead or slow client never stalls the
/// acceptor. The lingering close matters for correctness, not courtesy:
/// the acceptor never read the client's request bytes, and closing a
/// socket with unread data sends RST, which can destroy the refusal
/// in flight before the client reads it. Draining to EOF first means
/// the close is a FIN and the `503`/`429` reliably arrives.
fn shed(stream: TcpStream, status: u16, why: &str, config: &ServerConfig) {
    let reason = match status {
        429 => "client_burst",
        _ if why == "shutting down" => "shutdown",
        _ => "queue_full",
    };
    config
        .telemetry
        .counter("minaret_http_shed_total", &[("reason", reason)])
        .inc();
    let response = Response::error(status, why)
        .with_header("Retry-After", &config.retry_after_secs.to_string());
    std::thread::spawn(move || {
        let mut stream = stream;
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        if !response.write_to_with(&mut stream, true) {
            return;
        }
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
        let mut sink = [0u8; 4096];
        loop {
            match std::io::Read::read(&mut stream, &mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    });
}

fn release_ip(per_ip: &Mutex<HashMap<IpAddr, usize>>, ip: Option<IpAddr>) {
    let Some(ip) = ip else { return };
    let mut map = per_ip.lock().expect("per-ip lock poisoned");
    if let Some(count) = map.get_mut(&ip) {
        *count = count.saturating_sub(1);
        if *count == 0 {
            map.remove(&ip);
        }
    }
}

/// Serves one connection: a keep-alive loop of parse → dispatch → write,
/// with an idle timeout between requests and a per-request deadline
/// (socket timeouts + [`Request::deadline`]) within each.
fn handle_connection(
    mut stream: TcpStream,
    router: &Router,
    config: &ServerConfig,
    stop: &AtomicBool,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut served: u64 = 0;
    loop {
        // Idle phase: wait for the first byte of the next request (or
        // already-buffered pipelined bytes) under the idle timeout.
        if stream
            .set_read_timeout(config.keep_alive.idle_timeout)
            .is_err()
        {
            break;
        }
        match reader.fill_buf() {
            Ok([]) => break, // clean EOF
            Ok(_) => {}
            Err(_) => break, // idle timeout or socket error: just close
        }
        // Request phase: the per-request budget covers parse, handle,
        // and write.
        let _ = stream.set_read_timeout(config.request_timeout);
        let _ = stream.set_write_timeout(config.request_timeout);
        let deadline = config.request_timeout.map(|t| Instant::now() + t);
        let (response, mut close) = match Request::read_from_buffered(&mut reader) {
            Ok(None) => break,
            Ok(Some(mut request)) => {
                request.deadline = deadline;
                let close = request.wants_close();
                (router.dispatch(&request), close)
            }
            Err(HttpError::Timeout) => (Response::error(408, "request timed out"), true),
            Err(HttpError::TooLarge) => (Response::error(413, "request too large"), true),
            Err(HttpError::UnsupportedMethod(m)) => (
                Response::error(501, &format!("method {m} not implemented")),
                true,
            ),
            Err(HttpError::BadRequest(m)) => (Response::error(400, &m), true),
            Err(HttpError::Io(_)) => break, // client went away mid-request
        };
        served += 1;
        if served >= config.keep_alive.max_requests as u64 || stop.load(Ordering::SeqCst) {
            close = true;
        }
        let written = response.write_to_with(&mut stream, close);
        if close || !written {
            break;
        }
    }
    if served > 0 {
        config
            .telemetry
            .histogram("minaret_http_requests_per_connection", &[])
            .observe(served);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn test_router() -> Router {
        let mut r = Router::new();
        r.get("/ping", |_, _| Response::text(200, "pong"));
        r.post("/echo", |req, _| match req.json_body() {
            Ok(v) => Response::json(200, &v),
            Err(e) => Response::error(400, &e.to_string()),
        });
        r
    }

    fn raw_request(addr: SocketAddr, payload: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(payload.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_get_and_post() {
        let server = Server::bind("127.0.0.1:0", test_router(), 2).unwrap();
        let addr = server.local_addr();
        let resp = raw_request(addr, "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK"));
        assert!(resp.ends_with("pong"));

        let body = r#"{"hello":"world"}"#;
        let req = format!(
            "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let resp = raw_request(addr, &req);
        assert!(resp.contains(r#"{"hello":"world"}"#));
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_family() {
        let server = Server::bind("127.0.0.1:0", test_router(), 1).unwrap();
        let addr = server.local_addr();
        let resp = raw_request(addr, "PATCH /ping HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 501"), "{resp}");
        let resp = raw_request(addr, "GET /ping BANANA/9\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        let resp = raw_request(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = Server::bind("127.0.0.1:0", test_router(), 4).unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(move || raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n")))
            .collect();
        for h in handles {
            let resp = h.join().unwrap();
            assert!(resp.ends_with("pong"));
        }
        server.shutdown();
    }

    #[test]
    fn oversized_bodies_get_413() {
        let server = Server::bind("127.0.0.1:0", test_router(), 1).unwrap();
        let addr = server.local_addr();
        // Declare a 2 MiB body (over the 1 MiB cap) without sending it.
        let resp = raw_request(
            addr,
            "POST /echo HTTP/1.1\r\nContent-Length: 2097152\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = Server::bind("127.0.0.1:0", test_router(), 2).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // Subsequent connections are refused or reset — either way no
        // response arrives.
        let outcome = TcpStream::connect(addr).and_then(|mut s| {
            s.write_all(b"GET /ping HTTP/1.1\r\n\r\n")?;
            let mut out = String::new();
            s.read_to_string(&mut out)?;
            Ok(out)
        });
        match outcome {
            Err(_) => {}
            Ok(out) => assert!(out.is_empty(), "server answered after shutdown: {out}"),
        }
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = Server::bind_with(
            "127.0.0.1:0",
            test_router(),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        for _ in 0..3 {
            s.write_all(b"GET /ping HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut resp = String::new();
            let mut buf = [0u8; 1024];
            while !resp.ends_with("pong") {
                let n = s.read(&mut buf).unwrap();
                assert!(n > 0, "connection closed mid-response: {resp}");
                resp.push_str(&String::from_utf8_lossy(&buf[..n]));
            }
            assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
            assert!(resp.contains("Connection: keep-alive"), "{resp}");
        }
        drop(s);
        server.shutdown();
    }

    #[test]
    fn queue_depth_starts_empty() {
        let server = Server::bind("127.0.0.1:0", test_router(), 1).unwrap();
        assert_eq!(server.queue_depth(), 0);
        server.shutdown();
    }
}
