//! An admission-controlled HTTP/1.1 server substrate, built on `std::net`.
//!
//! The MINARET prototype ships a web application and RESTful APIs. This
//! crate provides just enough HTTP for `minaret-server` to expose the
//! same workflow under load: request parsing with size limits, a pattern
//! router (`/authors/:id`), JSON helpers (via `minaret-json`), and a
//! threaded accept loop with explicit overload policy —
//!
//! - a **bounded admission queue** ([`queue::BoundedQueue`]): when full,
//!   connections are shed with `503` + `Retry-After` instead of queueing
//!   unboundedly; per-client bursts can be capped with `429`;
//! - **HTTP/1.1 keep-alive** with max-requests and idle-timeout caps
//!   ([`KeepAliveConfig`]);
//! - **per-request deadlines**: socket read/write timeouts plus an
//!   absolute [`Request::deadline`] handlers can pass down into
//!   deadline-aware backends;
//! - **graceful drain** on [`Server::shutdown`]: stop accepting, serve
//!   everything already admitted, join every thread;
//! - queue depth / shed / time-in-queue metrics via `minaret-telemetry`.
//!
//! Deliberately out of scope: TLS and chunked encoding — the API needs
//! neither.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod queue;
mod request;
mod response;
mod router;
mod server;

pub use request::{percent_decode, HttpError, Method, Request};
pub use response::Response;
pub use router::{Params, Router};
pub use server::{KeepAliveConfig, Server, ServerConfig};
