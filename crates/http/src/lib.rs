//! A minimal HTTP/1.1 server substrate, built on `std::net`.
//!
//! The MINARET prototype ships a web application and RESTful APIs. This
//! crate provides just enough HTTP for `minaret-server` to expose the
//! same workflow: request parsing with size limits, a pattern router
//! (`/authors/:id`), JSON helpers (via `minaret-json`), and a threaded
//! accept loop with graceful shutdown.
//!
//! Deliberately out of scope: TLS, keep-alive, chunked encoding — the
//! demo API needs none of them, and every connection is served
//! `Connection: close`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod request;
mod response;
mod router;
mod server;

pub use request::{HttpError, Method, Request};
pub use response::Response;
pub use router::{Params, Router};
pub use server::Server;
