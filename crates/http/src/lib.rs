//! An admission-controlled HTTP/1.1 server substrate, built on `std::net`
//! and a raw-epoll reactor (`minaret-sys`).
//!
//! The MINARET prototype ships a web application and RESTful APIs. This
//! crate provides just enough HTTP for `minaret-server` to expose the
//! same workflow under load: request parsing with size limits (both a
//! blocking reader and a resumable [`RequestBuffer`]), a pattern router
//! (`/authors/:id`), JSON helpers (via `minaret-json`), and an
//! **event-driven serving front end** with explicit overload policy —
//!
//! - a fixed thread count: `io_threads` epoll reactors multiplex every
//!   socket and `workers` threads run handlers, so ten thousand idle
//!   keep-alive connections cost table entries, not stacks;
//! - a **bounded dispatch queue** ([`queue::BoundedQueue`]): when the
//!   backlog is full, new connections are shed with `503` +
//!   `Retry-After` instead of queueing unboundedly; per-client bursts
//!   can be capped with `429`;
//! - **HTTP/1.1 keep-alive** with max-requests and idle-timeout caps
//!   ([`KeepAliveConfig`]), including pipelined requests;
//! - **per-request deadlines** enforced by a timer wheel (`408` on
//!   stalled reads, teardown on stalled writes) plus an absolute
//!   [`Request::deadline`] handlers can pass down into deadline-aware
//!   backends;
//! - **graceful drain** on [`Server::shutdown`]: stop accepting, serve
//!   everything already admitted, join every thread;
//! - queue depth / shed / open-connections / reactor metrics via
//!   `minaret-telemetry`.
//!
//! Deliberately out of scope: TLS and chunked encoding — the API needs
//! neither.

#![deny(missing_docs)]
// The only unsafe in the serving stack lives in `minaret-sys` (the
// audited epoll FFI wrapper); this crate stays safe Rust.
#![forbid(unsafe_code)]

mod conn;
pub mod queue;
mod reactor;
mod request;
mod response;
mod router;
mod server;
mod timer;

pub use request::{percent_decode, HttpError, Method, Request, RequestBuffer};
pub use response::Response;
pub use router::{Params, Router};
pub use server::{KeepAliveConfig, Server, ServerConfig};
