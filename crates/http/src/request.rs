//! HTTP request parsing.

use std::fmt;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::time::Instant;

/// Maximum accepted header block, in bytes.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum accepted body, in bytes.
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Supported request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
    /// PUT
    Put,
    /// DELETE
    Delete,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        })
    }
}

/// Request-parsing failures, each mapping to an HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line / headers → 400.
    BadRequest(String),
    /// Unknown method → 501.
    UnsupportedMethod(String),
    /// Headers or body exceeded the size limits → 413.
    TooLarge,
    /// A socket read/write deadline expired → 408.
    Timeout,
    /// Underlying socket error.
    Io(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::UnsupportedMethod(m) => write!(f, "unsupported method: {m}"),
            HttpError::TooLarge => write!(f, "request too large"),
            HttpError::Timeout => write!(f, "request timed out"),
            HttpError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Classifies a socket error: expired `SO_RCVTIMEO`/`SO_SNDTIMEO`
/// deadlines surface as `WouldBlock`/`TimedOut` and map to 408.
fn io_error(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e.to_string()),
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Decoded path, without the query string.
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
    /// Minor HTTP version: 1 for HTTP/1.1, 0 for HTTP/1.0.
    pub minor_version: u8,
    /// Absolute deadline for answering this request, when the server
    /// enforces a per-request budget. Handlers may pass the remaining
    /// time down into their own deadline-aware calls.
    pub deadline: Option<Instant>,
}

impl Request {
    /// First query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Header value (name matched case-insensitively at parse time).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as JSON.
    pub fn json_body(&self) -> Result<minaret_json::Value, HttpError> {
        let text = std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::BadRequest("body is not UTF-8".into()))?;
        minaret_json::parse(text).map_err(|e| HttpError::BadRequest(e.to_string()))
    }

    /// Whether the client asked for (or its HTTP version implies) closing
    /// the connection after this response.
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            // HTTP/1.0 defaults to close, HTTP/1.1 to keep-alive.
            _ => self.minor_version == 0,
        }
    }

    /// Reads and parses one request from a stream. Convenience wrapper
    /// around [`Request::read_from_buffered`] for close-per-request use;
    /// keep-alive servers must hold one `BufReader` across requests so
    /// pipelined bytes are not dropped between them.
    pub fn read_from(stream: &mut TcpStream) -> Result<Request, HttpError> {
        let mut reader = BufReader::new(stream);
        match Request::read_from_buffered(&mut reader)? {
            Some(request) => Ok(request),
            None => Err(HttpError::Io("connection closed before request".into())),
        }
    }

    /// Reads and parses one request from a buffered reader. Returns
    /// `Ok(None)` when the peer closed cleanly before sending anything
    /// (the normal end of a keep-alive connection).
    pub fn read_from_buffered<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
        let mut header_bytes = 0usize;
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(io_error)?;
        if n == 0 {
            return Ok(None);
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge);
        }
        let (method, path, query, minor_version) = parse_request_line(line.trim_end())?;

        let mut headers = Vec::new();
        loop {
            let mut hl = String::new();
            let n = reader.read_line(&mut hl).map_err(io_error)?;
            if n == 0 {
                return Err(HttpError::Io("unexpected EOF in headers".into()));
            }
            header_bytes += hl.len();
            if header_bytes > MAX_HEADER_BYTES {
                return Err(HttpError::TooLarge);
            }
            let trimmed = hl.trim_end();
            if trimmed.is_empty() {
                break;
            }
            headers.push(parse_header_line(trimmed)?);
        }

        let content_length = body_length(&headers)?;
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).map_err(io_error)?;
        Ok(Some(Request {
            method,
            path,
            query,
            headers,
            body,
            minor_version,
            deadline: None,
        }))
    }

    /// Incrementally parses one request from the front of `buf` without
    /// consuming input. This is the reactor's resumable entry point:
    ///
    /// - `Ok(Some((request, consumed)))` — a complete request occupied
    ///   `buf[..consumed]`; the caller drains those bytes and may call
    ///   again on the remainder (pipelining).
    /// - `Ok(None)` — `buf` holds a prefix of a request; call again once
    ///   more bytes arrive. An empty buffer is simply `Ok(None)`; the
    ///   caller decides what EOF means for a partial buffer.
    /// - `Err(_)` — the prefix can never become a valid request (or
    ///   exceeds the size limits); more input cannot fix it.
    ///
    /// Parse results are identical to [`Request::read_from_buffered`] on
    /// the same bytes (property-tested in `tests/http_parser_proptest`).
    pub fn parse(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
        let mut pos = 0usize;
        let mut header_bytes = 0usize;
        let Some(request_line) = next_line(buf, &mut pos, &mut header_bytes)? else {
            return Ok(None);
        };
        let (method, path, query, minor_version) = parse_request_line(request_line)?;

        let mut headers = Vec::new();
        loop {
            let Some(line) = next_line(buf, &mut pos, &mut header_bytes)? else {
                return Ok(None);
            };
            if line.is_empty() {
                break;
            }
            headers.push(parse_header_line(line)?);
        }

        let content_length = body_length(&headers)?;
        if buf.len() - pos < content_length {
            return Ok(None);
        }
        let body = buf[pos..pos + content_length].to_vec();
        Ok(Some((
            Request {
                method,
                path,
                query,
                headers,
                body,
                minor_version,
                deadline: None,
            },
            pos + content_length,
        )))
    }
}

/// Accumulates raw socket bytes and yields complete pipelined requests.
///
/// This is the receive half of the reactor's per-connection state
/// machine: bytes go in whenever the socket is readable (in whatever
/// fragments the peer and the kernel produce), and
/// [`next_request`](RequestBuffer::next_request) pops one request at a
/// time off the front, resuming cleanly across arbitrarily split input.
#[derive(Debug, Default)]
pub struct RequestBuffer {
    buf: Vec<u8>,
}

impl RequestBuffer {
    /// An empty buffer.
    pub fn new() -> RequestBuffer {
        RequestBuffer::default()
    }

    /// Appends bytes read from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a parsed request.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no unconsumed bytes are buffered — at this point a peer
    /// EOF is a clean end of connection rather than a truncated request.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Parses and consumes the next complete request, if one is fully
    /// buffered. `Ok(None)` means "need more bytes"; errors are
    /// permanent for the connection (see [`Request::parse`]).
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        match Request::parse(&self.buf)? {
            Some((request, consumed)) => {
                self.buf.drain(..consumed);
                Ok(Some(request))
            }
            None => Ok(None),
        }
    }
}

/// Pulls the next `\n`-terminated line out of `buf` starting at `pos`,
/// mirroring `read_line` + `trim_end` semantics: the terminator may be
/// bare `\n` or `\r\n`, trailing whitespace is trimmed, and the raw line
/// length (terminator included) counts against [`MAX_HEADER_BYTES`].
/// Returns `Ok(None)` when no complete line is buffered yet — unless the
/// unterminated remainder already exceeds the header cap, which no
/// future bytes can fix.
fn next_line<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    header_bytes: &mut usize,
) -> Result<Option<&'a str>, HttpError> {
    let rest = &buf[*pos..];
    let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
        if *header_bytes + rest.len() > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge);
        }
        return Ok(None);
    };
    let line = &rest[..=nl];
    let text = std::str::from_utf8(line)
        .map_err(|_| HttpError::Io("stream did not contain valid UTF-8".into()))?;
    *header_bytes += line.len();
    if *header_bytes > MAX_HEADER_BYTES {
        return Err(HttpError::TooLarge);
    }
    *pos += line.len();
    Ok(Some(text.trim_end()))
}

/// Parsed request line: method, path, query pairs, HTTP minor version.
type RequestLine = (Method, String, Vec<(String, String)>, u8);

/// Parses `METHOD TARGET HTTP/1.x` (already line-trimmed).
fn parse_request_line(request_line: &str) -> Result<RequestLine, HttpError> {
    let mut parts = request_line.split(' ');
    let method_str = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequest(
            "trailing data after HTTP version".into(),
        ));
    }
    let minor_version = version
        .strip_prefix("HTTP/1.")
        .and_then(|m| m.parse::<u8>().ok())
        .ok_or_else(|| HttpError::BadRequest(format!("unsupported version {version:?}")))?;
    let method = Method::parse(method_str)
        .ok_or_else(|| HttpError::UnsupportedMethod(method_str.to_string()))?;
    let (path, query) = split_target(target)?;
    Ok((method, path, query, minor_version))
}

/// Parses one `Name: value` header line (already line-trimmed).
fn parse_header_line(trimmed: &str) -> Result<(String, String), HttpError> {
    let (name, value) = trimmed
        .split_once(':')
        .ok_or_else(|| HttpError::BadRequest(format!("malformed header {trimmed:?}")))?;
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
}

/// Resolves `Content-Length` from parsed headers: absent means 0,
/// non-numeric or duplicate is a `400`, over the cap is a `413`.
fn body_length(headers: &[(String, String)]) -> Result<usize, HttpError> {
    let mut lengths = headers.iter().filter(|(k, _)| k == "content-length");
    let content_length = lengths
        .next()
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest("invalid content-length".into()))
        })
        .transpose()?
        .unwrap_or(0);
    if lengths.next().is_some() {
        return Err(HttpError::BadRequest("duplicate content-length".into()));
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    Ok(content_length)
}

fn split_target(target: &str) -> Result<(String, Vec<(String, String)>), HttpError> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)?;
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    Ok((path, query))
}

/// Percent-decoding, with `+` treated as space in the query convention.
pub fn percent_decode(s: &str) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = s
                    .get(i + 1..i + 3)
                    .ok_or_else(|| HttpError::BadRequest("truncated percent escape".into()))?;
                let byte = u8::from_str_radix(hex, 16)
                    .map_err(|_| HttpError::BadRequest("invalid percent escape".into()))?;
                out.push(byte);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::BadRequest("non-UTF-8 after decoding".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut cursor = Cursor::new(raw.to_vec());
        Request::read_from_buffered(&mut cursor)
    }

    #[test]
    fn split_target_parses_path_and_query() {
        let (path, query) = split_target("/a/b?x=1&y=hello+world&flag").unwrap();
        assert_eq!(path, "/a/b");
        assert_eq!(
            query,
            vec![
                ("x".into(), "1".into()),
                ("y".into(), "hello world".into()),
                ("flag".into(), "".into())
            ]
        );
    }

    #[test]
    fn percent_decoding_works() {
        assert_eq!(percent_decode("%2Fa%20b").unwrap(), "/a b");
        assert_eq!(percent_decode("caf%C3%A9").unwrap(), "café");
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%2").is_err());
        assert!(percent_decode("%ff").is_err()); // invalid UTF-8 alone
    }

    #[test]
    fn method_parsing() {
        assert_eq!(Method::parse("GET"), Some(Method::Get));
        assert_eq!(Method::parse("POST"), Some(Method::Post));
        assert_eq!(Method::parse("PATCH"), None);
        assert_eq!(Method::Get.to_string(), "GET");
    }

    #[test]
    fn request_accessors() {
        let r = Request {
            method: Method::Get,
            path: "/x".into(),
            query: vec![("a".into(), "1".into()), ("a".into(), "2".into())],
            headers: vec![("content-type".into(), "application/json".into())],
            body: b"{\"k\": 3}".to_vec(),
            minor_version: 1,
            deadline: None,
        };
        assert_eq!(r.query_param("a"), Some("1"));
        assert_eq!(r.query_param("b"), None);
        assert_eq!(r.header("Content-Type"), Some("application/json"));
        let v = r.json_body().unwrap();
        assert_eq!(v.get("k").and_then(minaret_json::Value::as_u64), Some(3));
    }

    #[test]
    fn invalid_json_body_is_bad_request() {
        let r = Request {
            method: Method::Post,
            path: "/".into(),
            query: vec![],
            headers: vec![],
            body: b"{nope".to_vec(),
            minor_version: 1,
            deadline: None,
        };
        assert!(matches!(r.json_body(), Err(HttpError::BadRequest(_))));
        let r2 = Request {
            body: vec![0xff, 0xfe],
            ..r
        };
        assert!(matches!(r2.json_body(), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn buffered_parse_reads_sequential_requests() {
        let raw =
            b"GET /a HTTP/1.1\r\nHost: x\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut cursor = Cursor::new(raw.to_vec());
        let first = Request::read_from_buffered(&mut cursor).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        assert_eq!(first.minor_version, 1);
        let second = Request::read_from_buffered(&mut cursor).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(second.body, b"hi");
        assert!(Request::read_from_buffered(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn clean_eof_before_request_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi!";
        assert!(matches!(parse(raw), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn trailing_garbage_after_version_is_rejected() {
        let raw = b"GET /x HTTP/1.1 extra\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn http10_defaults_to_close() {
        let raw = b"GET /x HTTP/1.0\r\n\r\n";
        let r = parse(raw).unwrap().unwrap();
        assert_eq!(r.minor_version, 0);
        assert!(r.wants_close());

        let raw = b"GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        assert!(!parse(raw).unwrap().unwrap().wants_close());

        let raw = b"GET /x HTTP/1.1\r\n\r\n";
        assert!(!parse(raw).unwrap().unwrap().wants_close());

        let raw = b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(parse(raw).unwrap().unwrap().wants_close());
    }

    #[test]
    fn truncated_headers_are_io_errors() {
        let raw = b"GET /x HTTP/1.1\r\nHost: x\r\n";
        assert!(matches!(parse(raw), Err(HttpError::Io(_))));
    }

    #[test]
    fn truncated_body_is_io_error() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(matches!(parse(raw), Err(HttpError::Io(_))));
    }

    #[test]
    fn incremental_parse_is_none_until_complete_then_matches_buffered() {
        let raw = b"POST /b?k=v HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..raw.len() {
            assert!(
                Request::parse(&raw[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        let (req, consumed) = Request::parse(raw).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        let whole = parse(raw).unwrap().unwrap();
        assert_eq!(req.method, whole.method);
        assert_eq!(req.path, whole.path);
        assert_eq!(req.query, whole.query);
        assert_eq!(req.headers, whole.headers);
        assert_eq!(req.body, whole.body);
        assert_eq!(req.minor_version, whole.minor_version);
    }

    #[test]
    fn incremental_parse_reports_consumed_for_pipelined_requests() {
        let first = b"GET /a HTTP/1.1\r\n\r\n";
        let second = b"POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut raw = first.to_vec();
        raw.extend_from_slice(second);
        let (r1, c1) = Request::parse(&raw).unwrap().unwrap();
        assert_eq!(r1.path, "/a");
        assert_eq!(c1, first.len());
        let (r2, c2) = Request::parse(&raw[c1..]).unwrap().unwrap();
        assert_eq!(r2.path, "/b");
        assert_eq!(r2.body, b"hi");
        assert_eq!(c1 + c2, raw.len());
    }

    #[test]
    fn incremental_parse_accepts_bare_lf_line_endings() {
        let raw = b"GET /a HTTP/1.1\nHost: x\n\n";
        let (req, consumed) = Request::parse(raw).unwrap().unwrap();
        assert_eq!(req.path, "/a");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn incremental_parse_rejects_errors_without_more_input() {
        assert!(matches!(
            Request::parse(b"GET /x HTTP/1.1 extra\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            Request::parse(b"PATCH /x HTTP/1.1\r\n"),
            Err(HttpError::UnsupportedMethod(_))
        ));
        assert!(matches!(
            Request::parse(b"POST /x HTTP/1.1\r\nContent-Length: 2097152\r\n\r\n"),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn incremental_parse_caps_unterminated_header_floods() {
        // An attacker streaming an endless header line must be rejected
        // once the buffered prefix can no longer fit the header cap.
        let flood = vec![b'a'; MAX_HEADER_BYTES + 1];
        assert!(matches!(Request::parse(&flood), Err(HttpError::TooLarge)));
        // Just under the cap is still (indefinitely) incomplete.
        assert!(Request::parse(&flood[..MAX_HEADER_BYTES])
            .unwrap()
            .is_none());
    }

    #[test]
    fn incremental_parse_of_empty_buffer_is_incomplete() {
        assert!(Request::parse(b"").unwrap().is_none());
    }
}
