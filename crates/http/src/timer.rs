//! A hashed timer wheel for connection deadlines.
//!
//! The threaded server leaned on per-socket `set_read_timeout`; a
//! reactor multiplexing thousands of sockets on one thread needs its
//! own notion of time. This wheel holds every armed deadline (idle,
//! per-request, write-stall, lingering-close) and answers two
//! questions cheaply: *how long may `epoll_wait` sleep* and *which
//! timers have fired*.
//!
//! Design points:
//!
//! - **Coarse slots, exact deadlines.** A deadline is hashed to the
//!   slot of its rounded-up tick, but the exact `Instant` is kept, so
//!   timers never fire early — at worst one granule late.
//! - **Lazy cancellation.** Disarming is the caller's job: entries
//!   carry caller-chosen identifiers (connection token / epoch /
//!   generation) and stale entries are ignored when they pop out. This
//!   keeps arming O(1) with no search-and-remove.
//! - **Injectable time.** Every method takes `now` explicitly, so unit
//!   tests drive the wheel with synthetic instants — no sleeping.
//!
//! Entries beyond the wheel horizon (`slots × granularity`) land in an
//! overflow list that is folded back into the wheel as the cursor
//! advances; with the default 1024 × 16 ms ≈ 16 s horizon, every stock
//! timeout fits in the wheel proper.

use std::time::{Duration, Instant};

/// One scheduled deadline with its caller-chosen payload.
#[derive(Debug, Clone, Copy)]
struct Entry<T> {
    deadline: Instant,
    tick: u64,
    item: T,
}

/// A single-threaded hashed timer wheel. `T` is the caller's timer
/// identity (the reactor uses connection token + epoch + generation).
#[derive(Debug)]
pub(crate) struct TimerWheel<T> {
    base: Instant,
    granularity: Duration,
    slots: Vec<Vec<Entry<T>>>,
    overflow: Vec<Entry<T>>,
    /// Next tick to process; every live slot entry has `tick >= cursor`.
    cursor: u64,
    len: usize,
}

impl<T: Copy> TimerWheel<T> {
    /// A wheel of `slots` buckets of `granularity` each, starting at
    /// `base`. Horizon = `slots × granularity`.
    pub fn new(base: Instant, granularity: Duration, slots: usize) -> Self {
        TimerWheel {
            base,
            granularity: granularity.max(Duration::from_millis(1)),
            slots: (0..slots.max(2)).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Scheduled entries not yet fired (stale ones included).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Tick of `deadline`, rounded **up** so firing at the tick boundary
    /// is never early.
    fn tick_of(&self, deadline: Instant) -> u64 {
        let offset = deadline.saturating_duration_since(self.base).as_nanos();
        let g = self.granularity.as_nanos();
        offset.div_ceil(g) as u64
    }

    /// Arms a deadline. Past deadlines fire on the next `expire` call.
    pub fn schedule(&mut self, deadline: Instant, item: T) {
        let tick = self.tick_of(deadline).max(self.cursor);
        let entry = Entry {
            deadline,
            tick,
            item,
        };
        if tick - self.cursor >= self.slots.len() as u64 {
            self.overflow.push(entry);
        } else {
            let slot = (tick % self.slots.len() as u64) as usize;
            self.slots[slot].push(entry);
        }
        self.len += 1;
    }

    /// Advances the wheel to `now`, appending every fired payload to
    /// `out` (in no particular order).
    pub fn expire(&mut self, now: Instant, out: &mut Vec<T>) {
        if self.len == 0 {
            return;
        }
        let current = {
            let offset = now.saturating_duration_since(self.base).as_nanos();
            (offset / self.granularity.as_nanos()) as u64
        };
        let nslots = self.slots.len() as u64;
        while self.cursor <= current {
            let slot = (self.cursor % nslots) as usize;
            // A slot is shared by ticks ≡ cursor (mod nslots); only fire
            // entries whose exact deadline has passed, keep the rest.
            let mut kept = Vec::new();
            for entry in self.slots[slot].drain(..) {
                if entry.tick <= self.cursor && entry.deadline <= now {
                    out.push(entry.item);
                    self.len -= 1;
                } else {
                    kept.push(entry);
                }
            }
            self.slots[slot] = kept;
            self.cursor += 1;
            if self.cursor > current {
                break;
            }
        }
        self.cursor = self.cursor.max(current);
        // Fold overflow entries that are now within the horizon (or
        // already due) back into the wheel.
        if !self.overflow.is_empty() {
            let mut still_far = Vec::new();
            for entry in std::mem::take(&mut self.overflow) {
                if entry.deadline <= now {
                    out.push(entry.item);
                    self.len -= 1;
                } else if entry.tick.saturating_sub(self.cursor) < nslots {
                    let slot = (entry.tick.max(self.cursor) % nslots) as usize;
                    self.slots[slot].push(entry);
                } else {
                    still_far.push(entry);
                }
            }
            self.overflow = still_far;
        }
    }

    /// When the next armed deadline could fire: the wheel boundary of
    /// the first occupied slot (never later than any entry in it, so a
    /// sleep until then can only be conservatively short).
    pub fn next_deadline(&self, now: Instant) -> Option<Instant> {
        if self.len == 0 {
            return None;
        }
        let nslots = self.slots.len() as u64;
        let mut earliest: Option<Instant> = None;
        for distance in 0..nslots {
            let tick = self.cursor + distance;
            let slot = (tick % nslots) as usize;
            if self.slots[slot].iter().any(|e| e.tick <= tick) {
                earliest = Some(self.base + self.granularity * tick as u32);
                break;
            }
        }
        for entry in &self.overflow {
            let d = entry.deadline;
            if earliest.is_none_or(|e| d < e) {
                earliest = Some(d);
            }
        }
        earliest.map(|e| e.max(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Instant {
        Instant::now()
    }

    #[test]
    fn fires_at_or_after_deadline_never_before() {
        let b = base();
        let mut wheel = TimerWheel::new(b, Duration::from_millis(16), 64);
        wheel.schedule(b + Duration::from_millis(100), 1u32);
        let mut fired = Vec::new();
        wheel.expire(b + Duration::from_millis(99), &mut fired);
        assert!(fired.is_empty(), "fired {}ms early", 1);
        wheel.expire(b + Duration::from_millis(150), &mut fired);
        assert_eq!(fired, vec![1]);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn multiple_timers_fire_in_any_order_but_completely() {
        let b = base();
        let mut wheel = TimerWheel::new(b, Duration::from_millis(16), 64);
        for i in 0..10u32 {
            wheel.schedule(b + Duration::from_millis(10 * (i as u64 + 1)), i);
        }
        let mut fired = Vec::new();
        wheel.expire(b + Duration::from_millis(55), &mut fired);
        fired.sort_unstable();
        assert_eq!(fired, vec![0, 1, 2, 3]); // deadlines 10..40 ≤ 55-granule
        let mut rest = Vec::new();
        wheel.expire(b + Duration::from_secs(1), &mut rest);
        assert_eq!(rest.len(), 6);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn far_deadlines_take_the_overflow_path_and_still_fire() {
        let b = base();
        // Tiny wheel: 4 × 16ms horizon, 10s timer must overflow.
        let mut wheel = TimerWheel::new(b, Duration::from_millis(16), 4);
        wheel.schedule(b + Duration::from_secs(10), 42u32);
        assert_eq!(wheel.len(), 1);
        let mut fired = Vec::new();
        wheel.expire(b + Duration::from_secs(5), &mut fired);
        assert!(fired.is_empty());
        wheel.expire(b + Duration::from_secs(10), &mut fired);
        assert_eq!(fired, vec![42]);
    }

    #[test]
    fn slot_collisions_do_not_fire_far_entries_early() {
        let b = base();
        let mut wheel = TimerWheel::new(b, Duration::from_millis(10), 4);
        // Two entries 40ms (= nslots × granularity) apart share a slot.
        wheel.schedule(b + Duration::from_millis(10), 1u32);
        let mut fired = Vec::new();
        wheel.expire(b + Duration::from_millis(5), &mut fired);
        wheel.schedule(b + Duration::from_millis(50), 2u32);
        wheel.expire(b + Duration::from_millis(12), &mut fired);
        assert_eq!(fired, vec![1]);
        wheel.expire(b + Duration::from_millis(49), &mut fired);
        assert_eq!(fired, vec![1], "far entry fired early");
        wheel.expire(b + Duration::from_millis(60), &mut fired);
        assert_eq!(fired, vec![1, 2]);
    }

    #[test]
    fn next_deadline_is_conservative_and_none_when_empty() {
        let b = base();
        let mut wheel = TimerWheel::new(b, Duration::from_millis(16), 64);
        assert!(wheel.next_deadline(b).is_none());
        let deadline = b + Duration::from_millis(200);
        wheel.schedule(deadline, 9u32);
        let next = wheel.next_deadline(b).unwrap();
        // The hint is the rounded-up tick boundary: at most one granule
        // past the exact deadline (the documented firing latency), never
        // wildly early (which would spin the event loop).
        assert!(
            next <= deadline + Duration::from_millis(16),
            "hint more than one granule late"
        );
        assert!(next >= b + Duration::from_millis(150), "hint far too early");
    }

    #[test]
    fn boundary_deadlines_fire_at_the_tick_never_one_granule_early() {
        // A deadline landing *exactly* on a tick boundary is the
        // round-up edge case: `tick_of` must not round it into the
        // previous granule. Table over (granularity, slots, boundary
        // multiple) including the cursor==tick and wrap-around cases.
        struct Case {
            granularity_ms: u64,
            slots: usize,
            boundary_multiple: u64,
        }
        let cases = [
            Case {
                granularity_ms: 16,
                slots: 64,
                boundary_multiple: 1,
            },
            Case {
                granularity_ms: 16,
                slots: 64,
                boundary_multiple: 5,
            },
            // Boundary beyond one full rotation: slot is shared with an
            // earlier tick.
            Case {
                granularity_ms: 10,
                slots: 4,
                boundary_multiple: 9,
            },
            Case {
                granularity_ms: 1,
                slots: 2,
                boundary_multiple: 3,
            },
        ];
        for (i, c) in cases.iter().enumerate() {
            let b = base();
            let g = Duration::from_millis(c.granularity_ms);
            let mut wheel = TimerWheel::new(b, g, c.slots);
            let deadline = b + g * c.boundary_multiple as u32;
            wheel.schedule(deadline, i as u32);
            let mut fired = Vec::new();
            wheel.expire(deadline - Duration::from_nanos(1), &mut fired);
            assert!(
                fired.is_empty(),
                "case {i}: fired a nanosecond before the boundary"
            );
            wheel.expire(deadline, &mut fired);
            assert_eq!(
                fired,
                vec![i as u32],
                "case {i}: must fire exactly at the boundary tick"
            );
            assert_eq!(wheel.len(), 0, "case {i}");
        }
    }

    #[test]
    fn generation_reuse_after_slot_recycling_keeps_entries_distinct() {
        // The reactor cancels lazily: a connection slot that is retired
        // and recycled reuses its token with a bumped generation, and
        // the stale wheel entry must still pop out (so `len` drains)
        // carrying its *old* generation so the caller can ignore it —
        // never the recycled identity.
        let b = base();
        let mut wheel = TimerWheel::new(b, Duration::from_millis(10), 8);
        // (token, generation): token 7's first life, deadline 20ms.
        wheel.schedule(b + Duration::from_millis(20), (7u32, 0u32));
        // Connection closes at 15ms (lazy cancel — nothing removed),
        // the slab slot is recycled, generation bumps, new deadline.
        let mut fired = Vec::new();
        wheel.expire(b + Duration::from_millis(15), &mut fired);
        assert!(fired.is_empty());
        wheel.schedule(b + Duration::from_millis(30), (7u32, 1u32));
        assert_eq!(wheel.len(), 2, "stale entry still occupies the wheel");
        // Both entries pop with their own generation intact.
        wheel.expire(b + Duration::from_millis(40), &mut fired);
        fired.sort_unstable();
        assert_eq!(fired, vec![(7, 0), (7, 1)]);
        assert_eq!(wheel.len(), 0, "stale entries drain, never leak");
        // The recycled identity can keep rearming afterwards.
        wheel.schedule(b + Duration::from_millis(50), (7u32, 1u32));
        let mut again = Vec::new();
        wheel.expire(b + Duration::from_millis(50), &mut again);
        assert_eq!(again, vec![(7, 1)]);
    }

    #[test]
    fn deadlines_beyond_the_full_horizon_fold_back_and_fire_on_time() {
        // Default-geometry wheel: 1024 × 16 ms ≈ 16.4 s horizon. Table
        // of deadlines past it — just past, several rotations past —
        // all take the overflow path, never fire early at intermediate
        // expirations, and fire exactly at their deadline.
        let probes_ms: [u64; 3] = [5_000, 16_500, 30_000];
        for &deadline_ms in &[17_000u64, 33_000, 100_000] {
            let b = base();
            let mut wheel = TimerWheel::new(b, Duration::from_millis(16), 1024);
            let deadline = b + Duration::from_millis(deadline_ms);
            wheel.schedule(deadline, deadline_ms);
            let next = wheel.next_deadline(b).unwrap();
            assert!(
                next <= deadline,
                "{deadline_ms}ms: overflow hint must not be late"
            );
            let mut fired = Vec::new();
            for &probe in probes_ms.iter().filter(|&&p| p < deadline_ms) {
                wheel.expire(b + Duration::from_millis(probe), &mut fired);
                assert!(
                    fired.is_empty(),
                    "{deadline_ms}ms deadline fired early at {probe}ms"
                );
            }
            wheel.expire(deadline - Duration::from_nanos(1), &mut fired);
            assert!(fired.is_empty(), "{deadline_ms}ms: a nanosecond early");
            // Fires at the rounded-up tick boundary — the documented
            // "at worst one granule late" contract.
            let boundary = b + Duration::from_millis(deadline_ms.div_ceil(16) * 16);
            wheel.expire(boundary, &mut fired);
            assert_eq!(fired, vec![deadline_ms], "{deadline_ms}ms: must fire");
            assert_eq!(wheel.len(), 0);
        }
    }

    #[test]
    fn past_deadlines_fire_immediately_on_next_expire() {
        let b = base();
        let mut wheel = TimerWheel::new(b, Duration::from_millis(16), 64);
        let mut fired = Vec::new();
        wheel.expire(b + Duration::from_secs(1), &mut fired);
        // Scheduled in the past relative to the cursor.
        wheel.schedule(b + Duration::from_millis(10), 5u32);
        wheel.expire(b + Duration::from_secs(1), &mut fired);
        assert_eq!(fired, vec![5]);
    }
}
