//! The epoll event loop: non-blocking serving on a fixed thread count.
//!
//! One reactor thread owns an epoll instance and a slab of
//! [`Conn`] state machines. Readiness events drive resumable reads
//! ([`RequestBuffer`](crate::RequestBuffer)) and buffered writes; app
//! dispatch is handed to the shared worker pool through the bounded
//! admission queue, so a slow recommendation never stalls the event
//! loop, and ten thousand idle keep-alive sockets cost table entries
//! instead of parked threads.
//!
//! Cross-thread input arrives through a [`ReactorShared`] mailbox: a
//! worker finishing a request (or reactor 0 handing off an accepted
//! connection when `io_threads > 1`) pushes a message and writes one
//! byte into the reactor's wake pipe, which is registered in epoll like
//! any other fd. Deadlines (keep-alive idle, per-request budget,
//! lingering close) live in a [`TimerWheel`] that bounds each
//! `epoll_wait`. Completions are matched against a per-slot **epoch**
//! so a response for a connection that died mid-dispatch is dropped
//! instead of landing on whatever reuses the slot.
//!
//! Admission control is unchanged from the threaded server, just moved:
//! a connection is shed (`503`/`429` + `Retry-After`, lingering close)
//! at **accept** when the dispatch backlog is at capacity or the
//! per-client burst cap is hit; once admitted, its requests always
//! reach the worker queue. Graceful drain: stop accepting, close idle
//! connections, serve every in-flight request with
//! `Connection: close`, and exit once the slab is empty.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use minaret_sys::{Epoll, Event, Interest};

use crate::conn::{AfterWrite, Conn, ConnState};
use crate::queue::{BoundedQueue, PushError};
use crate::request::{HttpError, Request};
use crate::response::Response;
use crate::server::ServerConfig;
use crate::timer::TimerWheel;

/// Epoll token of the listener (reactor 0 only).
const TOKEN_LISTENER: u64 = u64::MAX;
/// Epoll token of the wake pipe's read half.
const TOKEN_WAKER: u64 = u64::MAX - 1;
/// Read size per `read` call while a socket stays readable.
const READ_CHUNK: usize = 16 * 1024;
/// Cap on a shed connection's lingering close (write + drain-to-EOF).
const LINGER_TIMEOUT: Duration = Duration::from_secs(1);
/// Timer wheel shape: 1024 × 16 ms ≈ 16 s horizon covers every stock
/// timeout without touching the overflow list.
const WHEEL_SLOTS: usize = 1024;
const WHEEL_GRANULARITY: Duration = Duration::from_millis(16);

/// A parsed request on its way to the worker pool.
pub(crate) struct Job {
    pub request: Request,
    pub token: usize,
    pub epoch: u64,
    pub close: bool,
    pub enqueued: Instant,
    pub reactor: Arc<ReactorShared>,
}

/// Cross-thread input to a reactor.
pub(crate) enum ReactorMsg {
    /// An accepted, admitted connection handed off by reactor 0.
    Adopt(TcpStream, Option<IpAddr>, bool),
    /// A worker finished a request.
    Complete {
        token: usize,
        epoch: u64,
        response: Response,
        close: bool,
    },
}

/// The cross-thread face of a reactor: a mailbox plus a wake pipe.
pub(crate) struct ReactorShared {
    inbox: Mutex<Vec<ReactorMsg>>,
    waker: UnixStream,
}

impl ReactorShared {
    pub fn new(waker: UnixStream) -> ReactorShared {
        ReactorShared {
            inbox: Mutex::new(Vec::new()),
            waker,
        }
    }

    /// Enqueues a message and wakes the reactor's `epoll_wait`.
    pub fn send(&self, msg: ReactorMsg) {
        self.inbox
            .lock()
            .expect("reactor inbox lock poisoned")
            .push(msg);
        self.wake();
    }

    /// Wakes the reactor without a message (used for shutdown). A full
    /// pipe means wake bytes are already pending — failure is fine.
    pub fn wake(&self) {
        let _ = (&self.waker).write(&[1u8]);
    }
}

/// Timer identity: which connection (by slot + epoch), which arming
/// (generation), and what the timer means.
#[derive(Debug, Clone, Copy)]
struct TimerId {
    token: usize,
    epoch: u64,
    gen: u64,
    kind: TimerKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    /// Keep-alive idle cap between requests.
    Idle,
    /// Per-request budget: parse + dispatch + write.
    Request,
    /// Lingering-close cap for shed connections.
    Linger,
}

/// Why a connection was torn down without a response, for telemetry.
type TeardownCause = &'static str;

pub(crate) struct Reactor {
    epoll: Epoll,
    shared: Arc<ReactorShared>,
    wake_rx: UnixStream,
    listener: Option<TcpListener>,
    /// All reactors (self at index `id`), for round-robin handoff;
    /// populated only on reactor 0.
    peers: Vec<Arc<ReactorShared>>,
    next_peer: usize,
    conns: Vec<Option<Conn>>,
    epochs: Vec<u64>,
    free: Vec<usize>,
    live: usize,
    wheel: TimerWheel<TimerId>,
    config: Arc<ServerConfig>,
    queue: Arc<BoundedQueue<Job>>,
    per_ip: Arc<Mutex<HashMap<IpAddr, usize>>>,
    stop: Arc<AtomicBool>,
    draining: bool,
}

impl Reactor {
    /// Builds a reactor and registers its wake pipe (and listener, for
    /// reactor 0) with epoll. Runs on the caller's thread until
    /// drained; spawn it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        listener: Option<TcpListener>,
        shared: Arc<ReactorShared>,
        wake_rx: UnixStream,
        peers: Vec<Arc<ReactorShared>>,
        config: Arc<ServerConfig>,
        queue: Arc<BoundedQueue<Job>>,
        per_ip: Arc<Mutex<HashMap<IpAddr, usize>>>,
        stop: Arc<AtomicBool>,
    ) -> std::io::Result<Reactor> {
        let epoll = Epoll::new()?;
        if let Some(l) = &listener {
            l.set_nonblocking(true)?;
            epoll.add(l.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        }
        wake_rx.set_nonblocking(true)?;
        epoll.add(wake_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;
        Ok(Reactor {
            epoll,
            shared,
            wake_rx,
            listener,
            peers,
            next_peer: 0,
            conns: Vec::new(),
            epochs: Vec::new(),
            free: Vec::new(),
            live: 0,
            wheel: TimerWheel::new(Instant::now(), WHEEL_GRANULARITY, WHEEL_SLOTS),
            config,
            queue,
            per_ip,
            stop,
            draining: false,
        })
    }

    /// The event loop. Returns once a drain completes: stop flag set,
    /// listener closed, and every connection finished.
    pub fn run(&mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut fired: Vec<TimerId> = Vec::new();
        loop {
            let now = Instant::now();
            let timeout_ms = self.wheel.next_deadline(now).map(|d| {
                // Round up so we never spin on a not-quite-due timer.
                (d.saturating_duration_since(now).as_millis() as i64 + 1).min(i32::MAX as i64)
                    as i32
            });
            events.clear();
            if self.epoll.wait(&mut events, timeout_ms).is_err() {
                // epoll itself failing is unrecoverable for this loop;
                // drain what we can and let shutdown join us.
                self.draining = true;
            }
            self.config
                .telemetry
                .counter("minaret_http_reactor_wakeups_total", &[])
                .inc();
            let started = Instant::now();
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.on_listener(),
                    TOKEN_WAKER => self.drain_waker(),
                    token => self.on_conn_event(token as usize, ev),
                }
            }
            // Mailbox after waker reads: a message whose wake byte was
            // just consumed is picked up here; one pushed after this
            // drain leaves its byte pending for the next iteration.
            let msgs = std::mem::take(
                &mut *self
                    .shared
                    .inbox
                    .lock()
                    .expect("reactor inbox lock poisoned"),
            );
            for msg in msgs {
                self.on_msg(msg);
            }
            if self.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            fired.clear();
            self.wheel.expire(Instant::now(), &mut fired);
            for id in &fired {
                self.on_timer(*id);
            }
            self.config
                .telemetry
                .histogram("minaret_http_reactor_dispatch_micros", &[])
                .observe_duration(started.elapsed());
            if self.draining && self.live == 0 {
                return;
            }
        }
    }

    // ---- accept & admission -------------------------------------------

    fn on_listener(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, peer)) => self.admit(stream, Some(peer.ip())),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Admission control, identical policy to the threaded server:
    /// burst-capped clients get `429`, a full dispatch backlog gets
    /// `503`, shutdown gets `503`; everyone else is registered (or
    /// handed to a peer reactor round-robin).
    fn admit(&mut self, stream: TcpStream, ip: Option<IpAddr>) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        if self.stop.load(Ordering::SeqCst) || self.draining {
            self.shed(stream, 503, "shutting down");
            return;
        }
        let mut counted = false;
        if self.config.per_client_burst > 0 {
            if let Some(ip) = ip {
                let mut map = self.per_ip.lock().expect("per-ip lock poisoned");
                let count = map.entry(ip).or_insert(0);
                if *count >= self.config.per_client_burst {
                    drop(map);
                    self.shed(stream, 429, "client burst limit");
                    return;
                }
                *count += 1;
                counted = true;
            }
        }
        if self.queue.len() >= self.queue.capacity() {
            if counted {
                release_ip(&self.per_ip, ip);
            }
            self.shed(stream, 503, "queue full");
            return;
        }
        if self.peers.len() > 1 {
            let idx = self.next_peer % self.peers.len();
            self.next_peer = self.next_peer.wrapping_add(1);
            if idx != 0 {
                self.peers[idx].send(ReactorMsg::Adopt(stream, ip, counted));
                return;
            }
        }
        self.register(stream, ip, counted);
    }

    fn register(&mut self, stream: TcpStream, ip: Option<IpAddr>, counted: bool) {
        let conn = Conn::new(stream, ip, counted, true);
        let Some(token) = self.install(conn, Interest::READ) else {
            return;
        };
        self.config
            .telemetry
            .gauge("minaret_http_open_connections", &[])
            .add(1);
        if let Some(idle) = self.config.keep_alive.idle_timeout {
            self.arm_timer(token, TimerKind::Idle, Instant::now() + idle);
        }
        if self.draining {
            // Adopted after the drain sweep: apply drain policy now.
            self.drain_touch(token);
        }
    }

    /// Refuses a connection with `status` + `Retry-After` via lingering
    /// close. Unlike the threaded server this costs no detached thread:
    /// the refusal is just another connection in the slab, in
    /// `Writing(Linger) → Draining`, capped by the linger timer.
    fn shed(&mut self, stream: TcpStream, status: u16, why: &str) {
        let reason = match status {
            429 => "client_burst",
            _ if why == "shutting down" => "shutdown",
            _ => "queue_full",
        };
        self.config
            .telemetry
            .counter("minaret_http_shed_total", &[("reason", reason)])
            .inc();
        let response = Response::error(status, why)
            .with_header("Retry-After", &self.config.retry_after_secs.to_string());
        let mut conn = Conn::new(stream, None, false, false);
        conn.outbuf = response.to_bytes_with(true);
        conn.state = ConnState::Writing(AfterWrite::Linger);
        conn.interest = Interest::WRITE;
        let Some(token) = self.install(conn, Interest::WRITE) else {
            return;
        };
        self.arm_timer(token, TimerKind::Linger, Instant::now() + LINGER_TIMEOUT);
        self.drive_write(token);
    }

    /// Puts a connection into the slab and registers it with epoll.
    fn install(&mut self, conn: Conn, interest: Interest) -> Option<usize> {
        let token = match self.free.pop() {
            Some(t) => t,
            None => {
                self.conns.push(None);
                self.epochs.push(0);
                self.conns.len() - 1
            }
        };
        if self
            .epoll
            .add(conn.stream.as_raw_fd(), token as u64, interest)
            .is_err()
        {
            // Out of fds or similar: drop the connection, reclaim slot.
            self.free.push(token);
            if conn.counted_ip {
                release_ip(&self.per_ip, conn.ip);
            }
            return None;
        }
        self.conns[token] = Some(conn);
        self.live += 1;
        Some(token)
    }

    // ---- event handling -----------------------------------------------

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut sink) {
                Ok(0) => return, // all write halves gone (shutdown path)
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock: fully drained
            }
        }
    }

    fn on_msg(&mut self, msg: ReactorMsg) {
        match msg {
            ReactorMsg::Adopt(stream, ip, counted) => self.register(stream, ip, counted),
            ReactorMsg::Complete {
                token,
                epoch,
                response,
                close,
            } => {
                let current = match (self.epochs.get(token), self.conns.get(token)) {
                    (Some(e), Some(Some(conn))) => {
                        *e == epoch && conn.state == ConnState::Dispatched
                    }
                    _ => false,
                };
                if !current {
                    // The connection died (peer reset, budget expiry)
                    // while its request was in flight; drop the response
                    // exactly as the threaded server's failed write did.
                    return;
                }
                let close = close || self.stop.load(Ordering::SeqCst);
                self.respond(token, &response, close);
            }
        }
    }

    fn on_conn_event(&mut self, token: usize, ev: Event) {
        let Some(Some(conn)) = self.conns.get(token) else {
            return;
        };
        if ev.error {
            // EPOLLERR/EPOLLHUP: peer reset or full close. For a
            // draining shed this is the expected end; anywhere else the
            // connection is unusable — same outcome as the threaded
            // server's failed read/write, minus one worker.
            if conn.state == ConnState::Draining {
                self.close_conn(token, None);
            } else {
                self.teardown(token, "hangup");
            }
            return;
        }
        if ev.writable {
            self.drive_write(token);
        }
        if ev.readable && self.conns.get(token).is_some_and(Option::is_some) {
            self.drive_read(token);
        }
    }

    /// Reads until `WouldBlock`/EOF and advances the parser.
    fn drive_read(&mut self, token: usize) {
        let Some(Some(conn)) = self.conns.get_mut(token) else {
            return;
        };
        if conn.state == ConnState::Draining {
            self.drain_discard(token);
            return;
        }
        if !matches!(conn.state, ConnState::Idle | ConnState::Reading) {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        let mut eof = false;
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => conn.inbuf.push(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.teardown(token, "read_error");
                    return;
                }
            }
        }
        self.advance_parse(token, eof);
    }

    /// Tries to parse the next request out of the receive buffer and
    /// dispatch it; applies the threaded server's error mapping.
    fn advance_parse(&mut self, token: usize, eof: bool) {
        let Some(Some(conn)) = self.conns.get_mut(token) else {
            return;
        };
        if conn.state == ConnState::Idle && !conn.inbuf.is_empty() {
            self.start_request(token);
        }
        let Some(Some(conn)) = self.conns.get_mut(token) else {
            return;
        };
        match conn.inbuf.next_request() {
            Ok(Some(mut request)) => {
                request.deadline = conn.deadline;
                self.dispatch(token, request);
            }
            Ok(None) => {
                if eof {
                    let cause = if self
                        .conns
                        .get(token)
                        .and_then(|c| c.as_ref())
                        .is_some_and(|c| c.inbuf.is_empty())
                    {
                        None // clean EOF between requests
                    } else {
                        Some("eof_mid_request")
                    };
                    self.close_conn(token, cause);
                }
            }
            Err(HttpError::TooLarge) => {
                self.respond(token, &Response::error(413, "request too large"), true)
            }
            Err(HttpError::UnsupportedMethod(m)) => self.respond(
                token,
                &Response::error(501, &format!("method {m} not implemented")),
                true,
            ),
            Err(HttpError::BadRequest(m)) => self.respond(token, &Response::error(400, &m), true),
            // Timeout can't arise from parsing; Io means undecodable
            // bytes — the threaded server closed silently, so do we.
            Err(HttpError::Timeout) | Err(HttpError::Io(_)) => self.teardown(token, "parse_io"),
        }
    }

    /// A new request's first bytes arrived: start its budget clock.
    fn start_request(&mut self, token: usize) {
        let deadline = self.config.request_timeout.map(|t| Instant::now() + t);
        let Some(Some(conn)) = self.conns.get_mut(token) else {
            return;
        };
        conn.state = ConnState::Reading;
        conn.deadline = deadline;
        if let Some(d) = deadline {
            self.arm_timer(token, TimerKind::Request, d);
        }
    }

    /// Hands a parsed request to the worker pool. The connection drops
    /// read interest until the response comes back, which is what keeps
    /// pipelining strictly in-order with one in-flight request.
    fn dispatch(&mut self, token: usize, request: Request) {
        let (epoch, close) = {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            conn.served += 1;
            let close = request.wants_close()
                || conn.served >= self.config.keep_alive.max_requests.max(1) as u64
                || self.stop.load(Ordering::SeqCst);
            conn.state = ConnState::Dispatched;
            (self.epochs[token], close)
        };
        self.update_interest(token);
        let job = Job {
            request,
            token,
            epoch,
            close,
            enqueued: Instant::now(),
            reactor: self.shared.clone(),
        };
        match self.queue.push_unbounded(job) {
            Ok(depth) => {
                self.config
                    .telemetry
                    .gauge("minaret_http_queue_depth", &[])
                    .set(depth as i64);
            }
            Err(PushError::Full(_)) => unreachable!("push_unbounded never reports Full"),
            Err(PushError::Closed(_)) => {
                // Workers are gone (shutdown raced ahead); refuse.
                self.respond(
                    token,
                    &Response::error(503, "shutting down")
                        .with_header("Retry-After", &self.config.retry_after_secs.to_string()),
                    true,
                );
            }
        }
    }

    /// Queues a response for writing and flushes as much as the socket
    /// accepts now.
    fn respond(&mut self, token: usize, response: &Response, close: bool) {
        let Some(Some(conn)) = self.conns.get_mut(token) else {
            return;
        };
        conn.outbuf = response.to_bytes_with(close);
        conn.written = 0;
        conn.state = ConnState::Writing(if close {
            AfterWrite::Close
        } else {
            AfterWrite::KeepAlive
        });
        self.drive_write(token);
    }

    /// Writes until done or `WouldBlock`. The request timer stays armed
    /// through the write, so a stalled peer can't park the response
    /// buffer forever when a budget is configured.
    fn drive_write(&mut self, token: usize) {
        loop {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            if conn.written >= conn.outbuf.len() {
                self.on_write_complete(token);
                return;
            }
            let written = conn.written;
            match conn.stream.write(&conn.outbuf[written..]) {
                Ok(0) => {
                    self.teardown(token, "write_error");
                    return;
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.update_interest(token);
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Peer reset mid-write: tear down this connection
                    // only — the loop and every other connection live on.
                    self.teardown(token, "write_error");
                    return;
                }
            }
        }
    }

    fn on_write_complete(&mut self, token: usize) {
        let after = {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            match conn.state {
                ConnState::Writing(after) => after,
                _ => return,
            }
        };
        match after {
            AfterWrite::Close => self.close_conn(token, None),
            AfterWrite::Linger => {
                let Some(Some(conn)) = self.conns.get_mut(token) else {
                    return;
                };
                let _ = conn.stream.shutdown(Shutdown::Write);
                conn.state = ConnState::Draining;
                self.update_interest(token);
                // Discard anything already buffered; EOF may be pending.
                self.drain_discard(token);
            }
            AfterWrite::KeepAlive => {
                let more = {
                    let Some(Some(conn)) = self.conns.get_mut(token) else {
                        return;
                    };
                    conn.outbuf = Vec::new();
                    conn.written = 0;
                    conn.deadline = None;
                    conn.state = ConnState::Idle;
                    !conn.inbuf.is_empty()
                };
                if self.draining {
                    // Drain protocol: the in-flight request was served;
                    // no new ones are accepted on this connection.
                    self.close_conn(token, None);
                    return;
                }
                if more {
                    // Pipelined bytes already buffered: next request
                    // starts now, fresh budget.
                    self.advance_parse(token, false);
                    // advance_parse may have left it Idle-with-partial →
                    // it set Reading; either way interest is READ below.
                } else if let Some(idle) = self.config.keep_alive.idle_timeout {
                    self.arm_timer(token, TimerKind::Idle, Instant::now() + idle);
                }
                self.update_interest(token);
            }
        }
    }

    /// Read-and-discard until EOF for a lingering close.
    fn drain_discard(&mut self, token: usize) {
        let Some(Some(conn)) = self.conns.get_mut(token) else {
            return;
        };
        let mut sink = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut sink) {
                Ok(0) => {
                    self.close_conn(token, None);
                    return;
                }
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token, None);
                    return;
                }
            }
        }
    }

    // ---- timers --------------------------------------------------------

    fn arm_timer(&mut self, token: usize, kind: TimerKind, deadline: Instant) {
        let Some(Some(conn)) = self.conns.get_mut(token) else {
            return;
        };
        let gen = conn.next_timer_gen();
        let epoch = self.epochs[token];
        self.wheel.schedule(
            deadline,
            TimerId {
                token,
                epoch,
                gen,
                kind,
            },
        );
    }

    fn on_timer(&mut self, id: TimerId) {
        let Some(Some(conn)) = self.conns.get(id.token) else {
            return;
        };
        if self.epochs[id.token] != id.epoch || conn.timer_gen != id.gen {
            return; // stale: the connection moved on or the slot turned over
        }
        match (id.kind, conn.state) {
            (TimerKind::Idle, ConnState::Idle) => self.close_conn(id.token, None),
            (TimerKind::Request, ConnState::Reading)
            | (TimerKind::Request, ConnState::Dispatched) => {
                // Mid-read stall or a handler overrunning its budget:
                // 408 and close. A late worker completion is dropped by
                // the Dispatched-state check in `on_msg`.
                self.respond(id.token, &Response::error(408, "request timed out"), true);
            }
            (TimerKind::Request, ConnState::Writing(_)) => {
                // The budget expired while flushing: the peer stopped
                // reading. Drop the connection.
                self.teardown(id.token, "write_stall");
            }
            (TimerKind::Linger, _) => self.close_conn(id.token, None),
            _ => {}
        }
    }

    // ---- teardown ------------------------------------------------------

    /// Reconciles the registered epoll interest with the state machine.
    fn update_interest(&mut self, token: usize) {
        let Some(Some(conn)) = self.conns.get_mut(token) else {
            return;
        };
        let want = conn.desired_interest();
        if conn.interest == want {
            return;
        }
        if self
            .epoll
            .modify(conn.stream.as_raw_fd(), token as u64, want)
            .is_err()
        {
            self.teardown(token, "epoll_error");
            return;
        }
        conn.interest = want;
    }

    /// Abnormal close: peer reset, undecodable bytes, syscall failure.
    /// The connection is removed and counted; the event loop survives.
    fn teardown(&mut self, token: usize, cause: TeardownCause) {
        self.close_conn(token, Some(cause));
    }

    fn close_conn(&mut self, token: usize, cause: Option<TeardownCause>) {
        let Some(slot) = self.conns.get_mut(token) else {
            return;
        };
        let Some(conn) = slot.take() else {
            return;
        };
        self.live -= 1;
        self.epochs[token] += 1;
        self.free.push(token);
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        if conn.counted_ip {
            release_ip(&self.per_ip, conn.ip);
        }
        let t = &self.config.telemetry;
        if conn.admitted {
            t.gauge("minaret_http_open_connections", &[]).add(-1);
        }
        if conn.served > 0 {
            t.histogram("minaret_http_requests_per_connection", &[])
                .observe(conn.served);
        }
        if let Some(cause) = cause {
            t.counter("minaret_http_conn_teardowns_total", &[("cause", cause)])
                .inc();
        }
        // Dropping `conn.stream` closes the fd.
    }

    // ---- drain ---------------------------------------------------------

    /// Entered once when the stop flag is observed: stop accepting and
    /// sweep existing connections. In-flight requests finish (with
    /// `Connection: close`); idle connections get one final
    /// already-buffered read, then close.
    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
            // Dropping the listener resets anything still in the backlog,
            // which the harness treats as "no response" — allowed.
        }
        for token in 0..self.conns.len() {
            if self.conns[token].is_some() {
                self.drain_touch(token);
            }
        }
    }

    /// Drain policy for one connection. `Reading`, `Dispatched`,
    /// `Writing` and `Draining` states are left to finish under their
    /// own timers; an idle connection is served one last time if bytes
    /// are already pending, otherwise closed.
    fn drain_touch(&mut self, token: usize) {
        let state = match self.conns.get(token) {
            Some(Some(conn)) => conn.state,
            _ => return,
        };
        if state == ConnState::Idle {
            // One non-blocking read: pending pipelined bytes are served
            // (their response will carry `Connection: close` via the
            // stop check in `dispatch`); silence means close now.
            self.drive_read(token);
            if let Some(Some(conn)) = self.conns.get(token) {
                if conn.state == ConnState::Idle && conn.inbuf.is_empty() {
                    self.close_conn(token, None);
                }
            }
        }
    }
}

pub(crate) fn release_ip(per_ip: &Mutex<HashMap<IpAddr, usize>>, ip: Option<IpAddr>) {
    let Some(ip) = ip else { return };
    let mut map = per_ip.lock().expect("per-ip lock poisoned");
    if let Some(count) = map.get_mut(&ip) {
        *count = count.saturating_sub(1);
        if *count == 0 {
            map.remove(&ip);
        }
    }
}
