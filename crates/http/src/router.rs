//! Pattern-based request routing.

use std::collections::HashMap;
use std::sync::Arc;

use crate::request::{Method, Request};
use crate::response::Response;

/// Path parameters captured by `:name` segments.
pub type Params = HashMap<String, String>;

type Handler = Arc<dyn Fn(&Request, &Params) -> Response + Send + Sync>;

struct Route {
    method: Method,
    segments: Vec<Segment>,
    handler: Handler,
}

enum Segment {
    Literal(String),
    Param(String),
}

/// Routes requests to handlers by method + path pattern.
///
/// Patterns are `/`-separated; `:name` segments capture the value into
/// [`Params`]. First registered match wins. Unmatched paths get a JSON
/// 404; matched paths with the wrong method get a 405.
pub struct Router {
    routes: Vec<Route>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Router({} routes)", self.routes.len())
    }
}

impl Default for Router {
    fn default() -> Self {
        Self::new()
    }
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self { routes: Vec::new() }
    }

    /// Registers a route.
    pub fn route(
        &mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        let segments = pattern
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix(':') {
                    Segment::Param(name.to_string())
                } else {
                    Segment::Literal(s.to_string())
                }
            })
            .collect();
        self.routes.push(Route {
            method,
            segments,
            handler: Arc::new(handler),
        });
        self
    }

    /// GET sugar.
    pub fn get(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Get, pattern, handler)
    }

    /// POST sugar.
    pub fn post(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Post, pattern, handler)
    }

    /// Dispatches a request.
    pub fn dispatch(&self, request: &Request) -> Response {
        let path_segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        let mut path_matched = false;
        for route in &self.routes {
            match match_segments(&route.segments, &path_segments) {
                Some(params) => {
                    if route.method == request.method {
                        return (route.handler)(request, &params);
                    }
                    path_matched = true;
                }
                None => continue,
            }
        }
        if path_matched {
            Response::error(405, "method not allowed for this path")
        } else {
            Response::error(404, "no such route")
        }
    }
}

fn match_segments(pattern: &[Segment], path: &[&str]) -> Option<Params> {
    if pattern.len() != path.len() {
        return None;
    }
    let mut params = Params::new();
    for (seg, actual) in pattern.iter().zip(path) {
        match seg {
            Segment::Literal(lit) if lit == actual => {}
            Segment::Literal(_) => return None,
            Segment::Param(name) => {
                params.insert(name.clone(), actual.to_string());
            }
        }
    }
    Some(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: Method, path: &str) -> Request {
        Request {
            method,
            path: path.to_string(),
            query: vec![],
            headers: vec![],
            body: vec![],
            minor_version: 1,
            deadline: None,
        }
    }

    fn router() -> Router {
        let mut r = Router::new();
        r.get("/health", |_, _| Response::text(200, "ok"));
        r.get("/authors/:id", |_, params| {
            Response::text(200, format!("author {}", params["id"]))
        });
        r.post("/recommend", |_, _| Response::text(201, "queued"));
        r
    }

    #[test]
    fn literal_routes_match() {
        let r = router();
        let resp = r.dispatch(&request(Method::Get, "/health"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok");
    }

    #[test]
    fn params_are_captured() {
        let r = router();
        let resp = r.dispatch(&request(Method::Get, "/authors/42"));
        assert_eq!(resp.body, b"author 42");
        // Trailing slash tolerated (empty segments dropped).
        let resp2 = r.dispatch(&request(Method::Get, "/authors/42/"));
        assert_eq!(resp2.body, b"author 42");
    }

    #[test]
    fn unknown_path_is_404_wrong_method_is_405() {
        let r = router();
        assert_eq!(r.dispatch(&request(Method::Get, "/nope")).status, 404);
        assert_eq!(r.dispatch(&request(Method::Get, "/recommend")).status, 405);
        assert_eq!(r.dispatch(&request(Method::Post, "/health")).status, 405);
    }

    #[test]
    fn segment_count_must_match() {
        let r = router();
        assert_eq!(r.dispatch(&request(Method::Get, "/authors")).status, 404);
        assert_eq!(
            r.dispatch(&request(Method::Get, "/authors/1/2")).status,
            404
        );
    }
}
