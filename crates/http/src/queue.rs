//! A bounded MPMC queue with explicit overload and shutdown semantics.
//!
//! This is the admission-control primitive of the serving layer: the
//! acceptor `try_push`es connections and **sheds** on [`PushError::Full`]
//! instead of queueing unboundedly; workers `pop` until the queue is
//! closed *and* drained, which is what makes graceful shutdown finish
//! every accepted connection instead of dropping it.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a `try_push` was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — the caller should shed the item
    /// (overload policy), not wait.
    Full(T),
    /// The queue was closed (shutdown) — no new work is admitted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue.
///
/// Unlike a channel, it never blocks producers: `try_push` either
/// succeeds or reports why, so overload policy lives at the call site.
/// Consumers block in [`pop`](BoundedQueue::pop) until an item arrives
/// or the queue is closed and empty.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoundedQueue(cap {})", self.capacity)
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking. Returns the new depth on success.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available (returns `Some`) or the queue is
    /// closed **and** drained (returns `None`). Items pushed before
    /// `close` are always delivered — that is the drain guarantee.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Enqueues without blocking and without the capacity check; only a
    /// closed queue refuses. The reactor uses this for requests from
    /// **already admitted** connections: admission control happens once,
    /// at accept time (`len() >= capacity` sheds the connection), and an
    /// admitted client must never have an in-flight request dropped just
    /// because other connections got busy. Depth stays bounded by the
    /// number of open connections, each of which carries at most one
    /// in-flight request.
    pub fn push_unbounded(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and every consumer wakes once the remaining items drain.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Whether `close` has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_refuses_pushes_but_drains() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        match q.try_push("c") {
            Err(PushError::Closed("c")) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push_or_close() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        q.try_push(7u32).unwrap();
        assert_eq!(h.join().unwrap(), Some(7));

        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn push_unbounded_ignores_capacity_but_not_close() {
        let q = BoundedQueue::new(1);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
        assert_eq!(q.push_unbounded(2).unwrap(), 2);
        assert_eq!(q.len(), 2);
        q.close();
        assert!(matches!(q.push_unbounded(3), Err(PushError::Closed(3))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
    }
}
