//! Per-connection state for the reactor.
//!
//! Every socket the reactor owns is a [`Conn`] stepping through a small
//! state machine:
//!
//! ```text
//!          ┌───────────── keep-alive ─────────────┐
//!          v                                      │
//! accept → Idle → Reading → Dispatched → Writing ─┤
//!          │        │            │                └→ close
//!          │        └ 4xx/408 ───┴──→ Writing(Close)
//!          └→ (shed 503/429) Writing(Linger) → Draining → close
//! ```
//!
//! - **Idle**: waiting for the first byte of the next request, under the
//!   keep-alive idle timer.
//! - **Reading**: a partial request is buffered; the per-request budget
//!   timer is armed and resumable parsing ([`RequestBuffer`]) picks up
//!   wherever the last readable event left off.
//! - **Dispatched**: exactly one request is with the worker pool; read
//!   interest is dropped so pipelined bytes wait in the kernel buffer
//!   instead of spinning the event loop.
//! - **Writing**: flushing the serialized response; what happens on
//!   completion is pre-decided by [`AfterWrite`].
//! - **Draining**: lingering close for shed connections — the refusal
//!   was written and the peer's unread bytes are discarded until EOF so
//!   the close is a FIN, not an RST that could destroy the 503/429.
//!
//! The reactor itself drives the transitions; this module only holds
//! the state so each piece stays independently readable.

use std::net::{IpAddr, TcpStream};
use std::time::Instant;

use minaret_sys::Interest;

use crate::request::RequestBuffer;

/// What to do once the write buffer fully flushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AfterWrite {
    /// Reset for the next request on this connection.
    KeepAlive,
    /// Close immediately (response carried `Connection: close`).
    Close,
    /// Half-close and drain to EOF (shed responses on never-read input).
    Linger,
}

/// Connection lifecycle states (see module docs for the diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Between requests, idle timer armed.
    Idle,
    /// Partial request buffered, request timer armed.
    Reading,
    /// One request in the worker pool; awaiting its response.
    Dispatched,
    /// Flushing a response.
    Writing(AfterWrite),
    /// Read-and-discard until EOF (lingering close).
    Draining,
}

/// One connection owned by a reactor.
pub(crate) struct Conn {
    /// The non-blocking socket.
    pub stream: TcpStream,
    /// Peer IP, for per-client burst accounting.
    pub ip: Option<IpAddr>,
    /// Whether this connection holds a per-IP burst slot to release.
    pub counted_ip: bool,
    /// Whether this connection was admitted (vs a shed refusal); only
    /// admitted connections count in the open-connections gauge.
    pub admitted: bool,
    pub state: ConnState,
    /// Resumable receive buffer.
    pub inbuf: RequestBuffer,
    /// Serialized response bytes being flushed.
    pub outbuf: Vec<u8>,
    /// Prefix of `outbuf` already written.
    pub written: usize,
    /// Requests served (dispatched) on this connection.
    pub served: u64,
    /// Latest armed timer generation; stale wheel entries are ignored.
    pub timer_gen: u64,
    /// Interest currently registered with epoll.
    pub interest: Interest,
    /// Absolute budget deadline of the in-flight request.
    pub deadline: Option<Instant>,
}

impl Conn {
    pub fn new(stream: TcpStream, ip: Option<IpAddr>, counted_ip: bool, admitted: bool) -> Conn {
        Conn {
            stream,
            ip,
            counted_ip,
            admitted,
            state: ConnState::Idle,
            inbuf: RequestBuffer::new(),
            outbuf: Vec::new(),
            written: 0,
            served: 0,
            timer_gen: 0,
            interest: Interest::READ,
            deadline: None,
        }
    }

    /// The epoll interest this connection's state wants. `Dispatched`
    /// subscribes to nothing: there is nothing to write yet, and reading
    /// ahead would just busy-loop on level-triggered pipelined bytes
    /// (`EPOLLERR`/`EPOLLHUP` are always delivered regardless).
    pub fn desired_interest(&self) -> Interest {
        match self.state {
            ConnState::Idle | ConnState::Reading | ConnState::Draining => Interest::READ,
            ConnState::Dispatched => Interest::NONE,
            ConnState::Writing(_) => Interest::WRITE,
        }
    }

    /// Arms a new timer generation, invalidating all previously armed
    /// timers for this connection.
    pub fn next_timer_gen(&mut self) -> u64 {
        self.timer_gen += 1;
        self.timer_gen
    }
}
