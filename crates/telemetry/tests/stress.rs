//! Concurrency stress: many threads hammering shared series must not
//! lose increments or observations.

use std::time::Duration;

use minaret_telemetry::{SnapshotValue, Telemetry};

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 20_000;

#[test]
fn no_lost_counter_increments_under_contention() {
    let telemetry = Telemetry::new();
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let telemetry = telemetry.clone();
            scope.spawn(move || {
                // Half the threads hit a shared series, half a
                // per-thread one, so both contended and uncontended
                // paths are exercised (including first-registration
                // races on the same name).
                let labels_own = worker.to_string();
                for i in 0..OPS_PER_THREAD {
                    telemetry.counter("stress_shared_total", &[]).inc();
                    telemetry
                        .counter("stress_per_thread_total", &[("t", &labels_own)])
                        .inc();
                    if i % 64 == 0 {
                        telemetry.gauge("stress_gauge", &[]).add(1);
                    }
                }
            });
        }
    });
    assert_eq!(
        telemetry.counter("stress_shared_total", &[]).get(),
        THREADS as u64 * OPS_PER_THREAD
    );
    let per_thread_sum: u64 = telemetry
        .snapshot()
        .iter()
        .filter(|m| m.name == "stress_per_thread_total")
        .map(|m| match m.value {
            SnapshotValue::Counter(v) => v,
            _ => panic!("wrong kind"),
        })
        .sum();
    assert_eq!(per_thread_sum, THREADS as u64 * OPS_PER_THREAD);
}

#[test]
fn no_lost_histogram_observations_under_contention() {
    let telemetry = Telemetry::new();
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let telemetry = telemetry.clone();
            scope.spawn(move || {
                let h = telemetry.histogram("stress_lat_us", &[]);
                for i in 0..OPS_PER_THREAD {
                    h.observe(worker as u64 * 1000 + i % 997);
                }
            });
        }
    });
    let snap = telemetry.histogram("stress_lat_us", &[]).snapshot();
    assert_eq!(snap.count, THREADS as u64 * OPS_PER_THREAD);
    let bucket_total: u64 = snap.buckets.iter().sum();
    assert_eq!(
        bucket_total, snap.count,
        "bucket counts disagree with total"
    );
}

#[test]
fn traces_from_many_threads_all_land_in_the_ring() {
    let telemetry = Telemetry::with_trace_capacity(THREADS * 4);
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let telemetry = telemetry.clone();
            scope.spawn(move || {
                for i in 0..3 {
                    let trace = telemetry.trace(&format!("w{worker}-{i}"));
                    let _span = trace.span("work");
                    std::thread::sleep(Duration::from_micros(50));
                }
            });
        }
    });
    let traces = telemetry.recent_traces();
    assert_eq!(traces.len(), THREADS * 3);
    assert!(traces.iter().all(|t| t.spans.len() == 1));
}
