//! The labelled metrics registry: counters, gauges, histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// The kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Arbitrary signed value.
    Gauge,
    /// Log-bucketed value distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn prometheus_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Canonical label set: sorted, owned pairs.
pub(crate) type LabelSet = Vec<(String, String)>;

fn canonical_labels(labels: &[(&str, &str)]) -> LabelSet {
    let mut owned: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    owned.sort();
    owned
}

enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCell>),
}

struct Family {
    kind: MetricKind,
    series: BTreeMap<LabelSet, Series>,
}

/// All registered metric families, keyed by name.
pub(crate) struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    pub(crate) fn new() -> Self {
        MetricsRegistry {
            families: RwLock::new(BTreeMap::new()),
        }
    }

    fn series<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl Fn() -> Series,
        extract: impl Fn(&Series) -> Option<T>,
    ) -> T {
        let labels = canonical_labels(labels);
        // Fast path: the series already exists.
        {
            let families = self.families.read();
            if let Some(family) = families.get(name) {
                assert_eq!(
                    family.kind, kind,
                    "metric {name:?} registered as {:?}, requested as {kind:?}",
                    family.kind
                );
                if let Some(series) = family.series.get(&labels) {
                    return extract(series).expect("series kind matches family kind");
                }
            }
        }
        let mut families = self.families.write();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name:?} registered as {:?}, requested as {kind:?}",
            family.kind
        );
        let series = family.series.entry(labels).or_insert_with(make);
        extract(series).expect("series kind matches family kind")
    }

    pub(crate) fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter(Some(self.series(
            name,
            labels,
            MetricKind::Counter,
            || Series::Counter(Arc::new(AtomicU64::new(0))),
            |s| match s {
                Series::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )))
    }

    pub(crate) fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge(Some(self.series(
            name,
            labels,
            MetricKind::Gauge,
            || Series::Gauge(Arc::new(AtomicI64::new(0))),
            |s| match s {
                Series::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )))
    }

    pub(crate) fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        Histogram(Some(self.series(
            name,
            labels,
            MetricKind::Histogram,
            || Series::Histogram(Arc::new(HistogramCell::new())),
            |s| match s {
                Series::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )))
    }

    pub(crate) fn snapshot(&self) -> Vec<MetricSnapshot> {
        let families = self.families.read();
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (labels, series) in family.series.iter() {
                out.push(MetricSnapshot {
                    name: name.clone(),
                    kind: family.kind,
                    labels: labels.clone(),
                    value: match series {
                        Series::Counter(c) => SnapshotValue::Counter(c.load(Ordering::Relaxed)),
                        Series::Gauge(g) => SnapshotValue::Gauge(g.load(Ordering::Relaxed)),
                        Series::Histogram(h) => SnapshotValue::Histogram(h.snapshot()),
                    },
                });
            }
        }
        out
    }
}

/// One series at a point in time (see [`crate::Telemetry::snapshot`]).
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Family name, e.g. `minaret_source_requests_total`.
    pub name: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Sorted label pairs identifying the series within the family.
    pub labels: Vec<(String, String)>,
    /// The observed value.
    pub value: SnapshotValue,
}

/// The value part of a [`MetricSnapshot`].
#[derive(Debug, Clone)]
pub enum SnapshotValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// A monotonically increasing counter.
///
/// Handles from [`crate::Telemetry::disabled`] are inert; increments
/// wrap on overflow rather than panicking (an instrumentation library
/// must never take the process down).
#[derive(Clone)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub(crate) fn noop() -> Self {
        Counter(None)
    }

    /// Adds one.
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Adds `n` (wrapping on overflow).
    pub fn inc_by(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Clone)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    pub(crate) fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n`.
    pub fn add(&self, n: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Number of finite histogram buckets; bucket `i` covers `(2^(i-1), 2^i]`
/// (bucket 0 covers `[0, 1]`). Values above `2^(BUCKETS-1)` land in the
/// overflow bucket. 2^40 µs ≈ 13 days, ample for latencies.
const BUCKETS: usize = 41;

pub(crate) struct HistogramCell {
    /// Per-bucket (non-cumulative) counts; index [`BUCKETS`] is overflow.
    buckets: [AtomicU64; BUCKETS + 1],
    count: AtomicU64,
    sum: AtomicU64,
}

fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        // ceil(log2(v)) for v >= 2.
        let idx = 64 - (v - 1).leading_zeros() as usize;
        idx.min(BUCKETS)
    }
}

/// Upper bound of finite bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    1u64 << i
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A log-bucketed histogram of `u64` observations.
#[derive(Clone)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    pub(crate) fn noop() -> Self {
        Histogram(None)
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.observe(v);
        }
    }

    /// Records a duration in microseconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Current state (empty for a no-op handle).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |cell| cell.snapshot())
    }
}

/// Point-in-time state of one histogram series.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-cumulative per-bucket counts; the final entry is overflow.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; BUCKETS + 1],
        }
    }

    /// Iterator over `(upper_bound, cumulative_count)` for the finite
    /// buckets, in ascending bound order. The overflow bucket is not
    /// included; `count` covers it.
    pub fn cumulative(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut acc = 0u64;
        self.buckets[..self.buckets.len() - 1]
            .iter()
            .enumerate()
            .map(move |(i, c)| {
                acc += c;
                (bucket_bound(i), acc)
            })
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear
    /// interpolation inside the matching bucket. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= rank {
                let lower = if i == 0 { 0 } else { bucket_bound(i - 1) };
                let upper = if i >= BUCKETS {
                    // Overflow bucket: no meaningful upper bound; report
                    // its lower edge.
                    return lower as f64;
                } else {
                    bucket_bound(i)
                };
                let within = (rank - cum as f64) / *c as f64;
                return lower as f64 + within * (upper - lower) as f64;
            }
            cum = next;
        }
        bucket_bound(BUCKETS - 1) as f64
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(u64::MAX), BUCKETS);
    }

    #[test]
    fn every_value_is_at_most_its_bucket_bound() {
        for v in [0u64, 1, 2, 3, 7, 8, 9, 1000, 123_456_789] {
            let idx = bucket_index(v);
            assert!(
                v <= bucket_bound(idx),
                "value {v} above bound of bucket {idx}"
            );
            if idx > 0 {
                assert!(v > bucket_bound(idx - 1), "value {v} fits a lower bucket");
            }
        }
    }

    #[test]
    fn quantiles_bracket_uniform_data() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h", &[]);
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, 500_500);
        // Log buckets are coarse; assert the right bucket, not the
        // exact value: p50 of 1..=1000 is 500, inside (256, 512].
        let p50 = snap.p50();
        assert!((256.0..=512.0).contains(&p50), "p50 = {p50}");
        let p99 = snap.p99();
        assert!((512.0..=1024.0).contains(&p99), "p99 = {p99}");
        assert!(snap.p95() <= p99 + f64::EPSILON);
        assert_eq!(snap.quantile(1.0), snap.quantile(2.0)); // clamped
    }

    #[test]
    fn quantile_of_constant_stream_sits_in_its_bucket() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h", &[]);
        for _ in 0..100 {
            h.observe(300);
        }
        let snap = h.snapshot();
        for q in [0.01, 0.5, 0.95, 0.99] {
            let est = snap.quantile(q);
            assert!((256.0..=512.0).contains(&est), "q{q} = {est}");
        }
    }

    #[test]
    fn counter_wraps_instead_of_panicking() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c", &[]);
        c.inc_by(u64::MAX);
        c.inc_by(3);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("g", &[("phase", "filtering")]);
        g.set(10);
        g.add(5);
        g.sub(7);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = MetricsRegistry::new();
        reg.counter("c", &[("a", "1"), ("b", "2")]).inc();
        reg.counter("c", &[("b", "2"), ("a", "1")]).inc();
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        match snap[0].value {
            SnapshotValue::Counter(v) => assert_eq!(v, 2),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflict_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("same", &[]).inc();
        let _ = reg.gauge("same", &[]);
    }
}
