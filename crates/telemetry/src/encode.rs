//! Text encoders: Prometheus exposition format and a human table.

use std::fmt::Write as _;

use crate::metrics::{MetricSnapshot, SnapshotValue};

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Encodes a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` headers, one series per line, histograms
/// expanded into `_bucket`/`_sum`/`_count`.
pub(crate) fn prometheus(snapshot: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for metric in snapshot {
        if last_family != Some(metric.name.as_str()) {
            let _ = writeln!(
                out,
                "# TYPE {} {}",
                metric.name,
                metric.kind.prometheus_name()
            );
            last_family = Some(metric.name.as_str());
        }
        let labels = label_block(&metric.labels, None);
        match &metric.value {
            SnapshotValue::Counter(v) => {
                let _ = writeln!(out, "{}{labels} {v}", metric.name);
            }
            SnapshotValue::Gauge(v) => {
                let _ = writeln!(out, "{}{labels} {v}", metric.name);
            }
            SnapshotValue::Histogram(h) => {
                let mut cum = 0;
                for (bound, cumulative) in h.cumulative() {
                    cum = cumulative;
                    // Skip interior empty prefixes? No: Prometheus
                    // expects monotone cumulative buckets; emitting all
                    // 41 is noisy, so only emit buckets up to the first
                    // one that covers every observation.
                    let le = label_block(&metric.labels, Some(("le", &bound.to_string())));
                    let _ = writeln!(out, "{}_bucket{le} {cumulative}", metric.name);
                    if cumulative == h.count {
                        break;
                    }
                }
                let _ = cum;
                let le = label_block(&metric.labels, Some(("le", "+Inf")));
                let _ = writeln!(out, "{}_bucket{le} {}", metric.name, h.count);
                let _ = writeln!(out, "{}_sum{labels} {}", metric.name, h.sum);
                let _ = writeln!(out, "{}_count{labels} {}", metric.name, h.count);
            }
        }
    }
    out
}

/// Renders a snapshot as an aligned plain-text table (the `minaret
/// stats` view). Histograms show count / mean / p50 / p95 / p99.
pub(crate) fn table(snapshot: &[MetricSnapshot]) -> String {
    let mut rows: Vec<[String; 3]> = vec![[
        "METRIC".to_string(),
        "LABELS".to_string(),
        "VALUE".to_string(),
    ]];
    for metric in snapshot {
        let labels = if metric.labels.is_empty() {
            "-".to_string()
        } else {
            metric
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let value = match &metric.value {
            SnapshotValue::Counter(v) => v.to_string(),
            SnapshotValue::Gauge(v) => v.to_string(),
            SnapshotValue::Histogram(h) => format!(
                "count={} mean={:.1} p50={:.0} p95={:.0} p99={:.0}",
                h.count,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            ),
        };
        rows.push([metric.name.clone(), labels, value]);
    }
    if rows.len() == 1 {
        return "(no metrics recorded)\n".to_string();
    }
    let widths = rows.iter().fold([0usize; 3], |mut w, row| {
        for (i, cell) in row.iter().enumerate() {
            w[i] = w[i].max(cell.chars().count());
        }
        w
    });
    let mut out = String::new();
    for row in &rows {
        let _ = writeln!(
            out,
            "{:w0$}  {:w1$}  {}",
            row[0],
            row[1],
            row[2],
            w0 = widths[0],
            w1 = widths[1]
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn prometheus_format_counters_and_gauges() {
        let t = Telemetry::new();
        t.counter("reqs_total", &[("route", "/recommend"), ("code", "200")])
            .inc_by(7);
        t.gauge("candidates", &[("phase", "filtering")]).set(-3);
        let text = t.encode_prometheus();
        assert!(text.contains("# TYPE reqs_total counter"), "{text}");
        assert!(
            text.contains("reqs_total{code=\"200\",route=\"/recommend\"} 7"),
            "{text}"
        );
        assert!(text.contains("# TYPE candidates gauge"), "{text}");
        assert!(
            text.contains("candidates{phase=\"filtering\"} -3"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_and_capped() {
        let t = Telemetry::new();
        let h = t.histogram("lat", &[]);
        h.observe(1); // bucket le=1
        h.observe(3); // bucket le=4
        h.observe(3);
        let text = t.encode_prometheus();
        assert!(text.contains("lat_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"4\"} 3"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_sum 7"), "{text}");
        assert!(text.contains("lat_count 3"), "{text}");
        // Emission stops at the first all-covering bucket.
        assert!(!text.contains("le=\"8\""), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let t = Telemetry::new();
        t.counter("c", &[("q", "say \"hi\"\nback\\slash")]).inc();
        let text = t.encode_prometheus();
        assert!(
            text.contains(r#"c{q="say \"hi\"\nback\\slash"} 1"#),
            "{text}"
        );
    }

    #[test]
    fn table_lists_each_series_once() {
        let t = Telemetry::new();
        t.counter("a_total", &[("s", "x")]).inc();
        t.histogram("b_us", &[]).observe(10);
        let table = t.render_table();
        assert!(table.starts_with("METRIC"), "{table}");
        assert!(table.contains("a_total"), "{table}");
        assert!(table.contains("s=x"), "{table}");
        assert!(table.contains("count=1"), "{table}");
        assert_eq!(table.lines().count(), 3, "{table}");
    }

    #[test]
    fn empty_registry_renders_placeholder() {
        let t = Telemetry::new();
        assert_eq!(t.render_table(), "(no metrics recorded)\n");
    }
}
