//! # minaret-telemetry
//!
//! In-process observability for the MINARET stack: a labelled metrics
//! registry (counters, gauges, log-bucketed histograms), lightweight
//! span tracing with a bounded ring of recent traces, and text
//! encoders (Prometheus exposition format and a human table).
//!
//! Everything hangs off a cheaply-cloneable [`Telemetry`] handle that
//! is threaded through constructors. [`Telemetry::new`] records;
//! [`Telemetry::disabled`] is a no-op handle with near-zero cost, so
//! call sites never need `if enabled` branches:
//!
//! ```
//! use minaret_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! telemetry
//!     .counter("minaret_source_requests_total", &[("source", "dblp")])
//!     .inc();
//! telemetry
//!     .histogram("minaret_fetch_seconds", &[("source", "dblp")])
//!     .observe_duration(std::time::Duration::from_millis(12));
//!
//! {
//!     let trace = telemetry.trace("recommend");
//!     let _phase = trace.span("extraction");
//!     // ... work ...
//! } // trace lands in the recent-traces ring here
//!
//! let text = telemetry.encode_prometheus();
//! assert!(text.contains("minaret_source_requests_total{source=\"dblp\"} 1"));
//! assert_eq!(telemetry.recent_traces().len(), 1);
//! ```
//!
//! The crate has no dependencies beyond std atomics and `parking_lot`,
//! and never spawns threads or does I/O: scraping is pull-based via
//! [`Telemetry::encode_prometheus`] / [`Telemetry::recent_traces`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod encode;
mod metrics;
mod spans;

use std::sync::Arc;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricSnapshot, SnapshotValue,
};
pub use spans::{FinishedTrace, Span, SpanRecord, Trace};

use metrics::MetricsRegistry;
use spans::TraceRing;

/// How many finished traces the ring keeps before evicting the oldest.
pub const DEFAULT_TRACE_CAPACITY: usize = 64;

struct Inner {
    metrics: MetricsRegistry,
    traces: TraceRing,
}

/// Handle to a telemetry sink, shared by every instrumented component.
///
/// Cloning is cheap (an `Arc` bump, or nothing for the disabled
/// handle). All methods are safe to call from any thread.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A recording handle with the default trace-ring capacity.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A recording handle keeping at most `capacity` finished traces.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                metrics: MetricsRegistry::new(),
                traces: TraceRing::new(capacity),
            })),
        }
    }

    /// A no-op handle: every metric/span call returns an inert object.
    ///
    /// Existing call sites that do not care about telemetry pass this;
    /// the cost per instrumented operation is one branch.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A monotonically increasing counter for the given series.
    ///
    /// Series identity is `(name, labels)`; labels are sorted
    /// internally, so argument order does not matter. Registering the
    /// same name as two different metric kinds panics.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.inner {
            Some(inner) => inner.metrics.counter(name, labels),
            None => Counter::noop(),
        }
    }

    /// A gauge (set/add/sub) for the given series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.inner {
            Some(inner) => inner.metrics.gauge(name, labels),
            None => Gauge::noop(),
        }
    }

    /// A log-bucketed histogram for the given series.
    ///
    /// Values are unit-free `u64`s; durations are conventionally
    /// recorded in microseconds via [`Histogram::observe_duration`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match &self.inner {
            Some(inner) => inner.metrics.histogram(name, labels),
            None => Histogram::noop(),
        }
    }

    /// Starts a trace; spans opened from it are collected and the
    /// whole trace lands in the recent-traces ring when dropped.
    pub fn trace(&self, name: &str) -> Trace {
        match &self.inner {
            Some(inner) => Trace::recording(name, Arc::clone(inner).into()),
            None => Trace::noop(),
        }
    }

    /// The most recently finished traces, newest first.
    pub fn recent_traces(&self) -> Vec<FinishedTrace> {
        match &self.inner {
            Some(inner) => inner.traces.recent(),
            None => Vec::new(),
        }
    }

    /// A point-in-time snapshot of every registered series, sorted by
    /// name then labels.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        match &self.inner {
            Some(inner) => inner.metrics.snapshot(),
            None => Vec::new(),
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn encode_prometheus(&self) -> String {
        encode::prometheus(&self.snapshot())
    }

    /// Renders the registry as a plain-text table (for `minaret stats`).
    pub fn render_table(&self) -> String {
        encode::table(&self.snapshot())
    }
}

impl Inner {
    pub(crate) fn trace_ring(&self) -> &TraceRing {
        &self.traces
    }
}

pub(crate) use spans::TraceSink;

impl From<Arc<Inner>> for TraceSink {
    fn from(inner: Arc<Inner>) -> TraceSink {
        TraceSink::new(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_handle_is_fully_inert() {
        let t = Telemetry::disabled();
        t.counter("c", &[]).inc();
        t.gauge("g", &[]).set(9);
        t.histogram("h", &[]).observe(5);
        let trace = t.trace("r");
        drop(trace.span("s"));
        drop(trace);
        assert!(!t.is_enabled());
        assert!(t.snapshot().is_empty());
        assert!(t.recent_traces().is_empty());
        assert_eq!(t.encode_prometheus(), "");
    }

    #[test]
    fn end_to_end_counter_trace_and_encode() {
        let t = Telemetry::new();
        t.counter("requests_total", &[("route", "/recommend")])
            .inc();
        t.counter("requests_total", &[("route", "/recommend")])
            .inc();
        t.histogram("latency_us", &[])
            .observe_duration(Duration::from_micros(250));
        {
            let trace = t.trace("req");
            let _outer = trace.span("outer");
        }
        let text = t.encode_prometheus();
        assert!(
            text.contains("requests_total{route=\"/recommend\"} 2"),
            "{text}"
        );
        assert!(text.contains("latency_us_count 1"), "{text}");
        let traces = t.recent_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].spans.len(), 1);
        assert_eq!(traces[0].spans[0].name, "outer");
    }

    #[test]
    fn clones_share_the_same_registry() {
        let t = Telemetry::new();
        let u = t.clone();
        t.counter("shared", &[]).inc_by(3);
        u.counter("shared", &[]).inc_by(4);
        assert_eq!(t.counter("shared", &[]).get(), 7);
    }
}
