//! Span tracing: nested timed spans collected into per-request traces.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

/// Connects a live [`Trace`] back to the ring it finishes into.
pub(crate) struct TraceSink {
    inner: Arc<crate::Inner>,
}

impl TraceSink {
    pub(crate) fn new(inner: Arc<crate::Inner>) -> Self {
        TraceSink { inner }
    }
}

/// One completed, timed span within a trace.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name, e.g. `extraction`.
    pub name: String,
    /// Nesting depth at the time the span opened (0 = top level).
    pub depth: usize,
    /// Microseconds from trace start to span start.
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub duration_micros: u64,
}

/// A finished trace as stored in the recent-traces ring.
#[derive(Debug, Clone)]
pub struct FinishedTrace {
    /// Trace name, e.g. the route or operation (`recommend`).
    pub name: String,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
    /// Total trace duration in microseconds.
    pub total_micros: u64,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
}

struct TraceInner {
    sink: TraceSink,
    name: String,
    started: Instant,
    started_unix_ms: u64,
    spans: Mutex<Vec<SpanRecord>>,
    depth: AtomicUsize,
}

/// A live trace. Open spans with [`Trace::span`]; when the `Trace` is
/// dropped the whole thing lands in the recent-traces ring.
///
/// Traces from [`crate::Telemetry::disabled`] are inert and record
/// nothing.
pub struct Trace {
    inner: Option<TraceInner>,
}

impl Trace {
    pub(crate) fn recording(name: &str, sink: TraceSink) -> Self {
        let started_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis().min(u64::MAX as u128) as u64);
        Trace {
            inner: Some(TraceInner {
                sink,
                name: name.to_string(),
                started: Instant::now(),
                started_unix_ms,
                spans: Mutex::new(Vec::new()),
                depth: AtomicUsize::new(0),
            }),
        }
    }

    pub(crate) fn noop() -> Self {
        Trace { inner: None }
    }

    /// Whether this trace records anything.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a timed span; it records itself when dropped. Spans opened
    /// while another span guard is alive are marked one level deeper.
    pub fn span(&self, name: &str) -> Span<'_> {
        match &self.inner {
            Some(inner) => {
                let depth = inner.depth.fetch_add(1, Ordering::Relaxed);
                Span {
                    owner: Some(SpanOwner {
                        trace: inner,
                        name: name.to_string(),
                        start: Instant::now(),
                        depth,
                    }),
                }
            }
            None => Span { owner: None },
        }
    }
}

impl Drop for Trace {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let finished = FinishedTrace {
                name: inner.name,
                started_unix_ms: inner.started_unix_ms,
                total_micros: duration_micros(inner.started.elapsed()),
                spans: inner.spans.into_inner(),
            };
            inner.sink.inner.trace_ring().push(finished);
        }
    }
}

struct SpanOwner<'t> {
    trace: &'t TraceInner,
    name: String,
    start: Instant,
    depth: usize,
}

/// Guard for one open span; records itself into the parent trace on
/// drop.
pub struct Span<'t> {
    owner: Option<SpanOwner<'t>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(owner) = self.owner.take() {
            let record = SpanRecord {
                name: owner.name,
                depth: owner.depth,
                start_micros: duration_micros(owner.start.duration_since(owner.trace.started)),
                duration_micros: duration_micros(owner.start.elapsed()),
            };
            owner.trace.spans.lock().push(record);
            owner.trace.depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

fn duration_micros(d: std::time::Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

/// Bounded ring of finished traces; the oldest is evicted first.
pub(crate) struct TraceRing {
    capacity: usize,
    ring: Mutex<VecDeque<FinishedTrace>>,
}

impl TraceRing {
    pub(crate) fn new(capacity: usize) -> Self {
        TraceRing {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    pub(crate) fn push(&self, trace: FinishedTrace) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Newest first.
    pub(crate) fn recent(&self) -> Vec<FinishedTrace> {
        self.ring.lock().iter().rev().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn nested_spans_record_depths_and_order() {
        let t = Telemetry::new();
        {
            let trace = t.trace("req");
            let outer = trace.span("outer");
            {
                let _inner = trace.span("inner");
            }
            drop(outer);
            let _sibling = trace.span("sibling");
        }
        let traces = t.recent_traces();
        assert_eq!(traces.len(), 1);
        let spans = &traces[0].spans;
        // Completion order: inner, outer, sibling.
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["inner", "outer", "sibling"]);
        let depth_of = |n: &str| spans.iter().find(|s| s.name == n).unwrap().depth;
        assert_eq!(depth_of("outer"), 0);
        assert_eq!(depth_of("inner"), 1);
        assert_eq!(depth_of("sibling"), 0);
        for s in spans {
            assert!(s.duration_micros <= traces[0].total_micros);
            assert!(s.start_micros <= traces[0].total_micros);
        }
    }

    #[test]
    fn ring_is_bounded_and_newest_first() {
        let t = Telemetry::with_trace_capacity(3);
        for i in 0..5 {
            let _trace = t.trace(&format!("t{i}"));
        }
        let traces = t.recent_traces();
        let names: Vec<&str> = traces.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["t4", "t3", "t2"]);
    }

    #[test]
    fn zero_capacity_ring_keeps_nothing() {
        let t = Telemetry::with_trace_capacity(0);
        let _ = t.trace("dropped");
        assert!(t.recent_traces().is_empty());
    }
}
