//! The N-way sharded map: per-shard `RwLock`s, no whole-map lock.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

use parking_lot::RwLock;

use crate::hash::{stable_hash, FnvBuildHasher};
use crate::ConcurrentMap;

/// Default shard count. Power of two; generous relative to any worker
/// count this system runs so that distinct hot keys collide on a shard
/// rarely (the birthday bound at 8 workers over 64 shards is ~39% for
/// *any* collision, but per-operation collision probability — what
/// throughput sees — is ~11%).
const DEFAULT_SHARDS: usize = 64;

type Shard<K, V> = RwLock<HashMap<K, V, FnvBuildHasher>>;

/// A concurrent map split into independent `RwLock<HashMap>` shards.
///
/// The shard for a key is the **high bits** of [`stable_hash`], a pure
/// function of the key: deterministic across runs (tests can place two
/// keys on one shard on purpose) and uncorrelated with the low bits
/// the in-shard `HashMap` buckets by. Reads take one shard's read
/// lock; writes take one shard's write lock; nothing ever locks the
/// map as a whole — aggregate operations ([`len`], [`clear`],
/// [`for_each`], [`retain`]) visit shards one at a time.
///
/// [`len`]: ConcurrentMap::len
/// [`clear`]: ConcurrentMap::clear
/// [`for_each`]: ConcurrentMap::for_each
/// [`retain`]: ConcurrentMap::retain
pub struct ShardedMap<K, V> {
    shards: Box<[Shard<K, V>]>,
    /// `64 - log2(shards.len())`: how far right to shift a hash so the
    /// top bits index a shard.
    shift: u32,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> ShardedMap<K, V> {
    /// An empty map with the default shard count.
    #[must_use]
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty map with `shards` shards, rounded up to a power of two
    /// and clamped to `1..=65536`. One shard degrades gracefully to the
    /// single-lock design.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.clamp(1, 65_536).next_power_of_two();
        Self {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            shift: 64 - shards.trailing_zeros(),
        }
    }

    /// Number of shards (a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `key` lives on — a pure function of the key, stable
    /// for the process lifetime. Exposed so concurrency tests can
    /// construct same-shard and different-shard key pairs.
    pub fn shard_index<Q>(&self, key: &Q) -> usize
    where
        Q: ?Sized + Hash,
    {
        if self.shift == 64 {
            0
        } else {
            (stable_hash(key) >> self.shift) as usize
        }
    }

    fn shard<Q>(&self, key: &Q) -> &Shard<K, V>
    where
        Q: ?Sized + Hash,
    {
        &self.shards[self.shard_index(key)]
    }
}

impl<K, V> ConcurrentMap<K, V> for ShardedMap<K, V>
where
    K: Hash + Eq + Send + Sync,
    V: Clone + Send + Sync,
{
    fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: ?Sized + Hash + Eq,
    {
        self.shard(key).read().get(key).cloned()
    }

    fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).write().insert(key, value)
    }

    fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: ?Sized + Hash + Eq,
    {
        self.shard(key).write().remove(key)
    }

    fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> (V, bool) {
        let shard = self.shard(&key);
        if let Some(v) = shard.read().get(&key) {
            return (v.clone(), false);
        }
        // Re-check under the write lock: the loser of a same-key race
        // finds the winner's value here. `make` runs with only this
        // shard locked, so a blocking build stalls 1/N of the keyspace
        // instead of every caller.
        let mut guard = shard.write();
        match guard.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (e.get().clone(), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                let v = make();
                e.insert(v.clone());
                (v, true)
            }
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn clear(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let mut guard = s.write();
                let n = guard.len();
                guard.clear();
                n
            })
            .sum()
    }

    fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for s in self.shards.iter() {
            for (k, v) in s.read().iter() {
                f(k, v);
            }
        }
    }

    fn retain(&self, mut f: impl FnMut(&K, &mut V) -> bool) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let mut guard = s.write();
                let before = guard.len();
                guard.retain(|k, v| f(k, v));
                before - guard.len()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_up_and_clamps() {
        assert_eq!(ShardedMap::<u64, u64>::with_shards(0).shard_count(), 1);
        assert_eq!(ShardedMap::<u64, u64>::with_shards(1).shard_count(), 1);
        assert_eq!(ShardedMap::<u64, u64>::with_shards(5).shard_count(), 8);
        assert_eq!(ShardedMap::<u64, u64>::with_shards(64).shard_count(), 64);
    }

    #[test]
    fn single_shard_routes_everything_to_shard_zero() {
        let map: ShardedMap<u64, u64> = ShardedMap::with_shards(1);
        for k in 0..256 {
            assert_eq!(map.shard_index(&k), 0);
        }
    }

    #[test]
    fn borrowed_lookup_reaches_the_same_shard_as_the_owned_key() {
        use std::sync::Arc;
        let map: ShardedMap<Arc<str>, u64> = ShardedMap::new();
        for i in 0..64 {
            let label = format!("topic {i}");
            let key: Arc<str> = Arc::from(label.as_str());
            assert_eq!(map.shard_index(&key), map.shard_index(label.as_str()));
            map.insert(key, i);
            assert_eq!(map.get(label.as_str()), Some(i));
        }
    }
}
