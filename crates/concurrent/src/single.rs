//! The single-lock baseline: one `RwLock` around one `HashMap`.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

use parking_lot::RwLock;

use crate::hash::FnvBuildHasher;
use crate::ConcurrentMap;

/// One `RwLock<HashMap>` — the design every hot structure used before
/// sharding. Every write excludes every reader of every key; kept as
/// the observable-behaviour baseline the sharded map is tested against
/// and the contention benchmark measures.
pub struct SingleLockMap<K, V> {
    inner: RwLock<HashMap<K, V, FnvBuildHasher>>,
}

impl<K, V> Default for SingleLockMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> SingleLockMap<K, V> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: RwLock::new(HashMap::default()),
        }
    }
}

impl<K, V> ConcurrentMap<K, V> for SingleLockMap<K, V>
where
    K: Hash + Eq + Send + Sync,
    V: Clone + Send + Sync,
{
    fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: ?Sized + Hash + Eq,
    {
        self.inner.read().get(key).cloned()
    }

    fn insert(&self, key: K, value: V) -> Option<V> {
        self.inner.write().insert(key, value)
    }

    fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: ?Sized + Hash + Eq,
    {
        self.inner.write().remove(key)
    }

    fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> (V, bool) {
        if let Some(v) = self.inner.read().get(&key) {
            return (v.clone(), false);
        }
        // The whole-map write lock is held across `make` — the cost the
        // sharded implementation confines to one shard.
        let mut inner = self.inner.write();
        match inner.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (e.get().clone(), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                let v = make();
                e.insert(v.clone());
                (v, true)
            }
        }
    }

    fn len(&self) -> usize {
        self.inner.read().len()
    }

    fn clear(&self) -> usize {
        let mut inner = self.inner.write();
        let n = inner.len();
        inner.clear();
        n
    }

    fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for (k, v) in self.inner.read().iter() {
            f(k, v);
        }
    }

    fn retain(&self, mut f: impl FnMut(&K, &mut V) -> bool) -> usize {
        let mut inner = self.inner.write();
        let before = inner.len();
        inner.retain(|k, v| f(k, v));
        before - inner.len()
    }
}
