//! Sharded concurrent maps for MINARET's hot shared state.
//!
//! The serving layer runs many worker threads against a handful of
//! shared structures — the string interner, per-source caches, the
//! result cache, the single-flight coalescing map. Guarding each with
//! one process-wide lock serializes every worker on every touch; this
//! crate provides the [`ConcurrentMap`] abstraction those structures
//! share, with two interchangeable implementations:
//!
//! - [`SingleLockMap`] — one `RwLock<HashMap>`, the pre-sharding
//!   design, kept as the observable-behaviour baseline for equivalence
//!   tests and the contention benchmark;
//! - [`ShardedMap`] — N independent `RwLock<HashMap>` shards selected
//!   by the high bits of a deterministic key hash, so operations on
//!   different keys almost never contend and no operation ever takes a
//!   whole-map lock.
//!
//! The trait follows the `Collection`/`Handle` shape of concurrent
//! map benchmarks: a map is `Sync`, handed around behind an `Arc`, and
//! every operation goes through `&self`. Values are handed out by
//! clone, so `V` is typically an `Arc` or another pointer-sized handle.
//!
//! Shard selection is a **pure function of the key** (FNV-1a with an
//! avalanche finalizer, fixed seed — no per-process randomness), so
//! tests can place keys on chosen shards deterministically and a key's
//! shard never changes for the life of the process.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod hash;
mod sharded;
mod single;

pub use hash::{stable_hash, FnvBuildHasher, FnvHasher};
pub use sharded::ShardedMap;
pub use single::SingleLockMap;

use std::borrow::Borrow;
use std::hash::Hash;

/// A thread-safe map handing values out by clone.
///
/// All operations take `&self`; implementations choose their own
/// locking granularity. Lookup methods accept any borrowed form of the
/// key (`Q`) whose `Hash`/`Eq` agree with `K`'s, so an
/// `Arc<str>`-keyed map can be probed with a plain `&str` without
/// allocating.
///
/// # Contract for `get_or_insert_with`
///
/// `make` runs **at most once per winning insert**: when several
/// threads race on the same absent key, exactly one runs `make` and
/// every racer receives a clone of that single stored value (the
/// returned flag says whether *this* call was the winner).
/// Implementations may run `make` while holding the lock that guards
/// the key, so `make` must not touch the same map (it may block; only
/// operations contending for the same lock wait behind it — for
/// [`ShardedMap`], one shard).
pub trait ConcurrentMap<K, V>: Send + Sync
where
    K: Hash + Eq + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Clones the value under `key`, if present.
    fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: ?Sized + Hash + Eq;

    /// True when `key` is present.
    fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: ?Sized + Hash + Eq,
    {
        self.get(key).is_some()
    }

    /// Inserts `value` under `key`, returning the previous value.
    fn insert(&self, key: K, value: V) -> Option<V>;

    /// Removes `key`, returning its value if it was present.
    fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: ?Sized + Hash + Eq;

    /// Clones the value under `key`, inserting `make()` first when
    /// absent. Returns the value and whether this call inserted it
    /// (`true` exactly once per key among racing callers — the
    /// single-flight leadership test).
    fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> (V, bool);

    /// Number of entries. For sharded implementations this is a sum of
    /// per-shard counts — exact when quiescent, a consistent snapshot
    /// is not guaranteed under concurrent writers.
    fn len(&self) -> usize;

    /// True when no entries exist (same snapshot caveat as [`len`]).
    ///
    /// [`len`]: ConcurrentMap::len
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every entry, returning how many were dropped.
    fn clear(&self) -> usize;

    /// Visits every entry. Sharded implementations lock one shard at a
    /// time; entries inserted on already-visited shards during the walk
    /// may be missed (the map is never locked as a whole).
    fn for_each(&self, f: impl FnMut(&K, &V));

    /// Keeps only the entries for which `f` returns true, returning
    /// how many were removed. Same shard-at-a-time caveat as
    /// [`for_each`](ConcurrentMap::for_each).
    fn retain(&self, f: impl FnMut(&K, &mut V) -> bool) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn exercise(map: &impl ConcurrentMap<String, Arc<str>>) {
        assert!(map.is_empty());
        assert_eq!(map.get("a"), None);
        assert_eq!(map.insert("a".into(), Arc::from("1")), None);
        assert_eq!(map.insert("a".into(), Arc::from("2")).as_deref(), Some("1"));
        assert_eq!(map.get("a").as_deref(), Some("2"));
        assert!(map.contains("a"));
        assert!(!map.contains("b"));
        let (v, inserted) = map.get_or_insert_with("b".into(), || Arc::from("3"));
        assert!(inserted);
        assert_eq!(v.as_ref(), "3");
        let (v, inserted) = map.get_or_insert_with("b".into(), || unreachable!("present"));
        assert!(!inserted);
        assert_eq!(v.as_ref(), "3");
        assert_eq!(map.len(), 2);
        assert_eq!(map.remove("a").as_deref(), Some("2"));
        assert_eq!(map.remove("a"), None);
        let mut seen = Vec::new();
        map.for_each(|k, v| seen.push((k.clone(), v.clone())));
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, "b");
        map.insert("c".into(), Arc::from("4"));
        assert_eq!(map.retain(|k, _| k == "b"), 1);
        assert_eq!(map.len(), 1);
        assert_eq!(map.clear(), 1);
        assert!(map.is_empty());
    }

    #[test]
    fn single_lock_map_contract() {
        exercise(&SingleLockMap::new());
    }

    #[test]
    fn sharded_map_contract() {
        exercise(&ShardedMap::new());
        exercise(&ShardedMap::with_shards(1));
        exercise(&ShardedMap::with_shards(3)); // rounds up to 4
    }

    #[test]
    fn shard_selection_is_deterministic_and_covers_shards() {
        let map: ShardedMap<u64, u64> = ShardedMap::with_shards(16);
        assert_eq!(map.shard_count(), 16);
        let mut hit = [false; 16];
        for k in 0..4096u64 {
            let s = map.shard_index(&k);
            assert_eq!(s, map.shard_index(&k), "stable per key");
            assert!(s < 16);
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "4096 keys must touch every shard");
    }

    #[test]
    fn racing_get_or_insert_has_exactly_one_winner_per_key() {
        let map: Arc<ShardedMap<u64, usize>> = Arc::new(ShardedMap::new());
        let builds = Arc::new(AtomicUsize::new(0));
        const KEYS: u64 = 64;
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let map = Arc::clone(&map);
                let builds = Arc::clone(&builds);
                std::thread::spawn(move || {
                    let mut wins = 0usize;
                    for k in 0..KEYS {
                        let (_, inserted) = map.get_or_insert_with(k, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            tid
                        });
                        wins += usize::from(inserted);
                    }
                    wins
                })
            })
            .collect();
        let total_wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total_wins as u64, KEYS, "one winner per key");
        assert_eq!(
            builds.load(Ordering::SeqCst) as u64,
            KEYS,
            "one build per key"
        );
        assert_eq!(map.len() as u64, KEYS);
    }
}
