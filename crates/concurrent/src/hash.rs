//! Deterministic hashing for shard selection and map buckets.
//!
//! `std::collections::HashMap`'s default hasher is seeded per process,
//! which is the right call for maps keyed by untrusted input but makes
//! shard placement unobservable: a test cannot construct "two keys on
//! the same shard". MINARET's concurrent maps key internal data
//! (interned labels, fingerprints, source kinds), so a fixed-seed
//! FNV-1a — fast on the short keys these maps carry — is both safe and
//! what makes the deterministic concurrency suites possible.

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, 64-bit, fixed offset basis — byte-for-byte reproducible
/// across processes and runs.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        Self(0xcbf29ce484222325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// Builds [`FnvHasher`]s; usable as a `HashMap` hasher parameter.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// The deterministic 64-bit hash of `key`, finalized so the **high**
/// bits avalanche (FNV-1a mixes multiplicatively, which feeds entropy
/// upward slowly; shard selection reads the top bits, so a
/// Fibonacci-multiply finalizer spreads short-key entropy there).
pub fn stable_hash<Q: ?Sized + std::hash::Hash>(key: &Q) -> u64 {
    let mut h = FnvHasher::default();
    key.hash(&mut h);
    let mut x = h.finish();
    x ^= x >> 32;
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls_and_types() {
        assert_eq!(stable_hash("abc"), stable_hash("abc"));
        assert_ne!(stable_hash("abc"), stable_hash("abd"));
        assert_eq!(stable_hash(&42u64), stable_hash(&42u64));
    }

    #[test]
    fn arc_str_hashes_like_str() {
        use std::sync::Arc;
        let a: Arc<str> = Arc::from("semantic web");
        assert_eq!(stable_hash(a.as_ref()), stable_hash("semantic web"));
    }

    #[test]
    fn high_bits_vary_for_small_integer_keys() {
        let tops: std::collections::HashSet<u64> =
            (0..64u64).map(|k| stable_hash(&k) >> 58).collect();
        assert!(tops.len() > 16, "top-6-bit spread too narrow: {tops:?}");
    }
}
