//! The `minaret` command-line front end.
//!
//! The paper demos MINARET as a web application; this is the same
//! workflow for a terminal. The binary (`src/main.rs`) is a thin shell
//! over [`run`], which is also driven directly by the integration tests.
//!
//! ```text
//! minaret expand RDF [--min-score 0.6]
//! minaret verify "Lei Zhou" [--affiliation "University of Tartu"]
//! minaret recommend manuscript.json [--top 10] [--explain]
//! minaret assign batch.json [--reviewers-per-paper 3] [--max-load 5]
//! minaret assign --demo-batch 8    # assign a generated submission batch
//! minaret synth --scholars 100000 --data-dir world/  # stream-generate a snapshot
//! minaret demo                      # end-to-end walkthrough
//! minaret stats                     # demo run + telemetry table
//! ```
//!
//! `recommend` reads the same JSON document the REST API's `/recommend`
//! accepts (see `minaret-server`), including the `"config"` overrides.
//! The scholarly world is synthetic and seeded; `--scholars` / `--seed`
//! control it, and `--data-dir` persists it: the first run snapshots
//! the generated world into an embedded store there, and later runs
//! with the same size/seed load the snapshot instead of regenerating.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use minaret_disambig::{AuthorQuery, IdentityResolver};
use minaret_json::Value;
use minaret_ontology::{ExpansionConfig, KeywordExpander};
use minaret_server::{manuscript_from_json, AppState};

/// Exit status of a CLI run.
pub type CliResult = Result<(), String>;

/// Common world options parsed from `--scholars` / `--seed` /
/// `--data-dir`.
#[derive(Debug, Clone)]
struct WorldOpts {
    scholars: usize,
    seed: u64,
    data_dir: Option<String>,
}

impl Default for WorldOpts {
    fn default() -> Self {
        Self {
            scholars: 1000,
            seed: 42,
            data_dir: None,
        }
    }
}

/// Builds the app state for a command, honouring `--data-dir`: with a
/// data directory the world loads from its snapshot when one matches
/// `(--scholars, --seed)` — skipping regeneration — and is snapshotted
/// there after generation otherwise. Without one this is exactly the
/// historical in-RAM [`AppState::demo`] path. The CLI never consults
/// the `/recommend` result cache, so it is disabled here.
fn build_state(world: &WorldOpts) -> Result<std::sync::Arc<AppState>, String> {
    AppState::demo_with_data_dir(
        world.scholars,
        world.seed,
        minaret_telemetry::Telemetry::new(),
        0,
        world.data_dir.as_deref().map(std::path::Path::new),
    )
    .map_err(|e| format!("cannot open --data-dir: {e}"))
}

const USAGE: &str = "\
minaret — reviewer recommendation (EDBT 2019 reproduction)

USAGE:
  minaret expand <KEYWORD> [--min-score X]
  minaret verify <NAME> [--affiliation A] [--country C] [--keywords k1,k2]
  minaret recommend <manuscript.json> [--top N] [--explain]
  minaret assign <batch.json | --demo-batch N> [--reviewers-per-paper K]
                 [--max-load L]
  minaret synth --data-dir P [--scholars N] [--seed N]
  minaret demo
  minaret stats

WORLD OPTIONS (all commands):
  --scholars N    size of the synthetic scholarly world (default 1000)
  --seed N        world seed (default 42)
  --data-dir P    embedded-store directory; the generated world is
                  snapshotted there and later runs with the same
                  --scholars/--seed load the snapshot instead of
                  regenerating (default: in-RAM, nothing on disk)

`synth` stream-generates the world straight into --data-dir, one
community block at a time, without booting a server — peak memory is
one chunk regardless of --scholars. A later `demo`/`stats`/server run
over the same --data-dir/--scholars/--seed serves that snapshot.
";

/// Runs the CLI with the given arguments (without the program name),
/// writing human-readable output to `out`.
pub fn run(args: &[String], out: &mut dyn std::io::Write) -> CliResult {
    let write =
        |out: &mut dyn std::io::Write, s: &str| writeln!(out, "{s}").map_err(|e| e.to_string());
    let Some(command) = args.first() else {
        write(out, USAGE)?;
        return Err("missing command".into());
    };
    // Split world options out of the remainder.
    let mut world = WorldOpts::default();
    let mut rest: Vec<String> = Vec::new();
    let mut it = args[1..].iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scholars" => {
                world.scholars = next_value(&mut it, "--scholars")?
                    .parse()
                    .map_err(|_| "--scholars must be an integer".to_string())?;
            }
            "--seed" => {
                world.seed = next_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?;
            }
            "--data-dir" => {
                let dir = next_value(&mut it, "--data-dir")?;
                if dir.is_empty() {
                    return Err("--data-dir needs a non-empty path".into());
                }
                world.data_dir = Some(dir.clone());
            }
            _ => rest.push(a.clone()),
        }
    }
    match command.as_str() {
        "expand" => cmd_expand(&rest, out),
        "verify" => cmd_verify(&rest, world, out),
        "recommend" => cmd_recommend(&rest, world, out),
        "assign" => cmd_assign(&rest, world, out),
        "synth" => no_extra_args(&rest).and_then(|()| cmd_synth(world, out)),
        "demo" => no_extra_args(&rest).and_then(|()| cmd_demo(world, out)),
        "stats" => no_extra_args(&rest).and_then(|()| cmd_stats(world, out)),
        "help" | "--help" | "-h" => write(out, USAGE),
        other => Err(format!("unknown command {other:?}; try `minaret help`")),
    }
}

fn no_extra_args(rest: &[String]) -> CliResult {
    match rest.first() {
        None => Ok(()),
        Some(extra) => Err(format!("unexpected argument {extra:?}")),
    }
}

fn next_value<'a>(
    it: &mut std::iter::Peekable<std::slice::Iter<'a, String>>,
    flag: &str,
) -> Result<&'a String, String> {
    it.next()
        .ok_or_else(|| format!("flag {flag} needs a value"))
}

fn cmd_expand(args: &[String], out: &mut dyn std::io::Write) -> CliResult {
    let mut keyword = None;
    let mut min_score = ExpansionConfig::default().min_score;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--min-score" => {
                min_score = next_value(&mut it, "--min-score")?
                    .parse()
                    .map_err(|_| "--min-score must be a number".to_string())?;
            }
            k if keyword.is_none() => keyword = Some(k.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    let keyword = keyword.ok_or("expand needs a keyword")?;
    let ontology = minaret_ontology::seed::curated_cs_ontology();
    let expander = KeywordExpander::new(
        &ontology,
        ExpansionConfig {
            min_score,
            ..Default::default()
        },
    );
    let expanded = expander.expand(&keyword).map_err(|e| e.to_string())?;
    writeln!(out, "{:<28} {:>6}  hops", "expanded keyword", "score").map_err(|e| e.to_string())?;
    for e in expanded {
        writeln!(out, "{:<28} {:>6.3}  {}", e.label, e.score, e.hops).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn cmd_verify(args: &[String], world: WorldOpts, out: &mut dyn std::io::Write) -> CliResult {
    let mut name = None;
    let mut affiliation = None;
    let mut country = None;
    let mut keywords: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--affiliation" => affiliation = Some(next_value(&mut it, "--affiliation")?.clone()),
            "--country" => country = Some(next_value(&mut it, "--country")?.clone()),
            "--keywords" => {
                keywords = next_value(&mut it, "--keywords")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            n if name.is_none() => name = Some(n.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    let name = name.ok_or("verify needs an author name")?;
    let state = build_state(&world)?;
    let resolver = IdentityResolver::new(&state.registry);
    let candidates = resolver.candidates(&AuthorQuery {
        name: name.clone(),
        affiliation,
        country,
        context_keywords: keywords,
    });
    if candidates.is_empty() {
        writeln!(out, "no profiles found for {name:?}").map_err(|e| e.to_string())?;
        return Ok(());
    }
    writeln!(
        out,
        "{} candidate profile(s) for {name:?}:",
        candidates.len()
    )
    .map_err(|e| e.to_string())?;
    for (i, m) in candidates.iter().enumerate() {
        writeln!(
            out,
            "{:>3}. {:<24} {:<30} score {:.2}  [{}]",
            i + 1,
            m.candidate.display_name,
            m.candidate.affiliation.as_deref().unwrap_or("-"),
            m.score,
            m.candidate
                .sources
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join("+"),
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn cmd_recommend(args: &[String], world: WorldOpts, out: &mut dyn std::io::Write) -> CliResult {
    let mut path = None;
    let mut top: Option<usize> = None;
    let mut explain = false;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => {
                top = Some(
                    next_value(&mut it, "--top")?
                        .parse()
                        .map_err(|_| "--top must be an integer".to_string())?,
                )
            }
            "--explain" => explain = true,
            p if path.is_none() => path = Some(p.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    let path = path.ok_or("recommend needs a manuscript JSON file")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let body: Value = minaret_json::parse(&text).map_err(|e| e.to_string())?;

    let state = build_state(&world)?;
    let (manuscript, mut config) =
        manuscript_from_json(&body, state.minaret.config()).map_err(|e| e.to_string())?;
    if let Some(n) = top {
        config.max_recommendations = n;
    }
    let minaret = minaret_core::Minaret::new(
        state.registry.clone(),
        state.ontology.clone(),
        config.clone(),
    );
    let report = minaret.recommend(&manuscript).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "manuscript: {}\nkeywords:   {}\nretrieved {} candidates, filtered {}, recommending {}:\n",
        manuscript.title,
        manuscript.keywords.join(", "),
        report.candidates_retrieved,
        report.filtered_out.len(),
        report.recommendations.len()
    )
    .map_err(|e| e.to_string())?;
    write_degraded_warning(&report, out)?;
    write!(out, "{}", report.render_table()).map_err(|e| e.to_string())?;
    if explain {
        writeln!(out).map_err(|e| e.to_string())?;
        for r in &report.recommendations {
            writeln!(out, "{}", r.explain(&config.weights)).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn cmd_assign(args: &[String], world: WorldOpts, out: &mut dyn std::io::Write) -> CliResult {
    let mut path = None;
    let mut demo_batch: Option<usize> = None;
    let mut reviewers_per_paper: Option<u64> = None;
    let mut max_load: Option<u64> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--demo-batch" => {
                demo_batch = Some(
                    next_value(&mut it, "--demo-batch")?
                        .parse()
                        .map_err(|_| "--demo-batch must be an integer".to_string())?,
                )
            }
            "--reviewers-per-paper" => {
                reviewers_per_paper = Some(
                    next_value(&mut it, "--reviewers-per-paper")?
                        .parse()
                        .map_err(|_| "--reviewers-per-paper must be an integer".to_string())?,
                )
            }
            "--max-load" => {
                max_load = Some(
                    next_value(&mut it, "--max-load")?
                        .parse()
                        .map_err(|_| "--max-load must be an integer".to_string())?,
                )
            }
            p if path.is_none() && demo_batch.is_none() => path = Some(p.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    let state = build_state(&world)?;
    let (manuscripts, mut spec, config) = if let Some(n) = demo_batch {
        if n == 0 {
            return Err("--demo-batch needs at least one submission".into());
        }
        // A seeded batch of synthetic submissions over the same world
        // the sources serve — every paper has in-world reviewers.
        let mut generator = minaret_synth::SubmissionGenerator::new(&state.world, world.seed);
        let manuscripts: Vec<minaret_core::ManuscriptDetails> = generator
            .generate_many(n)
            .iter()
            .map(|sub| minaret_assign::manuscript_from_submission(&state.world, sub))
            .collect();
        (
            manuscripts,
            minaret_assign::AssignmentSpec::new(3, 5),
            state.minaret.config().clone(),
        )
    } else {
        let path = path.ok_or("assign needs a batch JSON file or --demo-batch N")?;
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let body: Value = minaret_json::parse(&text).map_err(|e| e.to_string())?;
        minaret_server::assign_request_from_json(&body, state.minaret.config())?
    };
    if let Some(k) = reviewers_per_paper {
        spec.reviewers_per_paper = k as usize;
    }
    if let Some(l) = max_load {
        spec.max_load = l as usize;
    }
    let assigner = minaret_assign::Assigner::new(minaret_core::Minaret::new(
        state.registry.clone(),
        state.ontology.clone(),
        config,
    ))
    .with_telemetry(state.telemetry.clone());
    let mut solved = assigner
        .assign(&manuscripts, &spec)
        .map_err(|e| e.to_string())?;
    solved.quality.coverage_at_k =
        minaret_assign::coverage_against_world(&state.world, &manuscripts, &solved);
    writeln!(
        out,
        "assigning {} manuscripts: {} reviewers/paper, max load {} \
         (pool {}, eligible pairs {})\n",
        manuscripts.len(),
        spec.reviewers_per_paper,
        spec.max_load,
        solved.pool_size,
        solved.eligible_pairs
    )
    .map_err(|e| e.to_string())?;
    write!(out, "{}", solved.render_table()).map_err(|e| e.to_string())?;
    Ok(())
}

/// Prints the degraded-coverage banner when sources were missing from a
/// run — the editor should know the list was built from a thinner view.
fn write_degraded_warning(
    report: &minaret_core::RecommendationReport,
    out: &mut dyn std::io::Write,
) -> CliResult {
    if report.degraded {
        writeln!(
            out,
            "WARNING: degraded results — source(s) unavailable: {}\n",
            report.degraded_sources.join(", ")
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// A manuscript authored by the first published scholar in the world,
/// using their own interests as keywords — guaranteed to have candidates.
fn demo_manuscript(state: &AppState) -> Result<minaret_core::ManuscriptDetails, String> {
    let lead = state
        .world
        .scholars()
        .iter()
        .find(|s| !state.world.papers_of(s.id).is_empty())
        .ok_or("degenerate world: nobody published")?;
    let inst = state.world.institution(lead.current_affiliation());
    Ok(minaret_core::ManuscriptDetails {
        title: "A demonstration manuscript".into(),
        keywords: lead
            .interests
            .iter()
            .take(3)
            .map(|&t| state.world.ontology.label(t).to_string())
            .collect(),
        authors: vec![minaret_core::AuthorInput {
            name: lead.full_name(),
            affiliation: Some(inst.name.clone()),
            country: Some(inst.country.clone()),
        }],
        target_venue: state.world.venues()[0].name.clone(),
    })
}

fn cmd_synth(world: WorldOpts, out: &mut dyn std::io::Write) -> CliResult {
    let dir = world
        .data_dir
        .as_deref()
        .ok_or("synth needs --data-dir: it exists to write a world snapshot")?;
    let store = minaret_store::Store::open(
        std::path::Path::new(dir),
        minaret_store::StoreConfig::default(),
    )
    .map_err(|e| format!("cannot open --data-dir: {e}"))?;
    let config = minaret_synth::WorldConfig {
        seed: world.seed,
        ..minaret_synth::WorldConfig::sized(world.scholars)
    };
    let generator = minaret_synth::StreamingGenerator::new(config);
    writeln!(
        out,
        "streaming {} scholars (seed {}) into {dir} ...",
        world.scholars, world.seed
    )
    .map_err(|e| e.to_string())?;
    let mut io_err = None;
    let totals = minaret_synth::stream_snapshot_world(&store, &generator, |p| {
        if let Err(e) = writeln!(
            out,
            "  chunk {:>4}/{}: {:>8} scholars done, {} papers, {} reviews, {} KiB",
            p.chunk + 1,
            p.chunks_total,
            p.scholars_done,
            p.papers,
            p.reviews,
            p.bytes / 1024
        ) {
            io_err.get_or_insert(e.to_string());
        }
    })
    .map_err(|e| format!("streaming snapshot failed: {e}"))?;
    if let Some(e) = io_err {
        return Err(e);
    }
    let stats = totals.stats();
    writeln!(
        out,
        "snapshot complete: {} scholars, {} papers, {} reviews, {} venues, \
         {} institutions, {} colliding names, {:.2} mean papers/scholar \
         ({} chunks, {} KiB total, peak chunk {} KiB)",
        stats.scholars,
        stats.papers,
        stats.reviews,
        stats.venues,
        stats.institutions,
        stats.colliding_scholars,
        stats.mean_papers_per_scholar,
        totals.chunks,
        totals.bytes / 1024,
        totals.peak_chunk_bytes / 1024
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

fn cmd_demo(world: WorldOpts, out: &mut dyn std::io::Write) -> CliResult {
    let state = build_state(&world)?;
    let manuscript = demo_manuscript(&state)?;
    writeln!(
        out,
        "demo manuscript by {} — keywords: {}",
        manuscript.authors[0].name,
        manuscript.keywords.join(", ")
    )
    .map_err(|e| e.to_string())?;
    let report = state
        .minaret
        .recommend(&manuscript)
        .map_err(|e| e.to_string())?;
    write_degraded_warning(&report, out)?;
    write!(out, "{}", report.render_table()).map_err(|e| e.to_string())?;
    Ok(())
}

fn cmd_stats(world: WorldOpts, out: &mut dyn std::io::Write) -> CliResult {
    let state = build_state(&world)?;
    let manuscript = demo_manuscript(&state)?;
    state
        .minaret
        .recommend(&manuscript)
        .map_err(|e| e.to_string())?;
    writeln!(
        out,
        "telemetry after one demo recommendation ({} scholars, seed {}):\n",
        world.scholars, world.seed
    )
    .map_err(|e| e.to_string())?;
    write!(out, "{}", state.telemetry.render_table()).map_err(|e| e.to_string())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (CliResult, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let result = run(&args, &mut buf);
        (result, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn expand_prints_scored_table() {
        let (res, output) = run_capture(&["expand", "RDF"]);
        assert!(res.is_ok(), "{res:?}");
        assert!(output.contains("Semantic Web"));
        assert!(output.contains("SPARQL"));
    }

    #[test]
    fn expand_respects_min_score() {
        let (res, output) = run_capture(&["expand", "RDF", "--min-score", "0.99"]);
        assert!(res.is_ok());
        // Only the seed keyword remains.
        assert_eq!(output.lines().count(), 2);
    }

    #[test]
    fn unknown_command_and_missing_args_error() {
        assert!(run_capture(&["frobnicate"]).0.is_err());
        assert!(run_capture(&[]).0.is_err());
        assert!(run_capture(&["expand"]).0.is_err());
        assert!(run_capture(&["recommend"]).0.is_err());
        assert!(run_capture(&["expand", "RDF", "--min-score", "lots"])
            .0
            .is_err());
    }

    #[test]
    fn help_prints_usage() {
        let (res, output) = run_capture(&["help"]);
        assert!(res.is_ok());
        assert!(output.contains("USAGE"));
    }

    #[test]
    fn verify_finds_profiles_in_small_world() {
        // Use a small world for speed; find a real scholar's name first.
        let state = AppState::demo(120, 5);
        let name = state.world.scholars()[0].full_name();
        let (res, output) = run_capture(&["verify", &name, "--scholars", "120", "--seed", "5"]);
        assert!(res.is_ok(), "{res:?}");
        assert!(output.contains("candidate profile(s)"), "{output}");
    }

    #[test]
    fn demo_runs_end_to_end() {
        let (res, output) = run_capture(&["demo", "--scholars", "150", "--seed", "3"]);
        assert!(res.is_ok(), "{res:?}");
        assert!(output.contains("TOTAL"));
    }

    #[test]
    fn stats_renders_telemetry_table() {
        let (res, output) = run_capture(&["stats", "--scholars", "150", "--seed", "3"]);
        assert!(res.is_ok(), "{res:?}");
        assert!(output.contains("minaret_phase_micros"), "{output}");
        assert!(output.contains("minaret_source_requests_total"), "{output}");
        assert!(output.contains("minaret_recommend_total"), "{output}");
        // The resilience layer's breaker gauge is registered per source
        // from startup, so the stats table lists it even when healthy.
        assert!(output.contains("minaret_breaker_state"), "{output}");
    }

    #[test]
    fn stats_and_demo_reject_unknown_flags() {
        assert!(run_capture(&["stats", "--frobnicate"]).0.is_err());
        assert!(run_capture(&["demo", "extra"]).0.is_err());
    }

    #[test]
    fn recommend_reads_manuscript_file() {
        let state = AppState::demo(150, 3);
        let lead = state
            .world
            .scholars()
            .iter()
            .find(|s| !state.world.papers_of(s.id).is_empty())
            .unwrap();
        let keywords: Vec<minaret_json::Value> = lead
            .interests
            .iter()
            .take(2)
            .map(|&t| minaret_json::Value::from(state.world.ontology.label(t)))
            .collect();
        let doc = minaret_json::Value::object()
            .set("title", "File-driven manuscript")
            .set("keywords", keywords)
            .set(
                "authors",
                vec![minaret_json::Value::object().set("name", lead.full_name().as_str())],
            )
            .set("target_venue", state.world.venues()[0].name.as_str());
        let dir = std::env::temp_dir().join("minaret-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manuscript.json");
        std::fs::write(&path, doc.to_string()).unwrap();
        let (res, output) = run_capture(&[
            "recommend",
            path.to_str().unwrap(),
            "--top",
            "5",
            "--explain",
            "--scholars",
            "150",
            "--seed",
            "3",
        ]);
        assert!(res.is_ok(), "{res:?}");
        assert!(output.contains("File-driven manuscript"));
        assert!(output.contains("TOTAL"));
        assert!(
            output.contains("total score"),
            "explanations missing: {output}"
        );
        let rec_lines = output.lines().filter(|l| l.starts_with('#')).count();
        assert!(rec_lines >= 1);
    }

    #[test]
    fn assign_demo_batch_end_to_end() {
        let (res, output) = run_capture(&[
            "assign",
            "--demo-batch",
            "3",
            "--reviewers-per-paper",
            "2",
            "--max-load",
            "4",
            "--scholars",
            "150",
            "--seed",
            "3",
        ]);
        assert!(res.is_ok(), "{res:?}");
        assert!(
            output.contains("assigning 3 manuscripts: 2 reviewers/paper, max load 4"),
            "{output}"
        );
        assert!(output.contains("mean relevance"), "{output}");
        assert!(output.contains("coverage@k"), "{output}");
    }

    #[test]
    fn assign_reads_batch_file() {
        let state = AppState::demo(150, 3);
        let papers: Vec<minaret_json::Value> = state
            .world
            .scholars()
            .iter()
            .filter(|s| !state.world.papers_of(s.id).is_empty())
            .take(2)
            .enumerate()
            .map(|(i, lead)| {
                let keywords: Vec<minaret_json::Value> = lead
                    .interests
                    .iter()
                    .take(2)
                    .map(|&t| minaret_json::Value::from(state.world.ontology.label(t)))
                    .collect();
                minaret_json::Value::object()
                    .set("title", format!("Batch paper {i}").as_str())
                    .set("keywords", keywords)
                    .set(
                        "authors",
                        vec![minaret_json::Value::object().set("name", lead.full_name().as_str())],
                    )
                    .set("target_venue", state.world.venues()[0].name.as_str())
            })
            .collect();
        let doc = minaret_json::Value::object()
            .set("manuscripts", papers)
            .set(
                "spec",
                minaret_json::Value::object()
                    .set("reviewers_per_paper", 2u64)
                    .set("max_load", 4u64),
            );
        let dir = std::env::temp_dir().join("minaret-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("batch.json");
        std::fs::write(&path, doc.to_string()).unwrap();
        let (res, output) = run_capture(&[
            "assign",
            path.to_str().unwrap(),
            "--scholars",
            "150",
            "--seed",
            "3",
        ]);
        assert!(res.is_ok(), "{res:?}");
        assert!(output.contains("assigning 2 manuscripts"), "{output}");
        assert!(output.contains("Batch paper 0"), "{output}");
    }

    #[test]
    fn assign_rejects_bad_inputs() {
        assert!(run_capture(&["assign"]).0.is_err());
        assert!(run_capture(&["assign", "--demo-batch", "0"]).0.is_err());
        assert!(run_capture(&["assign", "/nonexistent/batch.json"])
            .0
            .is_err());
        // An unsatisfiable spec is an explicit infeasibility error.
        let (res, _) = run_capture(&[
            "assign",
            "--demo-batch",
            "3",
            "--reviewers-per-paper",
            "400",
            "--max-load",
            "1",
            "--scholars",
            "150",
            "--seed",
            "3",
        ]);
        assert!(res.unwrap_err().contains("infeasible"));
    }

    #[test]
    fn data_dir_snapshots_then_reloads_identically() {
        let dir = std::env::temp_dir().join(format!("minaret-cli-dd-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_str = dir.to_str().unwrap();
        let args = [
            "demo",
            "--scholars",
            "150",
            "--seed",
            "3",
            "--data-dir",
            dir_str,
        ];
        let (res, first) = run_capture(&args);
        assert!(res.is_ok(), "{res:?}");
        assert!(
            std::fs::read_dir(&dir).unwrap().count() > 0,
            "snapshot written to the data dir"
        );
        // Second run loads the snapshot; output must be byte-identical,
        // and identical to a pure-RAM run of the same world.
        let (res, second) = run_capture(&args);
        assert!(res.is_ok(), "{res:?}");
        assert_eq!(first, second);
        let (res, in_ram) = run_capture(&["demo", "--scholars", "150", "--seed", "3"]);
        assert!(res.is_ok(), "{res:?}");
        assert_eq!(first, in_ram);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn data_dir_rejects_empty_path() {
        assert!(run_capture(&["demo", "--data-dir", ""]).0.is_err());
    }

    #[test]
    fn synth_requires_a_data_dir() {
        let (res, _) = run_capture(&["synth", "--scholars", "100"]);
        assert!(res.unwrap_err().contains("--data-dir"));
    }

    #[test]
    fn synth_streams_a_snapshot_that_later_runs_serve() {
        let dir = std::env::temp_dir().join(format!("minaret-cli-synth-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_str = dir.to_str().unwrap().to_string();
        let (res, output) = run_capture(&[
            "synth",
            "--scholars",
            "150",
            "--seed",
            "3",
            "--data-dir",
            &dir_str,
        ]);
        assert!(res.is_ok(), "{res:?}");
        assert!(output.contains("chunk    1/1"), "{output}");
        assert!(
            output.contains("snapshot complete: 150 scholars"),
            "{output}"
        );
        // A demo over that data dir serves the streamed snapshot and is
        // byte-identical to a pure-RAM run of the same world.
        let (res, from_snapshot) = run_capture(&[
            "demo",
            "--scholars",
            "150",
            "--seed",
            "3",
            "--data-dir",
            &dir_str,
        ]);
        assert!(res.is_ok(), "{res:?}");
        let (res, in_ram) = run_capture(&["demo", "--scholars", "150", "--seed", "3"]);
        assert!(res.is_ok(), "{res:?}");
        assert_eq!(from_snapshot, in_ram);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn recommend_rejects_missing_or_invalid_files() {
        let (res, _) = run_capture(&["recommend", "/nonexistent/m.json"]);
        assert!(res.unwrap_err().contains("cannot read"));
        let dir = std::env::temp_dir().join("minaret-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.json");
        std::fs::write(&path, "{not json").unwrap();
        let (res, _) = run_capture(&["recommend", path.to_str().unwrap()]);
        assert!(res.is_err());
    }
}
