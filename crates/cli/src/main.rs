//! `minaret` binary entry point — see the crate docs in `lib.rs`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    if let Err(message) = minaret_cli::run(&args, &mut stdout) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}
