//! The random baseline — the floor any real method must clear.

use minaret_core::ManuscriptDetails;
use minaret_ontology::normalize_label;
use minaret_scholarly::MergedCandidate;
use minaret_synth::ScholarId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{RankedCandidate, Recommender};

/// Picks `k` reviewers uniformly at random from the crawled pool
/// (excluding authors by name). Deterministic per seed.
#[derive(Debug)]
pub struct RandomRecommender {
    pool: Vec<(String, Vec<ScholarId>)>,
    seed: u64,
}

impl RandomRecommender {
    /// Creates the baseline over a crawled pool.
    pub fn new(pool: &[MergedCandidate], seed: u64) -> Self {
        Self {
            pool: pool
                .iter()
                .map(|c| (c.display_name.clone(), c.truths.clone()))
                .collect(),
            seed,
        }
    }
}

impl Recommender for RandomRecommender {
    fn name(&self) -> &str {
        "random"
    }

    fn recommend(&self, manuscript: &ManuscriptDetails, k: usize) -> Vec<RankedCandidate> {
        let author_names: Vec<String> = manuscript
            .authors
            .iter()
            .map(|a| normalize_label(&a.name))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut eligible: Vec<&(String, Vec<ScholarId>)> = self
            .pool
            .iter()
            .filter(|(name, _)| !author_names.contains(&normalize_label(name)))
            .collect();
        eligible.shuffle(&mut rng);
        eligible
            .into_iter()
            .take(k)
            .enumerate()
            .map(|(i, (name, truths))| RankedCandidate {
                name: name.clone(),
                score: 1.0 / (i + 1) as f64,
                truths: truths.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_core::AuthorInput;
    use minaret_scholarly::SourceMetrics;

    fn pool(n: usize) -> Vec<MergedCandidate> {
        (0..n)
            .map(|i| MergedCandidate {
                display_name: format!("Scholar Number{i}"),
                affiliation: None,
                country: None,
                affiliation_history: vec![],
                interests: vec![],
                publications: vec![],
                metrics: SourceMetrics::default(),
                reviews: vec![],
                sources: vec![],
                keys: vec![],
                truths: vec![ScholarId(i as u32)],
            })
            .collect()
    }

    fn manuscript() -> ManuscriptDetails {
        ManuscriptDetails {
            title: "T".into(),
            keywords: vec!["x".into()],
            authors: vec![AuthorInput::named("Scholar Number0")],
            target_venue: "J".into(),
        }
    }

    #[test]
    fn deterministic_per_seed_and_excludes_authors() {
        let p = pool(30);
        let a = RandomRecommender::new(&p, 7).recommend(&manuscript(), 10);
        let b = RandomRecommender::new(&p, 7).recommend(&manuscript(), 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        for c in &a {
            assert_ne!(c.name, "Scholar Number0");
        }
        let c = RandomRecommender::new(&p, 8).recommend(&manuscript(), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn small_pools_return_what_they_have() {
        let p = pool(3);
        let out = RandomRecommender::new(&p, 1).recommend(&manuscript(), 10);
        assert_eq!(out.len(), 2); // 3 minus the author
    }
}
